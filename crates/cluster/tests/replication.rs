//! Loopback replication integration: two cluster nodes under a
//! replicated (`R = 2`) map, a routed mixed load, and direct probes of
//! the follower role.
//!
//! Asserted end-to-end:
//!
//! * the primary ships admitted writes to its followers and the
//!   per-range replication watermark advances (shipped/acked counters
//!   move, the follower's `server.repl.applied` counter moves);
//! * a follower serves client *reads* for ranges it follows (the
//!   router's failover target) and counts them;
//! * a follower still bounces client *writes* with WRONG_SHARD — only
//!   the primary admits writes, which is what keeps the Journal
//!   exactly-once story intact.

use std::time::{Duration, Instant};

use rif_cluster::stats::NodeStats;
use rif_cluster::{Directory, NodeInfo, RouterConfig, ShardMap};
use rif_server::client::Conn;
use rif_server::protocol::{Request, Response};
use rif_server::server::{Server, ServerConfig};

const RANGES: u32 = 4;
const CAPACITY: u64 = 8 << 30;

fn start_node(seed: u64) -> Server {
    Server::start(
        ServerConfig {
            shards: RANGES as usize,
            capacity_bytes: CAPACITY,
            cluster: true,
            time_scale: 200.0,
            seed,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("node starts")
}

fn node_stats(addr: &str) -> NodeStats {
    let mut conn = Conn::connect(addr).expect("connect for stats");
    conn.send(&Request::Stats { tag: 42 }).expect("send STATS");
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = conn.next_frame() {
            match rif_server::protocol::decode_response(&payload) {
                Ok(Response::Stats { text, .. }) => {
                    return NodeStats::parse_text(&text).expect("stats text parses")
                }
                Ok(other) => panic!("unexpected STATS reply: {other:?}"),
                Err(e) => panic!("undecodable STATS reply: {e}"),
            }
        }
        conn.pump().expect("stats conn alive");
    }
    panic!("STATS timed out");
}

fn counter(stats: &NodeStats, name: &str) -> u64 {
    stats.counters.get(name).copied().unwrap_or(0)
}

fn wait_response(conn: &mut Conn) -> Response {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = conn.next_frame() {
            return rif_server::protocol::decode_response(&payload).expect("decodable");
        }
        conn.pump().expect("conn alive");
    }
    panic!("no response before deadline");
}

#[test]
fn writes_replicate_and_followers_serve_reads_but_bounce_writes() {
    let node_a = start_node(31);
    let node_b = start_node(32);
    let map = ShardMap::replicated(
        1,
        CAPACITY,
        RANGES,
        vec![
            NodeInfo {
                id: "a".into(),
                addr: node_a.local_addr().to_string(),
            },
            NodeInfo {
                id: "b".into(),
                addr: node_b.local_addr().to_string(),
            },
        ],
        2,
    )
    .expect("valid replicated map");
    // With two nodes and R = 2, every range's follower set is exactly
    // "the other node".
    let (hot_range, primary) = map.route(0);
    let primary_addr = primary.addr.clone();
    let follower = map.followers_of(hot_range)[0].clone();
    let dir = Directory::start(map, 0).expect("directory starts");

    // A write-heavy routed load gives the ship thread plenty to do.
    let requests: u64 = 4_000;
    let cfg = RouterConfig {
        directory: dir.addr().to_string(),
        requests,
        depth: 16,
        read_ratio: 0.2,
        request_bytes: 16 * 1024,
        seed: 13,
        ..RouterConfig::default()
    };
    let (report, journal) = rif_cluster::run_routed(&cfg).expect("routed load");
    assert_eq!(
        report.completed + report.failed + report.busy_dropped,
        requests,
        "ledger gap: {report:?}"
    );
    assert_eq!(journal.unknown_receipts, 0);

    // Replication really flowed: the primary shipped and got acks, the
    // follower applied. Shipping is asynchronous, so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    let (mut shipped, mut acked, mut applied) = (0, 0, 0);
    while Instant::now() < deadline {
        let p = node_stats(&primary_addr);
        let f = node_stats(&follower.addr);
        shipped = counter(&p, "server.repl.shipped");
        acked = counter(&p, "server.repl.acked");
        applied = counter(&f, "server.repl.applied");
        if shipped > 0 && acked > 0 && applied > 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(shipped > 0, "primary never shipped a replica write");
    assert!(acked > 0, "no follower ack ever arrived");
    assert!(applied > 0, "follower never applied a replicated write");
    // The watermark gauge for the hot range advanced past zero.
    let p = node_stats(&primary_addr);
    let watermark = p
        .gauges
        .get(&format!("server.repl.watermark.range{hot_range}"))
        .copied()
        .unwrap_or(0.0);
    assert!(
        watermark > 0.0,
        "replication watermark for range {hot_range} never advanced"
    );

    // Follower role probes, straight at the wire.
    let mut conn = Conn::connect(&follower.addr).expect("connect follower");
    conn.send(&Request::Read {
        tenant: 0,
        tag: 1,
        offset: 0,
        bytes: 16 * 1024,
    })
    .expect("send read");
    let resp = wait_response(&mut conn);
    assert!(
        matches!(resp, Response::Done { .. }),
        "follower must serve reads for followed ranges, got {resp:?}"
    );
    conn.send(&Request::Write {
        tenant: 0,
        tag: 2,
        offset: 0,
        bytes: 16 * 1024,
    })
    .expect("send write");
    let resp = wait_response(&mut conn);
    assert!(
        matches!(resp, Response::WrongShard { .. }),
        "follower must bounce client writes, got {resp:?}"
    );
    let f = node_stats(&follower.addr);
    assert!(
        counter(&f, "server.repl.follower_reads") >= 1,
        "follower read was not counted"
    );

    dir.stop();
    node_a.stop();
    node_b.stop();
}
