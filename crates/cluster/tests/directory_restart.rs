//! Directory durability: the shard map survives a directory restart.
//!
//! Regression scenario for the replicated-cluster hardening work: the
//! directory persists its map (epoch included) to a canonical text
//! file on every install, and `start_persistent` restores that file on
//! boot — *overriding* whatever map the caller passed in. A restarted
//! directory therefore converges routers back onto the exact epoch the
//! fleet already runs, with no forced re-migration.
//!
//! Also covers the typed-error path: a corrupted persisted file must
//! fail loudly (`MapLoadError::Malformed` / `InvalidData`), never be
//! silently replaced, while a *missing* file means "first boot" and the
//! argument map is used.

use std::time::{Duration, Instant};

use rif_cluster::{load_map, Directory, MapLoadError, NodeInfo, ShardMap};
use rif_server::client::Conn;
use rif_server::protocol::{Request, Response};
use rif_server::server::{Server, ServerConfig};

const RANGES: u32 = 4;
const CAPACITY: u64 = 8 << 30;

fn start_node(seed: u64) -> Server {
    Server::start(
        ServerConfig {
            shards: RANGES as usize,
            capacity_bytes: CAPACITY,
            cluster: true,
            time_scale: 200.0,
            seed,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("node starts")
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rif-dir-restart-{}-{tag}.txt", std::process::id()))
}

fn wait_response(conn: &mut Conn) -> Response {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = conn.next_frame() {
            return rif_server::protocol::decode_response(&payload).expect("decodable");
        }
        conn.pump().expect("conn alive");
    }
    panic!("no response before deadline");
}

#[test]
fn restarted_directory_restores_epoch_and_map_byte_identically() {
    let node_a = start_node(41);
    let node_b = start_node(42);
    let nodes = vec![
        NodeInfo {
            id: "a".into(),
            addr: node_a.local_addr().to_string(),
        },
        NodeInfo {
            id: "b".into(),
            addr: node_b.local_addr().to_string(),
        },
    ];
    let map =
        ShardMap::replicated(1, CAPACITY, RANGES, nodes.clone(), 2).expect("valid replicated map");
    let path = temp_path("happy");
    let _ = std::fs::remove_file(&path);

    let dir = Directory::start_persistent(map.clone(), 0, &path).expect("directory starts");
    // Bump the epoch past the seed map so a restart has something real
    // to prove: migrate one range to the node that doesn't own it.
    let before = dir.map();
    let (range, owner) = before.route(0);
    let target = nodes
        .iter()
        .find(|n| n.id != owner.id)
        .expect("two nodes")
        .id
        .clone();
    dir.migrate(range, &target).expect("migration completes");
    let live = dir.map();
    assert!(live.epoch > map.epoch, "migration must bump the epoch");
    let live_text = live.to_text();
    dir.stop();

    // The persisted file already matches what was live.
    let persisted = load_map(&path).expect("persisted map loads");
    assert_eq!(persisted.to_text(), live_text, "persisted map diverged");

    // Restart with a *stale* argument map (the original, epoch 1). The
    // persisted state must win, byte for byte.
    let dir2 = Directory::start_persistent(map.clone(), 0, &path).expect("directory restarts");
    let restored = dir2.map();
    assert_eq!(restored.epoch, live.epoch, "epoch regressed on restart");
    assert_eq!(
        restored.to_text(),
        live_text,
        "restored map is not byte-identical"
    );

    // Routers converge on the same epoch over the wire too, and the
    // fleet keeps serving without any re-migration: the node that took
    // the migrated range still answers Done for it.
    let (epoch, text) =
        rif_cluster::directory::fetch_map_text(&dir2.addr().to_string()).expect("MAP_GET works");
    assert_eq!(epoch, live.epoch);
    assert_eq!(text, live_text);
    let owner_now = restored.route(0).1.addr.clone();
    let mut conn = Conn::connect(&owner_now).expect("connect new owner");
    conn.send(&Request::Read {
        tenant: 0,
        tag: 7,
        offset: 0,
        bytes: 4096,
    })
    .expect("send read");
    let resp = wait_response(&mut conn);
    assert!(
        matches!(resp, Response::Done { .. }),
        "owner after restart must serve its range, got {resp:?}"
    );

    dir2.stop();
    node_a.stop();
    node_b.stop();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_map_file_is_a_typed_error_and_missing_means_first_boot() {
    let nodes = vec![NodeInfo {
        id: "a".into(),
        addr: "127.0.0.1:1".into(),
    }];
    let map = ShardMap::rebalanced(1, CAPACITY, RANGES, nodes).expect("valid map");

    // Corrupted file: load_map reports Malformed, start_persistent
    // refuses to boot rather than quietly clobbering operator state.
    let path = temp_path("corrupt");
    std::fs::write(&path, "epoch=borked\nthis is not a shard map\n").expect("write garbage");
    match load_map(&path) {
        Err(MapLoadError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
    match Directory::start_persistent(map.clone(), 0, &path) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
        Ok(_) => panic!("corrupt file must refuse boot"),
    }
    let _ = std::fs::remove_file(&path);

    // Missing file: a clean Io error from load_map, and first boot uses
    // the argument map.
    let path = temp_path("fresh");
    let _ = std::fs::remove_file(&path);
    match load_map(&path) {
        Err(MapLoadError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
    let dir = Directory::start_persistent(map.clone(), 0, &path).expect("first boot works");
    assert_eq!(dir.map().to_text(), map.to_text());
    // And the first boot persisted it for next time.
    assert_eq!(
        load_map(&path).expect("now persisted").to_text(),
        map.to_text()
    );
    dir.stop();
    let _ = std::fs::remove_file(&path);
}
