//! Loopback cluster integration: a directory and two in-process cluster
//! nodes on ephemeral ports, with one **live shard migration** under a
//! 20k-request mixed READ/WRITE load through the router.
//!
//! Asserted end-to-end:
//!
//! * exactly-one-outcome — every journal record resolves exactly once,
//!   no conflicting receipts, no unknown tags, and the report ledger
//!   accounts for every planned request (the ContractChecker clauses,
//!   checked directly to keep the dependency arrow chaos → cluster);
//! * learner continuity — the migrated range's ThresholdLearner arrives
//!   on the target with its update counter intact (the target's
//!   `server.learner.shard<r>.updates` gauge resumes from at least the
//!   source's pre-migration value instead of restarting at zero);
//! * the cluster STATS plane sees both nodes and sums their counters.

use std::time::{Duration, Instant};

use rif_cluster::stats::NodeStats;
use rif_cluster::{Directory, NodeInfo, RouterConfig, ShardMap};
use rif_server::client::Conn;
use rif_server::protocol::{Request, Response};
use rif_server::server::{Server, ServerConfig};

const RANGES: u32 = 4;
const CAPACITY: u64 = 8 << 30;

fn start_node(seed: u64) -> Server {
    Server::start(
        ServerConfig {
            shards: RANGES as usize,
            capacity_bytes: CAPACITY,
            cluster: true,
            learn: true,
            time_scale: 200.0,
            seed,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("node starts")
}

/// One STATS round-trip against a node.
fn node_stats(addr: &str) -> NodeStats {
    let mut conn = Conn::connect(addr).expect("connect for stats");
    conn.send(&Request::Stats { tag: 42 }).expect("send STATS");
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = conn.next_frame() {
            match rif_server::protocol::decode_response(&payload) {
                Ok(Response::Stats { text, .. }) => {
                    return NodeStats::parse_text(&text).expect("stats text parses")
                }
                Ok(other) => panic!("unexpected STATS reply: {other:?}"),
                Err(e) => panic!("undecodable STATS reply: {e}"),
            }
        }
        conn.pump().expect("stats conn alive");
    }
    panic!("STATS timed out");
}

fn learner_updates(stats: &NodeStats, range: u32) -> f64 {
    stats
        .gauges
        .get(&format!("server.learner.shard{range}.updates"))
        .copied()
        .unwrap_or(0.0)
}

#[test]
fn live_migration_under_load_is_exactly_once_with_learner_continuity() {
    let node_a = start_node(11);
    let node_b = start_node(22);
    let map = ShardMap::rebalanced(
        1,
        CAPACITY,
        RANGES,
        vec![
            NodeInfo {
                id: "a".into(),
                addr: node_a.local_addr().to_string(),
            },
            NodeInfo {
                id: "b".into(),
                addr: node_b.local_addr().to_string(),
            },
        ],
    )
    .expect("valid map");
    let dir = Directory::start(map.clone(), 0).expect("directory starts");

    // Migrate the hottest range (the one holding offset 0 — the zipf
    // head) so both sides of the handoff definitely see traffic.
    let (hot_range, source) = map.route(0);
    let source_id = source.id.clone();
    let source_addr = source.addr.clone();
    let (target_id, target_addr) = if source_id == "a" {
        ("b", node_b.local_addr().to_string())
    } else {
        ("a", node_a.local_addr().to_string())
    };

    // Sized so the load comfortably outlasts the 300ms pre-migration
    // learning window at the router's measured throughput — the
    // migration must land mid-load for the WRONG_SHARD/BUSY(moving)
    // assertions below to mean anything.
    let requests: u64 = 20_000;
    let cfg = RouterConfig {
        directory: dir.addr().to_string(),
        requests,
        depth: 32,
        read_ratio: 0.7,
        request_bytes: 16 * 1024,
        seed: 7,
        ..RouterConfig::default()
    };
    let loader = std::thread::spawn(move || rif_cluster::run_routed(&cfg).expect("routed load"));

    // Let the source learn on live traffic, snapshot its progress, then
    // migrate mid-load.
    std::thread::sleep(Duration::from_millis(300));
    let before = learner_updates(&node_stats(&source_addr), hot_range);
    assert!(
        before > 0.0,
        "source learner never updated before the migration (gauge missing?)"
    );
    let epoch = dir
        .migrate(hot_range, target_id)
        .expect("migration succeeds");
    assert_eq!(epoch, 2, "one migration bumps epoch 1 -> 2");

    let (report, journal) = loader.join().expect("router thread");

    // --- exactly-one-outcome, straight from the journal -----------------
    let unresolved = journal
        .records
        .iter()
        .filter(|r| r.outcome.is_none())
        .count();
    assert_eq!(unresolved, 0, "silent tags: {unresolved}");
    let conflicting: u32 = journal.records.iter().map(|r| r.conflicting_receipts).sum();
    assert_eq!(conflicting, 0, "conflicting receipts");
    assert_eq!(journal.unknown_receipts, 0, "unknown-tag receipts");
    assert_eq!(
        report.completed + report.failed + report.busy_dropped,
        requests,
        "ledger gap: {report:?}"
    );
    assert!(
        report.completed > requests / 2,
        "most requests should complete through the migration: {report:?}"
    );

    // The handoff was observable from the client side: the stale map
    // produced WRONG_SHARD or BUSY(moving) refusals that were retried.
    assert!(
        report.wrong_shard + report.busy_unavailable > 0,
        "migration left no client-visible trace: {report:?}"
    );

    // --- learner continuity across the handoff --------------------------
    let after = learner_updates(&node_stats(&target_addr), hot_range);
    assert!(
        after >= before,
        "target learner restarted: {after} updates on the target vs {before} \
         on the source before handoff"
    );

    // --- cluster STATS plane --------------------------------------------
    let report_text =
        rif_cluster::directory::fetch_cluster_stats(&dir.addr().to_string()).expect("fanout");
    assert!(report_text.starts_with("# rif-cluster-stats v1 nodes=2\n"));
    assert!(report_text.contains("\nnode a counter server.requests.read "));
    assert!(report_text.contains("\nnode b counter server.requests.read "));
    let a_accepted = node_stats(&node_a.local_addr().to_string())
        .counters
        .get("server.requests.read")
        .copied()
        .unwrap_or(0);
    assert!(
        report_text.contains("cluster counter server.requests.read"),
        "aggregate line missing"
    );
    assert!(a_accepted > 0, "node a served nothing");

    dir.stop();
    node_a.stop();
    node_b.stop();
}

#[test]
fn map_push_flips_a_cold_node_from_bouncing_to_serving() {
    // A cluster node owns nothing at boot: every request bounces. After
    // the directory's first push it serves exactly its owned ranges.
    let node = start_node(5);
    let addr = node.local_addr().to_string();

    let mut conn = Conn::connect(&addr).expect("connect");
    assert!(conn.version() >= 3, "cluster nodes speak v3");
    let probe = Request::Read {
        tenant: 0,
        tag: 1,
        offset: 0,
        bytes: 16 * 1024,
    };
    conn.send(&probe).expect("send probe");
    let resp = wait_response(&mut conn);
    assert!(
        matches!(resp, Response::WrongShard { epoch: 0, .. }),
        "cold node must refuse with WRONG_SHARD(0), got {resp:?}"
    );

    let map = ShardMap::rebalanced(
        1,
        CAPACITY,
        RANGES,
        vec![NodeInfo {
            id: "solo".into(),
            addr: addr.clone(),
        }],
    )
    .expect("valid map");
    let dir = Directory::start(map, 0).expect("directory starts");

    conn.send(&probe).expect("send probe again");
    let resp = wait_response(&mut conn);
    assert!(
        matches!(resp, Response::Done { .. }),
        "owned range must serve after MAP_PUSH, got {resp:?}"
    );

    dir.stop();
    node.stop();
}

fn wait_response(conn: &mut Conn) -> Response {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = conn.next_frame() {
            return rif_server::protocol::decode_response(&payload).expect("decodable");
        }
        conn.pump().expect("conn alive");
    }
    panic!("no response before deadline");
}
