//! Property suite for the versioned shard map (vendored proptest shim;
//! compile with `--features proptest`).
//!
//! Invariants under test:
//!
//! * rendezvous stability — a node join moves ranges only *onto* the new
//!   node; a node leave moves only the ranges the dead node owned;
//! * full LBA-space coverage with no overlaps at every epoch;
//! * `parse_text(to_text())` is the identity, and mutated texts either
//!   still parse to the same map or are rejected with a typed error —
//!   never a panic, never a silently different map;
//! * replicated maps (`R >= 2`): a range's primary is never in its own
//!   follower set, follower sets are duplicate-free and sized
//!   `min(R, nodes) - 1`, routing over replicas stays total, losing a
//!   primary promotes one of its *own* followers (locality), and the
//!   text codec round-trips the replica fields.

use proptest::prelude::*;
use rif_cluster::{NodeInfo, ShardMap};

/// `n` nodes with distinct single-letter-ish ids and distinct ports.
fn nodes(n: usize) -> Vec<NodeInfo> {
    (0..n)
        .map(|i| NodeInfo {
            id: format!("n{i:02}"),
            addr: format!("127.0.0.1:{}", 4000 + i),
        })
        .collect()
}

fn arb_map() -> impl Strategy<Value = ShardMap> {
    (1usize..6, 1u32..24, 0u64..3, 1u64..1_000_000).prop_map(|(n, ranges, epoch, cap_seed)| {
        let capacity = ranges as u64 + cap_seed * 4096;
        ShardMap::rebalanced(epoch, capacity, ranges, nodes(n)).expect("valid map inputs")
    })
}

/// Like [`arb_map`] but with a replication factor in `2..=4` (follower
/// sets shrink when the cluster is smaller than `R`).
fn arb_replicated_map() -> impl Strategy<Value = ShardMap> {
    (2usize..7, 1u32..24, 0u64..3, 2u32..5, 1u64..1_000_000).prop_map(
        |(n, ranges, epoch, replicas, cap_seed)| {
            let capacity = ranges as u64 + cap_seed * 4096;
            ShardMap::replicated(epoch, capacity, ranges, nodes(n), replicas)
                .expect("valid replicated map inputs")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serialize_parse_is_identity(m in arb_map()) {
        let text = m.to_text();
        prop_assert_eq!(ShardMap::parse_text(&text).unwrap(), m.clone());
        // A second trip is byte-stable.
        prop_assert_eq!(ShardMap::parse_text(&text).unwrap().to_text(), text);
    }

    #[test]
    fn every_range_has_exactly_one_owner(m in arb_map()) {
        let mut covered = vec![0u32; m.ranges as usize];
        for node in &m.nodes {
            for r in m.owned_ranges(&node.id) {
                covered[r as usize] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "coverage {covered:?}");
        // Routing always lands inside the grid and on the assigned owner.
        for probe in 0..64u64 {
            let offset = probe.wrapping_mul(0x9E37_79B9) % (4 * m.capacity_bytes.max(1));
            let (range, node) = m.route(offset);
            prop_assert!(range < m.ranges);
            prop_assert_eq!(&m.nodes[m.assignment[range as usize]].id, &node.id);
        }
    }

    #[test]
    fn node_join_moves_ranges_only_onto_the_new_node(
        n in 1usize..5, ranges in 1u32..24, cap_seed in 1u64..1000
    ) {
        let capacity = ranges as u64 * 4096 * cap_seed;
        let before = ShardMap::rebalanced(1, capacity, ranges, nodes(n)).unwrap();
        let mut joined = nodes(n);
        joined.push(NodeInfo { id: "zz-new".into(), addr: "127.0.0.1:9999".into() });
        let after = ShardMap::rebalanced(2, capacity, ranges, joined).unwrap();
        for r in 0..ranges {
            let (b, a) = (before.node_of(r).id.clone(), after.node_of(r).id.clone());
            prop_assert!(a == b || a == "zz-new", "range {r} moved {b} -> {a}, not to the joiner");
        }
    }

    #[test]
    fn node_leave_moves_only_the_dead_nodes_ranges(
        n in 2usize..6, ranges in 1u32..24, dead in 0usize..6, cap_seed in 1u64..1000
    ) {
        let dead = dead % n;
        let capacity = ranges as u64 * 4096 * cap_seed;
        let before = ShardMap::rebalanced(1, capacity, ranges, nodes(n)).unwrap();
        let dead_id = before.nodes[dead].id.clone();
        let after = before.without_node(&dead_id).unwrap();
        prop_assert_eq!(after.epoch, before.epoch + 1);
        for r in 0..ranges {
            let b = before.node_of(r).id.clone();
            let a = after.node_of(r).id.clone();
            if b == dead_id {
                prop_assert!(a != dead_id, "range {r} still on the dead node");
            } else {
                prop_assert_eq!(a, b, "surviving range {r} moved needlessly");
            }
        }
    }

    #[test]
    fn mutated_text_never_parses_to_a_different_map(m in arb_map(), cut in any::<u64>()) {
        let text = m.to_text();
        // Truncate at an arbitrary byte boundary: either still the same
        // map (cut landed past the content) or a typed error.
        let cut = (cut % (text.len() as u64 + 1)) as usize;
        let cut = (0..=cut).rev().find(|&i| text.is_char_boundary(i)).unwrap_or(0);
        match ShardMap::parse_text(&text[..cut]) {
            Ok(parsed) => prop_assert_eq!(parsed, m.clone()),
            Err(_) => {}
        }
        // Flipping the epoch field is visible, not silently ignored.
        let bumped = text.replacen(
            &format!("epoch={}", m.epoch),
            &format!("epoch={}", m.epoch + 7),
            1,
        );
        let reparsed = ShardMap::parse_text(&bumped).unwrap();
        prop_assert_eq!(reparsed.epoch, m.epoch + 7);
    }

    #[test]
    fn replica_sets_are_well_formed(m in arb_replicated_map()) {
        let want = (m.replicas as usize).min(m.nodes.len()) - 1;
        for r in 0..m.ranges {
            let primary = m.node_of(r).id.clone();
            let followers: Vec<String> =
                m.followers_of(r).iter().map(|n| n.id.clone()).collect();
            prop_assert!(
                !followers.contains(&primary),
                "range {r}: primary {primary} follows itself"
            );
            let mut dedup = followers.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), followers.len(), "range {r}: duplicate follower");
            prop_assert_eq!(followers.len(), want, "range {r}: wrong follower count");
        }
    }

    #[test]
    fn routing_is_total_over_replicas(m in arb_replicated_map()) {
        // Every offset routes to a range whose replica list is
        // non-empty, primary-first, and all-distinct — so a router may
        // pick *any* index `pref % len` and land on a real node.
        for probe in 0..64u64 {
            let offset = probe.wrapping_mul(0x9E37_79B9) % (4 * m.capacity_bytes.max(1));
            let (range, primary) = m.route(offset);
            let replicas = m.replicas_of(range);
            prop_assert!(!replicas.is_empty());
            prop_assert_eq!(&replicas[0].id, &primary.id);
            let mut ids: Vec<&str> = replicas.iter().map(|n| n.id.as_str()).collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), replicas.len(), "replica list has duplicates");
        }
    }

    #[test]
    fn losing_a_primary_promotes_one_of_its_own_followers(
        m in arb_replicated_map(), dead in 0usize..8
    ) {
        let dead_id = m.nodes[dead % m.nodes.len()].id.clone();
        let after = m.without_node(&dead_id).unwrap();
        prop_assert_eq!(after.epoch, m.epoch + 1);
        for r in 0..m.ranges {
            let b = m.node_of(r).id.clone();
            let old_followers: Vec<String> =
                m.followers_of(r).iter().map(|n| n.id.clone()).collect();
            let a = after.node_of(r).id.clone();
            if b == dead_id {
                // Promotion keeps locality: the shipped replica wins
                // whenever one survived.
                if old_followers.iter().any(|f| *f != dead_id) {
                    prop_assert!(
                        old_followers.contains(&a),
                        "range {r}: promoted {a}, not a surviving follower of {b}"
                    );
                }
                prop_assert!(a != dead_id, "range {r} still on the dead node");
            } else {
                prop_assert_eq!(&a, &b, "surviving range {r} moved needlessly");
            }
            // The promoted map is itself well-formed.
            let new_followers: Vec<String> =
                after.followers_of(r).iter().map(|n| n.id.clone()).collect();
            prop_assert!(!new_followers.contains(&a), "range {r}: new primary follows itself");
            prop_assert!(
                !new_followers.contains(&dead_id),
                "range {r}: dead node still follows"
            );
        }
    }

    #[test]
    fn replicated_text_round_trips_and_r1_stays_legacy(m in arb_replicated_map()) {
        // Replica fields survive the canonical codec byte-for-byte.
        let text = m.to_text();
        let parsed = ShardMap::parse_text(&text).unwrap();
        prop_assert_eq!(parsed.clone(), m.clone());
        prop_assert_eq!(parsed.to_text(), text.clone());
        if m.nodes.len() > 1 {
            prop_assert!(text.contains("replicas="), "replicated map hides its R");
            prop_assert!(text.contains("\nfollow "), "replicated map lost follow lines");
        }
        // An R = 1 map over the same fleet serializes exactly as maps
        // did before replication existed: no replica vocabulary at all.
        let legacy = ShardMap::rebalanced(
            m.epoch, m.capacity_bytes, m.ranges, m.nodes.clone()
        ).unwrap();
        let legacy_text = legacy.to_text();
        prop_assert!(!legacy_text.contains("replicas="));
        prop_assert!(!legacy_text.contains("\nfollow "));
        prop_assert_eq!(ShardMap::parse_text(&legacy_text).unwrap(), legacy);
    }
}
