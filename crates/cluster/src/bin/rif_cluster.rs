//! Cluster driver for the RiF serving layer.
//!
//! Usage:
//!
//! ```text
//! rif-cluster directory --node ID=ADDR [--node ID=ADDR ...]
//!                       [--port N] [--capacity-gib N] [--ranges N]
//!                       [--replicas N] [--persist PATH]
//! rif-cluster map --directory ADDR
//! rif-cluster migrate --directory ADDR --range N --node ID
//! rif-cluster stats --directory ADDR
//! rif-cluster load --directory ADDR [--requests N] [--depth N]
//!                  [--read-ratio X] [--seed N] [--request-kib N]
//! ```
//!
//! `directory` starts the shard directory over the listed nodes (each a
//! running `rif-server --cluster`), pushes the initial map to them, and
//! serves until a wire `SHUTDOWN`. It prints the sentinel line
//! `rif-cluster directory listening on ADDR` once ready. `--replicas 2`
//! builds a replicated map (each range a primary plus rendezvous-ranked
//! followers); `--persist PATH` makes the map durable — a restarted
//! directory resumes from the persisted epoch, ignoring the argument
//! map, and refuses a corrupt file instead of silently starting over.
//!
//! `map`, `migrate`, and `stats` are one-shot admin RPCs against a
//! running directory. `load` runs the routed closed-loop client and
//! prints its JSON report.

use std::time::Duration;

use rif_cluster::directory::{fetch_cluster_stats, fetch_map_text, request_migrate};
use rif_cluster::{run_routed, Directory, NodeInfo, RouterConfig, ShardMap};

fn usage() -> ! {
    eprintln!(
        "usage: rif-cluster directory --node ID=ADDR [--node ID=ADDR ...]\n\
         \x20                          [--port N] [--capacity-gib N] [--ranges N]\n\
         \x20                          [--replicas N] [--persist PATH]\n\
         \x20      rif-cluster map --directory ADDR\n\
         \x20      rif-cluster migrate --directory ADDR --range N --node ID\n\
         \x20      rif-cluster stats --directory ADDR\n\
         \x20      rif-cluster load --directory ADDR [--requests N] [--depth N]\n\
         \x20                       [--read-ratio X] [--seed N] [--request-kib N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage());
    let rest: Vec<String> = args.collect();
    match mode.as_str() {
        "directory" => directory_cmd(&rest),
        "map" => map_cmd(&rest),
        "migrate" => migrate_cmd(&rest),
        "stats" => stats_cmd(&rest),
        "load" => load_cmd(&rest),
        _ => usage(),
    }
}

/// Pulls `--flag value` pairs out of `rest` (flags may repeat).
fn flag_map(rest: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            usage();
        }
        let value = it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        });
        out.push((flag.clone(), value.clone()));
    }
    out
}

fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(f, _)| f == name)
        .map(|(_, v)| v.as_str())
}

fn parse_or_usage<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {name}: `{v}`");
        usage()
    })
}

fn require<'a>(flags: &'a [(String, String)], name: &str) -> &'a str {
    get(flags, name).unwrap_or_else(|| {
        eprintln!("{name} is required");
        usage()
    })
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("rif-cluster: {e}");
    std::process::exit(1);
}

fn directory_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let nodes: Vec<NodeInfo> = flags
        .iter()
        .filter(|(f, _)| f == "--node")
        .map(|(_, v)| match v.split_once('=') {
            Some((id, addr)) if !id.is_empty() && !addr.is_empty() => NodeInfo {
                id: id.to_string(),
                addr: addr.to_string(),
            },
            _ => {
                eprintln!("bad --node `{v}` (want ID=ADDR)");
                usage()
            }
        })
        .collect();
    if nodes.is_empty() {
        eprintln!("--node is required at least once");
        usage();
    }
    let port: u16 = get(&flags, "--port")
        .map(|v| parse_or_usage(v, "--port"))
        .unwrap_or(0);
    let capacity_gib: u64 = get(&flags, "--capacity-gib")
        .map(|v| parse_or_usage(v, "--capacity-gib"))
        .unwrap_or(8);
    let ranges: u32 = get(&flags, "--ranges")
        .map(|v| parse_or_usage(v, "--ranges"))
        .unwrap_or(4);
    let replicas: u32 = get(&flags, "--replicas")
        .map(|v| parse_or_usage(v, "--replicas"))
        .unwrap_or(1);

    let map = if replicas > 1 {
        ShardMap::replicated(1, capacity_gib << 30, ranges, nodes, replicas)
            .unwrap_or_else(|e| fail(e))
    } else {
        ShardMap::rebalanced(1, capacity_gib << 30, ranges, nodes).unwrap_or_else(|e| fail(e))
    };
    let dir = match get(&flags, "--persist") {
        Some(path) => Directory::start_persistent(map, port, path).unwrap_or_else(|e| fail(e)),
        None => Directory::start(map, port).unwrap_or_else(|e| fail(e)),
    };
    // The sentinel line scripts wait for.
    println!("rif-cluster directory listening on {}", dir.addr());
    while !dir.stopped() {
        std::thread::sleep(Duration::from_millis(50));
    }
    dir.stop();
}

fn map_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let (epoch, text) = fetch_map_text(require(&flags, "--directory")).unwrap_or_else(|e| fail(e));
    eprintln!("epoch {epoch}");
    print!("{text}");
}

fn migrate_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let range: u32 = parse_or_usage(require(&flags, "--range"), "--range");
    let node = require(&flags, "--node");
    let (epoch, text) =
        request_migrate(require(&flags, "--directory"), range, node).unwrap_or_else(|e| fail(e));
    eprintln!("epoch {epoch}");
    print!("{text}");
}

fn stats_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let text = fetch_cluster_stats(require(&flags, "--directory")).unwrap_or_else(|e| fail(e));
    print!("{text}");
}

fn load_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let mut cfg = RouterConfig {
        directory: require(&flags, "--directory").to_string(),
        ..RouterConfig::default()
    };
    if let Some(v) = get(&flags, "--requests") {
        cfg.requests = parse_or_usage(v, "--requests");
    }
    if let Some(v) = get(&flags, "--depth") {
        cfg.depth = parse_or_usage(v, "--depth");
    }
    if let Some(v) = get(&flags, "--read-ratio") {
        cfg.read_ratio = parse_or_usage(v, "--read-ratio");
    }
    if let Some(v) = get(&flags, "--seed") {
        cfg.seed = parse_or_usage(v, "--seed");
    }
    if let Some(v) = get(&flags, "--request-kib") {
        cfg.request_bytes = parse_or_usage::<u32>(v, "--request-kib") * 1024;
    }
    let (report, _journal) = run_routed(&cfg).unwrap_or_else(|e| fail(e));
    println!("{}", report.to_json());
}
