//! Cluster-wide STATS aggregation.
//!
//! Every node answers `STATS` with the deterministic text rendering of
//! its [`rif_events::trace::MetricsRegistry`] — one `kind key value`
//! line per metric. This module parses those texts back into structured
//! form and folds any number of them into one cluster report using the
//! same reduction rules as `MetricsRegistry::merge`: counters add,
//! gauges take the maximum (they are saturation-style gauges), and
//! histograms combine count-sum / count-weighted mean / max-max.
//!
//! The aggregated report keeps both views, deterministically ordered:
//!
//! ```text
//! # rif-cluster-stats v1 nodes=2
//! cluster counter server.accepted 200
//! cluster gauge server.write_queue.saturation 0.250000
//! cluster histogram server.latency count=200 mean_us=81.250 max_us=412.000
//! node a counter server.accepted 120
//! node b counter server.accepted 80
//! ```

use std::collections::BTreeMap;

/// One parsed `histogram` line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistStat {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Maximum latency in microseconds.
    pub max_us: f64,
}

/// The structured form of one node's STATS text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// Monotonic counters by key.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges by key.
    pub gauges: BTreeMap<String, f64>,
    /// Latency summaries by key.
    pub histograms: BTreeMap<String, HistStat>,
}

/// A STATS line that does not match the `MetricsRegistry::lines` shape
/// (1-based line number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsParseError(pub usize);

impl std::fmt::Display for StatsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stats line {}: malformed metric line", self.0)
    }
}

impl std::error::Error for StatsParseError {}

impl NodeStats {
    /// Parses the text a node returns for `STATS`. Empty text is a
    /// valid, empty registry.
    pub fn parse_text(text: &str) -> Result<NodeStats, StatsParseError> {
        let mut out = NodeStats::default();
        for (i, line) in text.lines().enumerate() {
            let err = || StatsParseError(i + 1);
            let mut parts = line.split(' ');
            match (parts.next(), parts.next()) {
                (Some("counter"), Some(k)) => {
                    let v = parts.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                    if parts.next().is_some() {
                        return Err(err());
                    }
                    out.counters.insert(k.to_string(), v);
                }
                (Some("gauge"), Some(k)) => {
                    let v: f64 = parts.next().and_then(|v| v.parse().ok()).ok_or_else(err)?;
                    if parts.next().is_some() || !v.is_finite() {
                        return Err(err());
                    }
                    out.gauges.insert(k.to_string(), v);
                }
                (Some("histogram"), Some(k)) => {
                    let mut field = |name: &str| -> Result<f64, StatsParseError> {
                        parts
                            .next()
                            .and_then(|kv| kv.strip_prefix(name))
                            .and_then(|kv| kv.strip_prefix('='))
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(err)
                    };
                    let count = field("count")?;
                    let mean_us = field("mean_us")?;
                    let max_us = field("max_us")?;
                    if parts.next().is_some() || count < 0.0 || count.fract() != 0.0 {
                        return Err(err());
                    }
                    out.histograms.insert(
                        k.to_string(),
                        HistStat {
                            count: count as u64,
                            mean_us,
                            max_us,
                        },
                    );
                }
                _ => return Err(err()),
            }
        }
        Ok(out)
    }

    /// Folds `other` into `self` with the cluster reduction rules:
    /// counters add, gauges max, histograms count-sum with
    /// count-weighted mean and max-max.
    pub fn merge(&mut self, other: &NodeStats) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(v);
            *slot = slot.max(v);
        }
        for (k, &h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => {
                    let total = mine.count + h.count;
                    if total > 0 {
                        mine.mean_us = (mine.mean_us * mine.count as f64
                            + h.mean_us * h.count as f64)
                            / total as f64;
                    }
                    mine.count = total;
                    mine.max_us = mine.max_us.max(h.max_us);
                }
                None => {
                    self.histograms.insert(k.clone(), h);
                }
            }
        }
    }

    fn lines_with_prefix(&self, prefix: &str, out: &mut String) {
        for (k, v) in &self.counters {
            out.push_str(&format!("{prefix} counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{prefix} gauge {k} {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{prefix} histogram {k} count={} mean_us={:.3} max_us={:.3}\n",
                h.count, h.mean_us, h.max_us
            ));
        }
    }
}

/// Renders the cluster report: one `cluster`-prefixed aggregate section
/// followed by each node's own metrics under `node <id>`. Nodes are
/// emitted in the order given (the caller passes them map-sorted), and
/// every section sorts by key, so the report is deterministic.
pub fn cluster_report(per_node: &[(String, NodeStats)]) -> String {
    let mut total = NodeStats::default();
    for (_, s) in per_node {
        total.merge(s);
    }
    let mut out = format!("# rif-cluster-stats v1 nodes={}\n", per_node.len());
    total.lines_with_prefix("cluster", &mut out);
    for (id, s) in per_node {
        s.lines_with_prefix(&format!("node {id}"), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_registry_rendering_exactly() {
        use rif_events::trace::MetricsRegistry;
        use rif_events::SimDuration;
        let mut m = MetricsRegistry::new();
        m.inc("server.accepted", 3);
        m.set_gauge("server.depth", 0.5);
        m.observe("server.latency", SimDuration::from_us(10));
        m.observe("server.latency", SimDuration::from_us(30));
        let parsed = NodeStats::parse_text(&m.lines().join("\n")).unwrap();
        assert_eq!(parsed.counters["server.accepted"], 3);
        assert_eq!(parsed.gauges["server.depth"], 0.5);
        let h = parsed.histograms["server.latency"];
        assert_eq!(h.count, 2);
        assert!((h.mean_us - 20.0).abs() < 1e-3);
        assert!((h.max_us - 30.0).abs() < 1e-3);
    }

    #[test]
    fn malformed_stats_lines_are_rejected() {
        for text in [
            "counter a",
            "counter a x",
            "counter a 1 2",
            "gauge g nan",
            "gauge g",
            "histogram h count=1 mean_us=2",
            "histogram h count=-1 mean_us=2.0 max_us=3.0",
            "frob a 1",
        ] {
            assert_eq!(
                NodeStats::parse_text(text),
                Err(StatsParseError(1)),
                "text {text:?}"
            );
        }
        assert_eq!(
            NodeStats::parse_text("counter a 1\nbad"),
            Err(StatsParseError(2))
        );
        assert!(NodeStats::parse_text("").unwrap().counters.is_empty());
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_weights_histograms() {
        let a = NodeStats::parse_text(
            "counter c 10\ngauge g 0.200000\nhistogram h count=2 mean_us=10.000 max_us=20.000",
        )
        .unwrap();
        let b = NodeStats::parse_text(
            "counter c 5\ncounter only_b 1\ngauge g 0.700000\nhistogram h count=6 mean_us=30.000 max_us=90.000",
        )
        .unwrap();
        let mut total = a.clone();
        total.merge(&b);
        assert_eq!(total.counters["c"], 15);
        assert_eq!(total.counters["only_b"], 1);
        assert_eq!(total.gauges["g"], 0.7);
        let h = total.histograms["h"];
        assert_eq!(h.count, 8);
        assert!(
            (h.mean_us - 25.0).abs() < 1e-9,
            "weighted mean, got {}",
            h.mean_us
        );
        assert_eq!(h.max_us, 90.0);
    }

    #[test]
    fn report_is_deterministic_and_sectioned() {
        let a = NodeStats::parse_text("counter c 1").unwrap();
        let b = NodeStats::parse_text("counter c 2").unwrap();
        let report = cluster_report(&[("a".into(), a), ("b".into(), b)]);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines[0], "# rif-cluster-stats v1 nodes=2");
        assert_eq!(lines[1], "cluster counter c 3");
        assert_eq!(lines[2], "node a counter c 1");
        assert_eq!(lines[3], "node b counter c 2");
    }
}
