//! The shard directory: the single writer of the cluster's [`ShardMap`].
//!
//! A `Directory` owns the authoritative map and serves it over the same
//! length-prefixed wire protocol the nodes speak (protocol v3). It is a
//! plain `std` TCP service — accept loop on one thread, one handler
//! thread per connection — answering:
//!
//! - `HELLO` — negotiates v3 like any node;
//! - `MAP_GET` — the current map text and epoch;
//! - `MIGRATE {range, node}` — orchestrates a live handoff (below) and
//!   answers `MAP_RESP` with the post-migration map;
//! - `STATS` — fans `STATS` out to every node in the map and answers
//!   with the aggregated [`cluster_report`](crate::stats::cluster_report);
//! - `SHUTDOWN` — `GOODBYE`, then the directory stops.
//!
//! # Handoff protocol
//!
//! A migration of `range` from its current owner to `node` runs:
//!
//! 1. `MIGRATE_OUT range` to the source. The source seals the range
//!    (`BUSY(moving)` to new arrivals), drains every in-flight request
//!    for it, and returns its ThresholdLearner snapshot.
//! 2. `MIGRATE_IN range + state` to the target, which pre-seeds its
//!    learner. The target does not own the range yet.
//! 3. Epoch bump: the directory installs `map.moved(range, node)` and
//!    pushes the new map to every node (`MAP_PUSH`). Only this push
//!    flips ownership — the source stops answering `BUSY(moving)` and
//!    starts answering `WRONG_SHARD(epoch)`, the target starts serving.
//!
//! If the source is unreachable (crashed node) the handoff degrades to a
//! failover: the learner state is lost (empty snapshot) but ownership
//! still moves, which is exactly the [`rebalance_away`] path. If the
//! *target* is unreachable the migration aborts: the epoch is bumped
//! with the assignment unchanged and re-pushed, which un-seals the
//! source (a `MAP_PUSH` resets every range it lists to owned).
//!
//! [`rebalance_away`]: Directory::rebalance_away

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rif_server::client::Conn;
use rif_server::protocol::{
    decode_request, encode_response, write_frame, ErrorCode, FrameBuffer, Request, Response,
    PROTOCOL_VERSION,
};

use crate::map::{ShardMap, ShardMapError};
use crate::stats::{cluster_report, NodeStats};

/// Correlation tag the directory uses on the RPCs it originates.
const DIRECTORY_TAG: u64 = u64::MAX - 1;

/// How long the directory waits for one node reply before declaring the
/// node unreachable.
const RPC_TIMEOUT: Duration = Duration::from_secs(5);

/// Accept-loop poll cadence while idle.
const ACCEPT_TICK: Duration = Duration::from_millis(5);

struct Inner {
    map: Mutex<ShardMap>,
    /// Serializes migrations and rebalances so two admin requests can
    /// never interleave their epoch bumps.
    admin: Mutex<()>,
    stop: AtomicBool,
    /// When set, every installed map (epoch included) is written here
    /// atomically, and a restarting directory restores from it.
    persist: Option<PathBuf>,
}

/// Why a persisted directory map could not be restored.
#[derive(Debug)]
pub enum MapLoadError {
    /// The file could not be read (missing counts as this too).
    Io(io::Error),
    /// The file's contents are not a valid canonical map serialization
    /// — a crash mid-write without the atomic rename, or corruption.
    Malformed(ShardMapError),
}

impl std::fmt::Display for MapLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapLoadError::Io(e) => write!(f, "reading persisted map: {e}"),
            MapLoadError::Malformed(e) => write!(f, "persisted map is corrupt: {e}"),
        }
    }
}

impl std::error::Error for MapLoadError {}

/// Loads a persisted directory map (the canonical text serialization,
/// epoch included) with typed errors, so a restarting directory can
/// tell "no file yet" from "the file is corrupt".
pub fn load_map(path: &Path) -> Result<ShardMap, MapLoadError> {
    let text = std::fs::read_to_string(path).map_err(MapLoadError::Io)?;
    ShardMap::parse_text(&text).map_err(MapLoadError::Malformed)
}

/// Atomically persists `map` to `path`: write to a sibling tmp file,
/// then rename over — a crash mid-write leaves the old file intact.
fn persist_map(path: &Path, map: &ShardMap) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, map.to_text())?;
    std::fs::rename(&tmp, path)
}

/// A running directory service (see the module docs).
pub struct Directory {
    addr: SocketAddr,
    inner: Arc<Inner>,
    accept: Option<thread::JoinHandle<()>>,
}

/// Sends one request on an already-negotiated connection and waits for
/// the reply (directory RPCs are strictly one-at-a-time per connection).
fn rpc(conn: &mut Conn, req: &Request) -> io::Result<Response> {
    conn.send(req)?;
    let deadline = Instant::now() + RPC_TIMEOUT;
    while Instant::now() < deadline {
        if let Some(payload) = conn
            .next_frame()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        {
            return rif_server::protocol::decode_response(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
        }
        conn.pump()?;
    }
    Err(io::ErrorKind::TimedOut.into())
}

/// Pushes `map` to the node at `addr`, telling it which ranges it owns,
/// which it follows, and where to ship each owned range's replicas.
/// Returns the epoch the node acknowledged.
fn push_to(addr: &str, map: &ShardMap, id: &str) -> io::Result<u64> {
    let owned = map.owned_ranges(id);
    let replicas: Vec<(u32, String)> = owned
        .iter()
        .flat_map(|&r| {
            map.followers_of(r)
                .into_iter()
                .map(move |n| (r, n.addr.clone()))
        })
        .collect();
    let mut conn = Conn::connect(addr)?;
    let resp = rpc(
        &mut conn,
        &Request::MapPush {
            tag: DIRECTORY_TAG,
            epoch: map.epoch,
            capacity_bytes: map.capacity_bytes,
            ranges: map.ranges,
            owned,
            followed: map.followed_ranges(id),
            replicas,
            map_text: map.to_text(),
        },
    )?;
    match resp {
        Response::MapResp { epoch, .. } => Ok(epoch),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("MAP_PUSH to {addr}: unexpected reply {other:?}"),
        )),
    }
}

impl Directory {
    /// Binds `127.0.0.1:port` (0 for ephemeral), installs `map` on every
    /// reachable node via `MAP_PUSH`, and starts serving. Nodes that are
    /// not up yet are skipped — call [`push_all`](Directory::push_all)
    /// once they are.
    pub fn start(map: ShardMap, port: u16) -> io::Result<Directory> {
        Directory::start_inner(map, port, None)
    }

    /// Like [`start`](Directory::start), but durable: the map (epoch
    /// included) is persisted to `path` on boot and after every epoch
    /// bump, and a directory restarting over an existing file restores
    /// the persisted map **instead of** the `map` argument — same
    /// epoch, byte-identical text — then re-pushes it to every node, so
    /// a directory kill loses no placement and forces no re-migration.
    /// A corrupt file fails the boot with [`MapLoadError::Malformed`]
    /// (wrapped in `InvalidData`) rather than silently restarting from
    /// scratch; use [`load_map`] to inspect.
    pub fn start_persistent(
        map: ShardMap,
        port: u16,
        path: impl Into<PathBuf>,
    ) -> io::Result<Directory> {
        let path = path.into();
        let map = match load_map(&path) {
            Ok(restored) => restored,
            Err(MapLoadError::Io(e)) if e.kind() == io::ErrorKind::NotFound => map,
            Err(MapLoadError::Io(e)) => return Err(e),
            Err(e @ MapLoadError::Malformed(_)) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        };
        persist_map(&path, &map)?;
        Directory::start_inner(map, port, Some(path))
    }

    fn start_inner(map: ShardMap, port: u16, persist: Option<PathBuf>) -> io::Result<Directory> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            map: Mutex::new(map),
            admin: Mutex::new(()),
            stop: AtomicBool::new(false),
            persist,
        });
        let dir = Directory {
            addr,
            inner: inner.clone(),
            accept: Some(thread::spawn(move || accept_loop(listener, inner))),
        };
        dir.push_all();
        Ok(dir)
    }

    /// The bound address routers and admin clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the current map.
    pub fn map(&self) -> ShardMap {
        lock(&self.inner.map).clone()
    }

    /// Pushes the current map to every node; returns how many acked.
    pub fn push_all(&self) -> usize {
        let map = self.map();
        map.nodes
            .iter()
            .filter(|n| push_to(&n.addr, &map, &n.id).is_ok())
            .count()
    }

    /// Live-migrates `range` to node `to_id` with the three-step handoff
    /// in the module docs. Returns the new epoch.
    pub fn migrate(&self, range: u32, to_id: &str) -> io::Result<u64> {
        let _admin = lock(&self.inner.admin);
        migrate_locked(&self.inner, range, to_id)
    }

    /// Removes `dead_id` from the map (a crashed node), re-placing only
    /// its ranges by rendezvous over the survivors, and pushes the new
    /// epoch everywhere. Returns the new epoch.
    pub fn rebalance_away(&self, dead_id: &str) -> io::Result<u64> {
        let _admin = lock(&self.inner.admin);
        let next = lock(&self.inner.map)
            .without_node(dead_id)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        install_and_push(&self.inner, next)
    }

    /// True once the directory has been asked to stop (via
    /// [`stop`](Directory::stop) or a wire `SHUTDOWN`).
    pub fn stopped(&self) -> bool {
        self.inner.stop.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins it. Open handler connections wind
    /// down on their next poll tick.
    pub fn stop(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

impl Drop for Directory {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Admin client: fetches `(epoch, map text)` from a running directory.
pub fn fetch_map_text(addr: &str) -> io::Result<(u64, String)> {
    let mut conn = Conn::connect(addr)?;
    match rpc(&mut conn, &Request::MapGet { tag: DIRECTORY_TAG })? {
        Response::MapResp { epoch, text, .. } => Ok((epoch, text)),
        other => Err(unexpected("MAP_GET", &other)),
    }
}

/// Admin client: asks the directory to migrate `range` to node `to_id`;
/// returns the post-migration `(epoch, map text)`.
pub fn request_migrate(addr: &str, range: u32, to_id: &str) -> io::Result<(u64, String)> {
    let mut conn = Conn::connect(addr)?;
    let req = Request::Migrate {
        tag: DIRECTORY_TAG,
        range,
        node: to_id.to_string(),
    };
    match rpc(&mut conn, &req)? {
        Response::MapResp { epoch, text, .. } => Ok((epoch, text)),
        other => Err(unexpected("MIGRATE", &other)),
    }
}

/// Admin client: fetches the aggregated cluster STATS report.
pub fn fetch_cluster_stats(addr: &str) -> io::Result<String> {
    let mut conn = Conn::connect(addr)?;
    match rpc(&mut conn, &Request::Stats { tag: DIRECTORY_TAG })? {
        Response::Stats { text, .. } => Ok(text),
        other => Err(unexpected("STATS", &other)),
    }
}

fn unexpected(what: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{what}: unexpected reply {got:?}"),
    )
}

/// Installs `next` as the authoritative map and pushes it to every node
/// it lists. Returns the new epoch; push failures are non-fatal (the
/// node will catch up from `WRONG_SHARD` routing or the next push).
fn install_and_push(inner: &Inner, next: ShardMap) -> io::Result<u64> {
    let epoch = next.epoch;
    *lock(&inner.map) = next.clone();
    // Persist before pushing: once any node has seen the new epoch, a
    // restarting directory must never come back with an older one.
    if let Some(path) = &inner.persist {
        persist_map(path, &next).ok();
    }
    for n in &next.nodes {
        push_to(&n.addr, &next, &n.id).ok();
    }
    Ok(epoch)
}

fn migrate_locked(inner: &Inner, range: u32, to_id: &str) -> io::Result<u64> {
    let map = lock(&inner.map).clone();
    let next = map
        .moved(range, to_id)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let source = map.node_of(range).clone();
    if source.id == to_id {
        return Ok(map.epoch);
    }

    // Step 1: drain + snapshot at the source. An unreachable source
    // degrades to a failover with an empty snapshot.
    let state = match Conn::connect(&source.addr) {
        Ok(mut conn) => match rpc(
            &mut conn,
            &Request::MigrateOut {
                tag: DIRECTORY_TAG,
                range,
            },
        ) {
            Ok(Response::Migrated { state, .. }) => state,
            _ => String::new(),
        },
        Err(_) => String::new(),
    };

    // Step 2: pre-seed the target. If the target is down the migration
    // aborts — bump the epoch with the assignment unchanged so the
    // source's sealed range is re-opened by the push.
    let target = next.node_of(range).clone();
    let seeded = Conn::connect(&target.addr).and_then(|mut conn| {
        rpc(
            &mut conn,
            &Request::MigrateIn {
                tag: DIRECTORY_TAG,
                range,
                state,
            },
        )
    });
    if !matches!(seeded, Ok(Response::Migrated { .. })) {
        let mut unsealed = map;
        unsealed.epoch = next.epoch;
        install_and_push(inner, unsealed)?;
        return Err(io::Error::new(
            io::ErrorKind::NotConnected,
            format!("migration target {to_id} unreachable; aborted"),
        ));
    }

    // Step 3: the epoch bump makes it real.
    install_and_push(inner, next)
}

/// Fans `STATS` out to every node in `map`; unreachable nodes appear
/// with empty stats so the report still names them.
fn fanout_stats(map: &ShardMap) -> String {
    let per_node: Vec<(String, NodeStats)> = map
        .nodes
        .iter()
        .map(|n| {
            let stats = Conn::connect(&n.addr)
                .and_then(|mut conn| rpc(&mut conn, &Request::Stats { tag: DIRECTORY_TAG }))
                .ok()
                .and_then(|resp| match resp {
                    Response::Stats { text, .. } => NodeStats::parse_text(&text).ok(),
                    _ => None,
                })
                .unwrap_or_default();
            (n.id.clone(), stats)
        })
        .collect();
    cluster_report(&per_node)
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    let mut handlers = Vec::new();
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = inner.clone();
                handlers.push(thread::spawn(move || serve_conn(stream, inner)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_TICK),
            Err(_) => break,
        }
    }
    for h in handlers {
        h.join().ok();
    }
}

fn serve_conn(stream: TcpStream, inner: Arc<Inner>) {
    use std::io::Read;
    stream.set_nodelay(true).ok();
    if stream.set_read_timeout(Some(ACCEPT_TICK)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = io::BufReader::new(read_half);
    let mut writer = io::BufWriter::new(stream);
    let mut frames = FrameBuffer::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: while !inner.stop.load(Ordering::SeqCst) {
        while let Ok(Some(payload)) = frames.next_frame() {
            let Ok(req) = decode_request(&payload) else {
                let resp = Response::Error {
                    tag: 0,
                    code: ErrorCode::BadRequest,
                };
                if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                    break 'conn;
                }
                continue;
            };
            let resp = match req {
                Request::Hello { tag, version } => Response::HelloAck {
                    tag,
                    version: version.min(PROTOCOL_VERSION).max(1),
                },
                Request::MapGet { tag } => {
                    let map = lock(&inner.map);
                    Response::MapResp {
                        tag,
                        epoch: map.epoch,
                        text: map.to_text(),
                    }
                }
                Request::Migrate { tag, range, node } => {
                    let _admin = lock(&inner.admin);
                    match migrate_locked(&inner, range, &node) {
                        Ok(_) => {
                            let map = lock(&inner.map);
                            Response::MapResp {
                                tag,
                                epoch: map.epoch,
                                text: map.to_text(),
                            }
                        }
                        Err(_) => Response::Error {
                            tag,
                            code: ErrorCode::Internal,
                        },
                    }
                }
                Request::Stats { tag } => {
                    let map = lock(&inner.map).clone();
                    Response::Stats {
                        tag,
                        text: fanout_stats(&map),
                    }
                }
                Request::Shutdown { tag } => {
                    write_frame(&mut writer, &encode_response(&Response::Goodbye { tag })).ok();
                    inner.stop.store(true, Ordering::SeqCst);
                    break 'conn;
                }
                other => Response::Error {
                    tag: other.tag(),
                    code: ErrorCode::BadRequest,
                },
            };
            if write_frame(&mut writer, &encode_response(&resp)).is_err() {
                break 'conn;
            }
        }
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => frames.feed(&buf[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}
