//! The cluster-aware router: one closed-loop load generator that routes
//! every request to the node owning its LBA range.
//!
//! The router fetches the [`ShardMap`] from the directory once at start
//! and then treats routing misses as the map-staleness signal:
//!
//! - `WRONG_SHARD(epoch)` — the node no longer owns the range. The
//!   router refreshes the map from the directory (rate-limited) and
//!   re-issues the request through the normal BUSY retry budget. The
//!   refusal happened *before* admission, so the re-issue can never
//!   double-execute a write.
//! - `BUSY(moving)` — the range is mid-handoff on its current owner;
//!   plain BUSY retry, same budget.
//! - connect failure — the owner may be dead; refresh the map (the
//!   directory may have rebalanced away from it) and retry.
//!
//! Everything the router submits lands in the same [`Journal`] /
//! [`LoadReport`] ledger the single-node client uses, so the chaos
//! ContractChecker audits a cluster run unchanged: every tag resolves
//! exactly once, and `completed + failed + busy_dropped` accounts for
//! every planned request. Writes are only ever re-issued after refusals
//! that are guaranteed pre-admission (BUSY, WRONG_SHARD, or a failed
//! connect); a write whose connection died mid-flight has unknown fate
//! and is counted `failed`, never resent.
//!
//! On a replicated map (`replicas >= 2`) reads additionally fail over:
//! each [`Work`] carries a replica preference that rotates to the next
//! replica of the range on WRONG_SHARD, connection loss, a down
//! endpoint, or an in-flight deadline expiry, so a dead or partitioned
//! primary costs latency but not the read. Reads are idempotent, so a
//! timed-out read re-issues against another replica instead of failing;
//! a timed-out *write* stays terminal (its fate on the primary is
//! unknown). Every re-issue links `retry_of` to the chain's ROOT tag
//! (the first submission) — on v2+ links the link travels on the wire
//! as a one-entry BATCH frame so the server-side trace recorder
//! journals the logical request once, not once per retry, even when an
//! intermediate re-issue never reached admission. Tags resolved by the
//! deadline sweep stay tombstoned: a straggler response for one lands
//! as a duplicate receipt on its record, never as an unknown receipt.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::time::{Duration, Instant};

use rif_events::stats::LatencyHistogram;
use rif_events::{SimDuration, SimRng};
use rif_server::client::{Conn, Journal, LoadReport, Outcome, ReconnectBackoff, TagRecord};
use rif_server::protocol::{BatchEntry, BusyReason, ErrorCode, Request, Response};
use rif_workloads::{IoOp, SynthConfig};

use crate::map::ShardMap;

/// Salt for the router's jitter RNG stream (distinct from the client's).
const JITTER_SALT: u64 = 0x707C_E55E_D0C5_11F0;

/// How long one idle loop iteration sleeps.
const POLL_TICK: Duration = Duration::from_millis(1);

/// Knobs for one routed load run.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Directory address (`host:port`) serving MAP_GET.
    pub directory: String,
    /// Total requests to issue.
    pub requests: u64,
    /// Global in-flight cap across all endpoints.
    pub depth: usize,
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Zipf exponent for the synthetic workload.
    pub zipf_s: f64,
    /// Transfer size per request.
    pub request_bytes: u32,
    /// Tenant id stamped on every request.
    pub tenant: u32,
    /// Workload seed.
    pub seed: u64,
    /// Delay before re-issuing after BUSY / WRONG_SHARD / failed connect.
    pub busy_backoff: Duration,
    /// Re-issue budget per planned operation.
    pub max_busy_retries: u32,
    /// In-flight deadline; expiry resolves the tag `TimedOut`.
    pub request_deadline: Duration,
    /// Floor between two map refreshes (staleness signals inside the
    /// window reuse the map already fetched).
    pub map_refresh_floor: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            directory: "127.0.0.1:4000".into(),
            requests: 1000,
            depth: 16,
            read_ratio: 0.9,
            zipf_s: 0.9,
            request_bytes: 64 * 1024,
            tenant: 0,
            seed: 1,
            busy_backoff: Duration::from_millis(1),
            max_busy_retries: 100,
            request_deadline: Duration::from_secs(2),
            map_refresh_floor: Duration::from_millis(25),
        }
    }
}

/// One planned operation moving through the retry machinery.
#[derive(Debug, Clone)]
struct Work {
    op: IoOp,
    offset: u64,
    bytes: u32,
    /// Refusal re-issues consumed so far.
    busy: u32,
    /// Tag of the submission this one re-issues, if any.
    retry_of: Option<u64>,
    /// Which replica of the range a read targets (`pref % replicas`).
    /// Failover bumps it; writes ignore it and always hit the primary.
    replica_pref: u32,
    /// Earliest instant this work may be sent.
    not_before: Instant,
}

/// A tag currently on the wire.
struct Inflight {
    rec: usize,
    endpoint: u32,
    work: Work,
    sent: Instant,
}

/// One node connection plus its persistent reconnect state. The backoff
/// outlives individual connections — that is the whole point of the
/// per-endpoint [`ReconnectBackoff`].
struct Endpoint {
    index: u32,
    addr: String,
    conn: Option<Conn>,
    backoff: ReconnectBackoff,
    /// Connect attempts are suppressed until this instant.
    down_until: Instant,
    /// Whether this endpoint has ever held a live connection (the first
    /// connect is not a *re*connect).
    ever_connected: bool,
    /// Whether the current v1 connection was already kicked once to
    /// renegotiate HELLO before carrying a `retry_of` re-issue (see
    /// [`try_send`]). Cleared whenever a v2+ link is observed.
    v1_kicked: bool,
}

/// Shared mutable run state (journal, ledger, latency histogram).
struct RunState {
    journal: Journal,
    report: LoadReport,
    hist: LatencyHistogram,
    next_tag: u64,
    /// Tags the deadline sweep resolved, mapped to their journal record.
    /// A straggler response for one counts as a duplicate receipt on the
    /// record rather than an unknown receipt.
    expired: HashMap<u64, usize>,
}

/// Runs `cfg.requests` synthetic operations through the cluster behind
/// `cfg.directory`, returning the merged report and journal.
pub fn run_routed(cfg: &RouterConfig) -> io::Result<(LoadReport, Journal)> {
    let mut dir = Conn::connect(&cfg.directory)?;
    let mut map = fetch_map(&mut dir)?;
    let mut last_refresh = Instant::now();

    let synth = SynthConfig {
        read_ratio: cfg.read_ratio,
        zipf_s: cfg.zipf_s,
        request_bytes: cfg.request_bytes,
        ..SynthConfig::default()
    };
    let now = Instant::now();
    let mut queue: VecDeque<Work> = synth
        .generate(cfg.requests as usize, cfg.seed)
        .iter()
        .map(|r| Work {
            op: r.op,
            offset: r.offset,
            bytes: r.bytes,
            busy: 0,
            retry_of: None,
            replica_pref: 0,
            not_before: now,
        })
        .collect();

    let mut endpoints: HashMap<String, Endpoint> = HashMap::new();
    let mut inflight: HashMap<u64, Inflight> = HashMap::new();
    let mut st = RunState {
        journal: Journal::default(),
        report: LoadReport::default(),
        hist: LatencyHistogram::new(),
        next_tag: 1,
        expired: HashMap::new(),
    };
    let mut jitter = SimRng::stream(cfg.seed, JITTER_SALT);
    let started = Instant::now();
    let mut settled: u64 = 0;

    while settled < cfg.requests {
        let now = Instant::now();
        let mut progressed = false;

        // Fill the window with due work.
        let mut deferred: Vec<Work> = Vec::new();
        while inflight.len() < cfg.depth {
            let Some(work) = queue.pop_front() else { break };
            if work.not_before > now {
                deferred.push(work);
                continue;
            }
            match try_send(cfg, &map, &mut endpoints, &mut st, work, &mut jitter, now) {
                SendResult::Sent(tag, inf) => {
                    inflight.insert(tag, inf);
                    progressed = true;
                }
                SendResult::Requeued(work) => {
                    // Owner unreachable: the map may have moved on.
                    refresh_if_stale(&mut dir, &mut map, &mut last_refresh, cfg);
                    deferred.push(work);
                }
                SendResult::Dropped => {
                    settled += 1;
                    progressed = true;
                }
            }
            if deferred.len() >= cfg.depth {
                break;
            }
        }
        for w in deferred {
            queue.push_back(w);
        }

        // Drain responses from every endpoint.
        let wrong_shard_before = st.report.wrong_shard;
        let mut requeue: Vec<Work> = Vec::new();
        for ep in endpoints.values_mut() {
            let mut lost = false;
            if let Some(conn) = ep.conn.as_mut() {
                loop {
                    match conn.next_frame() {
                        Ok(Some(payload)) => {
                            progressed = true;
                            handle_frame(
                                cfg,
                                &map,
                                &payload,
                                ep.index,
                                &mut inflight,
                                &mut st,
                                &mut requeue,
                                &mut settled,
                            );
                        }
                        Ok(None) => match conn.pump() {
                            Ok(true) => continue,
                            Ok(false) => break,
                            Err(_) => {
                                lost = true;
                                break;
                            }
                        },
                        Err(_) => {
                            st.journal.undecodable_frames += 1;
                            st.report.protocol_errors += 1;
                            lost = true;
                            break;
                        }
                    }
                }
            }
            if lost {
                ep.conn = None;
                ep.down_until = now + ep.backoff.next_delay(POLL_TICK, &mut jitter);
                st.journal.conn_losses += 1;
                fail_endpoint_inflight(
                    cfg,
                    ep.index,
                    &mut inflight,
                    &mut st,
                    &mut requeue,
                    &mut settled,
                );
                progressed = true;
            }
        }
        for w in requeue {
            queue.push_back(w);
        }

        // WRONG_SHARD means the map is stale; refresh it here, where the
        // directory connection is borrowable.
        if st.report.wrong_shard > wrong_shard_before {
            refresh_if_stale(&mut dir, &mut map, &mut last_refresh, cfg);
        }

        // Deadline sweep.
        let now = Instant::now();
        let expired: Vec<u64> = inflight
            .iter()
            .filter(|(_, inf)| now.duration_since(inf.sent) > cfg.request_deadline)
            .map(|(&tag, _)| tag)
            .collect();
        for tag in expired {
            let inf = inflight.remove(&tag).expect("expired tag present");
            st.journal.records[inf.rec].outcome = Some(Outcome::TimedOut);
            st.report.timed_out += 1;
            // Tombstone the tag: the server (or a one-way partition that
            // only ate the request) may still answer it later.
            st.expired.insert(tag, inf.rec);
            progressed = true;
            let mut work = inf.work;
            let (range, _) = map.route(work.offset);
            if work.op == IoOp::Read && map.replicas_of(range).len() > 1 {
                // Idempotent and replicated: fail the read over to the
                // next replica instead of failing the run, linking
                // `retry_of` so capture dedup sees one logical request.
                work.retry_of = work.retry_of.or(Some(tag));
                work.replica_pref = work.replica_pref.wrapping_add(1);
                match refuse(cfg, &mut st, work, now) {
                    SendResult::Requeued(w) => queue.push_back(w),
                    _ => settled += 1,
                }
            } else {
                st.report.failed += 1;
                settled += 1;
            }
        }

        if !progressed {
            std::thread::sleep(POLL_TICK);
        }
    }

    st.report.wall_secs = started.elapsed().as_secs_f64();
    st.report.mean_us = st.hist.mean().as_us();
    st.report.p50_us = st.hist.percentile(50.0).map_or(0.0, |d| d.as_us());
    st.report.p99_us = st.hist.percentile(99.0).map_or(0.0, |d| d.as_us());
    st.report.p999_us = st.hist.percentile(99.9).map_or(0.0, |d| d.as_us());
    st.report.throughput_rps = if st.report.wall_secs > 0.0 {
        st.report.completed as f64 / st.report.wall_secs
    } else {
        0.0
    };
    Ok((st.report, st.journal))
}

/// Fetches the current map from the directory connection.
fn fetch_map(dir: &mut Conn) -> io::Result<ShardMap> {
    dir.send(&Request::MapGet { tag: u64::MAX - 2 })?;
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = dir.next_frame() {
            if let Ok(Response::MapResp { text, .. }) =
                rif_server::protocol::decode_response(&payload)
            {
                return ShardMap::parse_text(&text)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
            continue;
        }
        dir.pump()?;
    }
    Err(io::ErrorKind::TimedOut.into())
}

/// Refreshes `map` from the directory unless the last refresh is within
/// the configured floor. Keeps whatever map it has on any failure.
fn refresh_if_stale(
    dir: &mut Conn,
    map: &mut ShardMap,
    last_refresh: &mut Instant,
    cfg: &RouterConfig,
) {
    if last_refresh.elapsed() < cfg.map_refresh_floor {
        return;
    }
    *last_refresh = Instant::now();
    if let Ok(fresh) = fetch_map(dir) {
        if fresh.epoch > map.epoch {
            *map = fresh;
        }
    }
}

enum SendResult {
    Sent(u64, Inflight),
    /// The owner is unreachable; the work burned one refusal retry.
    Requeued(Work),
    /// Retry budget exhausted: counted `busy_dropped`, run settled.
    Dropped,
}

fn try_send(
    cfg: &RouterConfig,
    map: &ShardMap,
    endpoints: &mut HashMap<String, Endpoint>,
    st: &mut RunState,
    work: Work,
    jitter: &mut SimRng,
    now: Instant,
) -> SendResult {
    let (range, primary) = map.route(work.offset);
    // Writes always target the primary (it owns admission and ships the
    // followers); reads may target any replica, rotated by failover.
    let node = if work.op == IoOp::Read {
        let replicas = map.replicas_of(range);
        replicas[work.replica_pref as usize % replicas.len()]
    } else {
        primary
    };
    let next_index = endpoints.len() as u32;
    let ep = endpoints
        .entry(node.id.clone())
        .or_insert_with(|| Endpoint {
            index: next_index,
            addr: node.addr.clone(),
            conn: None,
            backoff: ReconnectBackoff::new(),
            down_until: now,
            ever_connected: false,
            v1_kicked: false,
        });
    // The map may have re-addressed the node (not typical, but cheap to
    // honor).
    if ep.addr != node.addr {
        ep.addr = node.addr.clone();
        ep.conn = None;
    }

    if ep.conn.is_none() {
        if now < ep.down_until {
            return refuse(cfg, st, bump_replica(work), now);
        }
        match Conn::connect(&ep.addr) {
            Ok(mut conn) => {
                // Endpoint sockets are swept serially; a blocking read
                // timeout has scheduler-tick granularity (milliseconds),
                // which would stack one tick of dead time per idle
                // endpoint per sweep — measured as a 2x throughput loss
                // on a two-node cluster. Idle pacing is the main loop's
                // single POLL_TICK sleep instead.
                conn.set_nonblocking().ok();
                ep.conn = Some(conn);
                ep.backoff.note_success();
                if ep.ever_connected {
                    st.journal.reconnects += 1;
                    st.report.reconnects += 1;
                }
                ep.ever_connected = true;
            }
            Err(_) => {
                ep.down_until = now + ep.backoff.next_delay(POLL_TICK, jitter);
                return refuse(cfg, st, bump_replica(work), now);
            }
        }
    }

    let tag = st.next_tag;
    st.next_tag += 1;
    // Re-issues on a v2+ link travel as one-entry BATCH frames — the
    // only frame kind that carries `retry_of` — so the server's trace
    // recorder aliases the retry onto the original logical request.
    let version = ep.conn.as_ref().expect("connected above").version();
    // A re-issue must carry its `retry_of` link or the server-side
    // recorder double-counts the logical request (capture dedup keys on
    // the link). A v1 link here almost always means a lossy path ate
    // the HELLO ack at connect time — drop the connection once so the
    // reconnect renegotiates; a peer that is *still* v1 after the kick
    // gets the plain frame, there is nothing better to send it.
    if work.retry_of.is_some() && version < 2 {
        if !ep.v1_kicked {
            ep.v1_kicked = true;
            ep.conn = None;
            return SendResult::Requeued(work);
        }
    } else if version >= 2 {
        ep.v1_kicked = false;
    }
    let req = match work.retry_of {
        Some(prior) if version >= 2 => Request::Batch(vec![BatchEntry {
            op: work.op,
            tenant: cfg.tenant,
            tag,
            offset: work.offset,
            bytes: work.bytes,
            retry_of: prior,
        }]),
        _ => match work.op {
            IoOp::Read => Request::Read {
                tenant: cfg.tenant,
                tag,
                offset: work.offset,
                bytes: work.bytes,
            },
            IoOp::Write => Request::Write {
                tenant: cfg.tenant,
                tag,
                offset: work.offset,
                bytes: work.bytes,
            },
        },
    };
    let rec = st.journal.records.len();
    st.journal.records.push(TagRecord {
        conn: ep.index,
        tag,
        op: work.op,
        offset: work.offset,
        bytes: work.bytes,
        retry_of: work.retry_of,
        outcome: None,
        duplicate_receipts: 0,
        conflicting_receipts: 0,
    });
    let conn = ep.conn.as_mut().expect("just connected");
    if conn.send(&req).is_err() {
        // Send never hit the wire as a full frame the server acts on
        // before the connection died; resolve the record and retry like
        // a refusal (safe for writes: nothing was admitted on a dead
        // connection's final partial frame — the server drops partial
        // frames on disconnect).
        st.journal.records[rec].outcome = Some(Outcome::ConnError);
        st.report.conn_errors += 1;
        st.journal.conn_losses += 1;
        ep.conn = None;
        ep.down_until = now + ep.backoff.next_delay(POLL_TICK, jitter);
        let mut work = work;
        work.retry_of = work.retry_of.or(Some(tag));
        return refuse(cfg, st, bump_replica(work), now);
    }
    SendResult::Sent(
        tag,
        Inflight {
            rec,
            endpoint: ep.index,
            work,
            sent: Instant::now(),
        },
    )
}

/// Rotates a read to the next replica of its range; writes pass through
/// untouched (they only ever target the primary).
fn bump_replica(mut work: Work) -> Work {
    if work.op == IoOp::Read {
        work.replica_pref = work.replica_pref.wrapping_add(1);
    }
    work
}

/// One pre-admission refusal: consume a retry or drop the operation.
fn refuse(cfg: &RouterConfig, st: &mut RunState, mut work: Work, now: Instant) -> SendResult {
    if work.busy >= cfg.max_busy_retries {
        st.report.busy_dropped += 1;
        return SendResult::Dropped;
    }
    work.busy += 1;
    work.not_before = now + cfg.busy_backoff;
    SendResult::Requeued(work)
}

#[allow(clippy::too_many_arguments)]
fn handle_frame(
    cfg: &RouterConfig,
    map: &ShardMap,
    payload: &[u8],
    endpoint: u32,
    inflight: &mut HashMap<u64, Inflight>,
    st: &mut RunState,
    requeue: &mut Vec<Work>,
    settled: &mut u64,
) {
    let Ok(resp) = rif_server::protocol::decode_response(payload) else {
        st.journal.undecodable_frames += 1;
        st.report.protocol_errors += 1;
        return;
    };
    let tag = resp.tag();
    let Some(inf) = inflight.remove(&tag) else {
        if let Some(&rec) = st.expired.get(&tag) {
            // Straggler answer for a tag the deadline sweep already
            // resolved: benign, but worth counting on its record.
            st.journal.records[rec].duplicate_receipts += 1;
        } else {
            st.journal.unknown_receipts += 1;
            st.report.unknown_receipts += 1;
        }
        return;
    };
    debug_assert_eq!(inf.endpoint, endpoint);
    let rec = inf.rec;
    let mut work = inf.work;
    // Chain links always carry the ROOT tag of the logical request: the
    // server-side recorder dedups by looking the link up among admitted
    // tags, and only the root is guaranteed to stay resolvable when an
    // intermediate re-issue never reached admission (send error, bounce
    // before admit). An immediate-predecessor link would orphan the
    // chain at the first unseen hop and double-count the capture.
    work.retry_of = work.retry_of.or(Some(tag));
    let now = Instant::now();
    match resp {
        Response::Done { .. } => {
            st.journal.records[rec].outcome = Some(Outcome::Done);
            st.report.completed += 1;
            st.hist
                .record(SimDuration::from_ns(inf.sent.elapsed().as_nanos() as u64));
            *settled += 1;
        }
        Response::Busy { reason, .. } => {
            match reason {
                BusyReason::Queue => st.report.busy_queue += 1,
                BusyReason::RateLimit => st.report.busy_ratelimit += 1,
                BusyReason::Unavailable | BusyReason::Moving => st.report.busy_unavailable += 1,
            }
            // A range mid-handoff (or an unavailable node) may already be
            // readable on a replica; reads rotate, writes wait it out.
            if matches!(reason, BusyReason::Moving | BusyReason::Unavailable) {
                work = bump_replica(work);
            }
            st.journal.records[rec].outcome = Some(Outcome::Busy);
            match refuse(cfg, st, work, now) {
                SendResult::Requeued(w) => requeue.push(w),
                _ => *settled += 1,
            }
        }
        Response::WrongShard { .. } => {
            // Stale map: never admitted, so the re-issue is idempotent
            // for both ops. The main loop refreshes the map when it sees
            // this counter move.
            st.report.wrong_shard += 1;
            st.journal.records[rec].outcome = Some(Outcome::Busy);
            match refuse(cfg, st, bump_replica(work), now) {
                SendResult::Requeued(w) => requeue.push(w),
                _ => *settled += 1,
            }
        }
        Response::Error { code, .. } => {
            match code {
                ErrorCode::Internal => st.report.internal_errors += 1,
                _ => st.report.protocol_errors += 1,
            }
            st.journal.records[rec].outcome = Some(Outcome::Error);
            let (range, _) = map.route(work.offset);
            if work.op == IoOp::Read && map.replicas_of(range).len() > 1 {
                // A crashing shard resolves its in-flight requests with
                // ERROR before the node drops (`Server::kill`). The read
                // is idempotent and the range still has live replicas —
                // fail it over instead of dooming the chain on a node
                // that is about to disappear anyway.
                match refuse(cfg, st, bump_replica(work), now) {
                    SendResult::Requeued(w) => requeue.push(w),
                    _ => *settled += 1,
                }
            } else {
                st.report.failed += 1;
                *settled += 1;
            }
        }
        _ => {
            // DONE/BUSY/ERROR/WRONG_SHARD are the only solicited kinds
            // for READ/WRITE; anything else is a protocol violation.
            st.report.protocol_errors += 1;
            st.journal.records[rec].outcome = Some(Outcome::Error);
            st.report.failed += 1;
            *settled += 1;
        }
    }
}

/// Resolves every tag in flight on a lost connection. Reads re-issue
/// through the retry budget; writes have unknown fate and fail.
fn fail_endpoint_inflight(
    cfg: &RouterConfig,
    endpoint: u32,
    inflight: &mut HashMap<u64, Inflight>,
    st: &mut RunState,
    requeue: &mut Vec<Work>,
    settled: &mut u64,
) {
    let tags: Vec<u64> = inflight
        .iter()
        .filter(|(_, inf)| inf.endpoint == endpoint)
        .map(|(&t, _)| t)
        .collect();
    let now = Instant::now();
    for tag in tags {
        let inf = inflight.remove(&tag).expect("tag present");
        st.journal.records[inf.rec].outcome = Some(Outcome::ConnError);
        st.report.conn_errors += 1;
        let mut work = inf.work;
        work.retry_of = work.retry_of.or(Some(tag));
        if work.op == IoOp::Read {
            match refuse(cfg, st, bump_replica(work), now) {
                SendResult::Requeued(w) => requeue.push(w),
                _ => *settled += 1,
            }
        } else {
            st.report.failed += 1;
            *settled += 1;
        }
    }
}
