//! The versioned shard map: which node serves which LBA range.
//!
//! The logical device is divided into `ranges` equal LBA spans (the
//! last absorbs the remainder), exactly mirroring
//! [`rif_server::shard::ShardSpec`]'s partition math so a cluster of
//! `rif-server` processes and a single multi-shard process route
//! identically. Each range is assigned to one node; default placement
//! uses **rendezvous (highest-random-weight) hashing**, which moves
//! only the necessary ranges when a node joins or leaves.
//!
//! A map is versioned by a monotonic `epoch`. The directory is the only
//! writer; nodes and routers treat any map with a higher epoch as
//! strictly newer. The canonical text form is line-oriented and strict
//! — `parse_text(to_text())` is the identity, and anything non-canonical
//! (unsorted nodes, out-of-order assigns, stray whitespace) is rejected
//! with a line-numbered typed error.
//!
//! ```text
//! # rif-shardmap v1 epoch=3 capacity=8589934592 ranges=4
//! node a 127.0.0.1:4001
//! node b 127.0.0.1:4002
//! assign 0 a
//! assign 1 b
//! assign 2 a
//! assign 3 b
//! ```
//!
//! With a replication factor above one the header grows a `replicas=R`
//! field and each range carries a `follow` line naming its `R-1`
//! rendezvous-chosen follower nodes (the next-highest weights after the
//! primary), in order, after every `assign` line:
//!
//! ```text
//! # rif-shardmap v1 epoch=3 capacity=8589934592 ranges=2 replicas=2
//! node a 127.0.0.1:4001
//! node b 127.0.0.1:4002
//! assign 0 a
//! assign 1 b
//! follow 0 b
//! follow 1 a
//! ```
//!
//! Followers receive asynchronously shipped copies of the primary's
//! writes (DESIGN §15); on a primary death [`ShardMap::without_node`]
//! **promotes** a surviving follower rather than re-running rendezvous,
//! so the replica that already holds the range's data keeps serving it.

/// One serving endpoint in the map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Stable node id (no whitespace; sorts the node list).
    pub id: String,
    /// TCP endpoint, e.g. `127.0.0.1:4001`.
    pub addr: String,
}

/// Why a shard-map text failed to parse or a map failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMapError {
    /// The first line is not the expected `# rif-shardmap v1 ...` header.
    BadHeader,
    /// A line is neither a valid `node` nor `assign` line for its
    /// position (1-based line number).
    BadLine(usize),
    /// Node ids must be unique and strictly ascending (canonical order);
    /// this line breaks that (1-based line number).
    UnsortedNode(usize),
    /// An `assign` line names a node the map does not list.
    UnknownNode(usize),
    /// `assign` lines must cover ranges `0..ranges` in order; this line
    /// is the wrong index (1-based line number).
    AssignOutOfOrder(usize),
    /// The text ended before every range was assigned.
    MissingAssignments,
    /// A map needs at least one node.
    NoNodes,
    /// `ranges` must be at least 1 and no larger than `capacity_bytes`.
    BadGrid,
    /// A `follow` line is invalid for its range: unknown node, the
    /// primary listed as its own follower, a duplicate follower, or
    /// more followers than `replicas - 1` (1-based line number).
    BadReplica(usize),
}

impl std::fmt::Display for ShardMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMapError::BadHeader => write!(f, "missing or malformed rif-shardmap header"),
            ShardMapError::BadLine(n) => write!(f, "line {n}: malformed line"),
            ShardMapError::UnsortedNode(n) => {
                write!(f, "line {n}: node ids must be unique and ascending")
            }
            ShardMapError::UnknownNode(n) => write!(f, "line {n}: assignment to unlisted node"),
            ShardMapError::AssignOutOfOrder(n) => {
                write!(f, "line {n}: assignments must cover ranges 0..n in order")
            }
            ShardMapError::MissingAssignments => write!(f, "not every range is assigned"),
            ShardMapError::NoNodes => write!(f, "a map needs at least one node"),
            ShardMapError::BadGrid => write!(f, "ranges must be in 1..=capacity_bytes"),
            ShardMapError::BadReplica(n) => write!(f, "line {n}: invalid follower list"),
        }
    }
}

impl std::error::Error for ShardMapError {}

/// A complete, versioned range→node assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotonic version; the directory bumps it on every change.
    pub epoch: u64,
    /// Logical capacity the range grid divides.
    pub capacity_bytes: u64,
    /// Number of equal LBA ranges (the last absorbs the remainder).
    pub ranges: u32,
    /// Serving endpoints, sorted ascending by id.
    pub nodes: Vec<NodeInfo>,
    /// `assignment[range]` = index into `nodes`.
    pub assignment: Vec<usize>,
    /// Replication factor `R`: each range has one primary plus up to
    /// `R - 1` followers. `1` means no replication.
    pub replicas: u32,
    /// `followers[range]` = node indices following the range, in
    /// rendezvous-rank order. Never contains `assignment[range]`; has
    /// `min(R, nodes.len()) - 1` entries under default placement.
    pub followers: Vec<Vec<usize>>,
}

/// FNV-1a rendezvous weight of `(node id, range)`: the node with the
/// highest weight owns the range. Pure function of the two inputs, so
/// every participant computes the same placement.
fn weight(id: &str, range: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in id.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for b in range.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ShardMap {
    /// Builds a map with pure rendezvous placement over `nodes`.
    /// Nodes are sorted by id; ids must be unique, non-empty, and free
    /// of whitespace (they live in a space-separated text format).
    pub fn rebalanced(
        epoch: u64,
        capacity_bytes: u64,
        ranges: u32,
        nodes: Vec<NodeInfo>,
    ) -> Result<ShardMap, ShardMapError> {
        Self::replicated(epoch, capacity_bytes, ranges, nodes, 1)
    }

    /// Builds a map with pure rendezvous placement over `nodes` and a
    /// replication factor of `replicas`: the rendezvous winner of each
    /// range is its primary and the next `replicas - 1` ranks are its
    /// followers (fewer when the cluster is smaller than `replicas`).
    pub fn replicated(
        epoch: u64,
        capacity_bytes: u64,
        ranges: u32,
        mut nodes: Vec<NodeInfo>,
        replicas: u32,
    ) -> Result<ShardMap, ShardMapError> {
        if nodes.is_empty() {
            return Err(ShardMapError::NoNodes);
        }
        if ranges == 0 || capacity_bytes < ranges as u64 || replicas == 0 {
            return Err(ShardMapError::BadGrid);
        }
        nodes.sort_by(|a, b| a.id.cmp(&b.id));
        if nodes.windows(2).any(|w| w[0].id == w[1].id)
            || nodes
                .iter()
                .any(|n| n.id.is_empty() || n.id.contains(char::is_whitespace))
            || nodes
                .iter()
                .any(|n| n.addr.is_empty() || n.addr.contains(char::is_whitespace))
        {
            return Err(ShardMapError::UnsortedNode(0));
        }
        let mut assignment = Vec::with_capacity(ranges as usize);
        let mut followers = Vec::with_capacity(ranges as usize);
        for r in 0..ranges {
            let ranked = Self::rendezvous_ranked(&nodes, r);
            assignment.push(ranked[0]);
            followers.push(
                ranked[1..]
                    .iter()
                    .take(replicas as usize - 1)
                    .copied()
                    .collect(),
            );
        }
        Ok(ShardMap {
            epoch,
            capacity_bytes,
            ranges,
            nodes,
            assignment,
            replicas,
            followers,
        })
    }

    /// The rendezvous owner of `range` among `nodes` (ties broken by
    /// id order, though FNV ties are practically nonexistent).
    fn rendezvous(nodes: &[NodeInfo], range: u32) -> usize {
        nodes
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| (weight(&n.id, range), std::cmp::Reverse(n.id.clone())))
            .map(|(i, _)| i)
            .expect("nodes is non-empty")
    }

    /// Every node index ranked by descending rendezvous weight for
    /// `range` — rank 0 is the primary, ranks `1..R` the followers.
    fn rendezvous_ranked(nodes: &[NodeInfo], range: u32) -> Vec<usize> {
        let mut ranked: Vec<usize> = (0..nodes.len()).collect();
        ranked.sort_by_key(|&i| {
            std::cmp::Reverse((
                weight(&nodes[i].id, range),
                std::cmp::Reverse(nodes[i].id.clone()),
            ))
        });
        ranked
    }

    /// Refills `range`'s follower list up to `replicas - 1` entries,
    /// keeping the surviving followers already in `keep` (locality) and
    /// drawing replacements from the rendezvous ranking, skipping the
    /// primary and anything already kept.
    fn refill_followers(&self, range: u32, primary: usize, keep: Vec<usize>) -> Vec<usize> {
        let want = (self.replicas as usize - 1).min(self.nodes.len() - 1);
        let mut out = keep;
        out.retain(|&f| f != primary);
        out.dedup();
        if out.len() < want {
            for i in Self::rendezvous_ranked(&self.nodes, range) {
                if out.len() >= want {
                    break;
                }
                if i != primary && !out.contains(&i) {
                    out.push(i);
                }
            }
        }
        out.truncate(want);
        out
    }

    /// A new epoch with `range` explicitly reassigned to node `to_id`
    /// (the directory's migration primitive).
    pub fn moved(&self, range: u32, to_id: &str) -> Result<ShardMap, ShardMapError> {
        let node = self
            .nodes
            .iter()
            .position(|n| n.id == to_id)
            .ok_or(ShardMapError::UnknownNode(0))?;
        if range >= self.ranges {
            return Err(ShardMapError::BadGrid);
        }
        let mut next = self.clone();
        next.epoch += 1;
        next.assignment[range as usize] = node;
        // The target may have been a follower; the old primary is the
        // natural replacement (it still holds the data), then rendezvous
        // fills any remaining slot.
        let mut keep: Vec<usize> = next.followers[range as usize].clone();
        if keep.contains(&node) {
            let old = self.assignment[range as usize];
            for f in keep.iter_mut() {
                if *f == node {
                    *f = old;
                }
            }
        }
        let refilled = next.refill_followers(range, node, keep);
        next.followers[range as usize] = refilled;
        Ok(next)
    }

    /// A new epoch with node `id` removed. Ranges on surviving nodes
    /// stay exactly where they are; a dead primary's range goes to its
    /// first surviving **follower** (promotion: that replica already
    /// holds the shipped data) and falls back to rendezvous over the
    /// survivors only when the range had no surviving follower — the
    /// minimal movement a failover allows. Follower lists keep their
    /// surviving members and are refilled by rendezvous rank.
    pub fn without_node(&self, id: &str) -> Result<ShardMap, ShardMapError> {
        let dead = self
            .nodes
            .iter()
            .position(|n| n.id == id)
            .ok_or(ShardMapError::UnknownNode(0))?;
        let survivors: Vec<NodeInfo> = self.nodes.iter().filter(|n| n.id != id).cloned().collect();
        if survivors.is_empty() {
            return Err(ShardMapError::NoNodes);
        }
        // Index shift past the removed node, in the survivors' space.
        let shift = |i: usize| i - usize::from(i > dead);
        let mut next = ShardMap {
            epoch: self.epoch + 1,
            capacity_bytes: self.capacity_bytes,
            ranges: self.ranges,
            nodes: survivors,
            assignment: Vec::with_capacity(self.ranges as usize),
            replicas: self.replicas,
            followers: vec![Vec::new(); self.ranges as usize],
        };
        for (r, &owner) in self.assignment.iter().enumerate() {
            let survivors_of: Vec<usize> = self.followers[r]
                .iter()
                .filter(|&&f| f != dead)
                .map(|&f| shift(f))
                .collect();
            let primary = if owner == dead {
                match survivors_of.first() {
                    Some(&promoted) => promoted,
                    None => Self::rendezvous(&next.nodes, r as u32),
                }
            } else {
                shift(owner)
            };
            next.assignment.push(primary);
            let refilled = next.refill_followers(r as u32, primary, survivors_of);
            next.followers[r] = refilled;
        }
        Ok(next)
    }

    /// The LBA range `offset` falls into — the same span math as
    /// `ShardSpec::route`, so a map with `ranges == shards` routes
    /// bit-identically to the in-process shard router.
    pub fn range_of(&self, offset: u64) -> u32 {
        let wrapped = offset % self.capacity_bytes;
        let span = self.capacity_bytes / self.ranges as u64;
        ((wrapped / span) as u32).min(self.ranges - 1)
    }

    /// The node serving `range`.
    pub fn node_of(&self, range: u32) -> &NodeInfo {
        &self.nodes[self.assignment[range as usize]]
    }

    /// Routes an offset: `(range, serving node)`.
    pub fn route(&self, offset: u64) -> (u32, &NodeInfo) {
        let r = self.range_of(offset);
        (r, self.node_of(r))
    }

    /// The range indices node `id` owns (empty for unknown ids).
    pub fn owned_ranges(&self, id: &str) -> Vec<u32> {
        let Some(idx) = self.nodes.iter().position(|n| n.id == id) else {
            return Vec::new();
        };
        (0..self.ranges)
            .filter(|&r| self.assignment[r as usize] == idx)
            .collect()
    }

    /// The range indices node `id` **follows** (empty for unknown ids
    /// and for unreplicated maps).
    pub fn followed_ranges(&self, id: &str) -> Vec<u32> {
        let Some(idx) = self.nodes.iter().position(|n| n.id == id) else {
            return Vec::new();
        };
        (0..self.ranges)
            .filter(|&r| self.followers[r as usize].contains(&idx))
            .collect()
    }

    /// The follower nodes of `range`, in rendezvous-rank order.
    pub fn followers_of(&self, range: u32) -> Vec<&NodeInfo> {
        self.followers[range as usize]
            .iter()
            .map(|&i| &self.nodes[i])
            .collect()
    }

    /// Every replica of `range`, primary first.
    pub fn replicas_of(&self, range: u32) -> Vec<&NodeInfo> {
        let mut out = vec![self.node_of(range)];
        out.extend(self.followers_of(range));
        out
    }

    /// Canonical text serialization (see the module docs for the shape).
    /// Replication is spelled only when in use: an `R = 1` map
    /// serializes exactly as before replication existed.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# rif-shardmap v1 epoch={} capacity={} ranges={}",
            self.epoch, self.capacity_bytes, self.ranges
        );
        if self.replicas > 1 {
            out.push_str(&format!(" replicas={}", self.replicas));
        }
        out.push('\n');
        for n in &self.nodes {
            out.push_str(&format!("node {} {}\n", n.id, n.addr));
        }
        for (r, &owner) in self.assignment.iter().enumerate() {
            out.push_str(&format!("assign {} {}\n", r, self.nodes[owner].id));
        }
        if self.replicas > 1 {
            for (r, fs) in self.followers.iter().enumerate() {
                out.push_str(&format!("follow {r}"));
                for &f in fs {
                    out.push_str(&format!(" {}", self.nodes[f].id));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Strict parse of the canonical text form: header, sorted `node`
    /// lines, then `assign` lines covering every range in order. Errors
    /// carry 1-based line numbers.
    pub fn parse_text(text: &str) -> Result<ShardMap, ShardMapError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ShardMapError::BadHeader)?;
        let rest = header
            .strip_prefix("# rif-shardmap v1 ")
            .ok_or(ShardMapError::BadHeader)?;
        let mut fields = rest.split(' ');
        let mut take = |name: &str| -> Result<u64, ShardMapError> {
            fields
                .next()
                .and_then(|kv| kv.strip_prefix(name))
                .and_then(|kv| kv.strip_prefix('='))
                .and_then(|v| v.parse().ok())
                .ok_or(ShardMapError::BadHeader)
        };
        let epoch = take("epoch")?;
        let capacity_bytes = take("capacity")?;
        let ranges = u32::try_from(take("ranges")?).map_err(|_| ShardMapError::BadHeader)?;
        // `replicas=R` is spelled only for replicated maps (R > 1), so
        // pre-replication texts keep parsing unchanged.
        let replicas = match fields.next() {
            None => 1,
            Some(kv) => {
                let r: u32 = kv
                    .strip_prefix("replicas=")
                    .and_then(|v| v.parse().ok())
                    .ok_or(ShardMapError::BadHeader)?;
                if r < 2 || fields.next().is_some() {
                    return Err(ShardMapError::BadHeader);
                }
                r
            }
        };
        if ranges == 0 || capacity_bytes < ranges as u64 {
            return Err(ShardMapError::BadGrid);
        }

        let mut nodes: Vec<NodeInfo> = Vec::new();
        let mut assignment: Vec<usize> = Vec::new();
        let mut followers: Vec<Vec<usize>> = Vec::new();
        for (i, line) in lines {
            let lineno = i + 1;
            let mut parts = line.split(' ');
            match parts.next() {
                Some("node") => {
                    if !assignment.is_empty() {
                        // Canonical order: every node precedes any assign.
                        return Err(ShardMapError::BadLine(lineno));
                    }
                    let (Some(id), Some(addr), None) = (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(ShardMapError::BadLine(lineno));
                    };
                    if id.is_empty() || addr.is_empty() {
                        return Err(ShardMapError::BadLine(lineno));
                    }
                    if nodes.last().is_some_and(|last| last.id.as_str() >= id) {
                        return Err(ShardMapError::UnsortedNode(lineno));
                    }
                    nodes.push(NodeInfo {
                        id: id.to_string(),
                        addr: addr.to_string(),
                    });
                }
                Some("assign") => {
                    if !followers.is_empty() {
                        // Canonical order: every assign precedes any follow.
                        return Err(ShardMapError::BadLine(lineno));
                    }
                    let (Some(r), Some(id), None) = (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(ShardMapError::BadLine(lineno));
                    };
                    let r: u32 = r.parse().map_err(|_| ShardMapError::BadLine(lineno))?;
                    if r as usize != assignment.len() || r >= ranges {
                        return Err(ShardMapError::AssignOutOfOrder(lineno));
                    }
                    let owner = nodes
                        .iter()
                        .position(|n| n.id == id)
                        .ok_or(ShardMapError::UnknownNode(lineno))?;
                    assignment.push(owner);
                }
                Some("follow") => {
                    // A follow section exists exactly when replication is on.
                    if replicas < 2 || assignment.len() != ranges as usize {
                        return Err(ShardMapError::BadLine(lineno));
                    }
                    let r: u32 = parts
                        .next()
                        .and_then(|r| r.parse().ok())
                        .ok_or(ShardMapError::BadLine(lineno))?;
                    if r as usize != followers.len() || r >= ranges {
                        return Err(ShardMapError::AssignOutOfOrder(lineno));
                    }
                    let mut fs: Vec<usize> = Vec::new();
                    for id in parts {
                        let f = nodes
                            .iter()
                            .position(|n| n.id == id)
                            .ok_or(ShardMapError::UnknownNode(lineno))?;
                        if f == assignment[r as usize] || fs.contains(&f) {
                            return Err(ShardMapError::BadReplica(lineno));
                        }
                        fs.push(f);
                    }
                    if fs.len() > replicas as usize - 1 {
                        return Err(ShardMapError::BadReplica(lineno));
                    }
                    followers.push(fs);
                }
                _ => return Err(ShardMapError::BadLine(lineno)),
            }
        }
        if nodes.is_empty() {
            return Err(ShardMapError::NoNodes);
        }
        if assignment.len() != ranges as usize {
            return Err(ShardMapError::MissingAssignments);
        }
        if replicas > 1 && followers.len() != ranges as usize {
            return Err(ShardMapError::MissingAssignments);
        }
        if replicas == 1 {
            followers = vec![Vec::new(); ranges as usize];
        }
        Ok(ShardMap {
            epoch,
            capacity_bytes,
            ranges,
            nodes,
            assignment,
            replicas,
            followers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes() -> Vec<NodeInfo> {
        vec![
            NodeInfo {
                id: "b".into(),
                addr: "127.0.0.1:4002".into(),
            },
            NodeInfo {
                id: "a".into(),
                addr: "127.0.0.1:4001".into(),
            },
        ]
    }

    #[test]
    fn canonical_text_roundtrips() {
        let m = ShardMap::rebalanced(3, 8 << 30, 4, two_nodes()).unwrap();
        assert_eq!(m.nodes[0].id, "a", "nodes sort by id");
        let parsed = ShardMap::parse_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn routing_matches_shard_spec() {
        use rif_server::shard::ShardSpec;
        let cap = 1 << 30;
        let m = ShardMap::rebalanced(1, cap, 4, two_nodes()).unwrap();
        for offset in [
            0u64,
            1,
            cap / 4 - 1,
            cap / 4,
            cap / 2,
            cap - 1,
            cap,
            3 * cap,
        ] {
            assert_eq!(
                m.range_of(offset) as usize,
                ShardSpec::route(cap, 4, offset % cap),
                "offset {offset}"
            );
        }
    }

    #[test]
    fn full_coverage_no_overlap() {
        let m = ShardMap::rebalanced(1, 1000, 7, two_nodes()).unwrap();
        assert_eq!(m.assignment.len(), 7);
        let a = m.owned_ranges("a");
        let b = m.owned_ranges("b");
        assert_eq!(a.len() + b.len(), 7);
        assert!(a.iter().all(|r| !b.contains(r)));
    }

    #[test]
    fn node_leave_moves_only_its_ranges() {
        let nodes = vec![
            NodeInfo {
                id: "a".into(),
                addr: "h:1".into(),
            },
            NodeInfo {
                id: "b".into(),
                addr: "h:2".into(),
            },
            NodeInfo {
                id: "c".into(),
                addr: "h:3".into(),
            },
        ];
        let m = ShardMap::rebalanced(1, 1 << 20, 16, nodes).unwrap();
        let next = m.without_node("b").unwrap();
        assert_eq!(next.epoch, m.epoch + 1);
        assert!(next.nodes.iter().all(|n| n.id != "b"));
        for r in 0..16u32 {
            let before = m.node_of(r).id.clone();
            if before != "b" {
                assert_eq!(next.node_of(r).id, before, "range {r} moved needlessly");
            } else {
                assert_ne!(next.node_of(r).id, "b");
            }
        }
    }

    #[test]
    fn moved_bumps_epoch_and_reassigns() {
        let m = ShardMap::rebalanced(5, 1 << 20, 4, two_nodes()).unwrap();
        let next = m.moved(2, "a").unwrap();
        assert_eq!(next.epoch, 6);
        assert_eq!(next.node_of(2).id, "a");
        assert!(m.moved(9, "a").is_err());
        assert!(m.moved(0, "zz").is_err());
    }

    #[test]
    fn malformed_texts_are_rejected_with_line_numbers() {
        use ShardMapError as E;
        let ok = "# rif-shardmap v1 epoch=1 capacity=1000 ranges=2\nnode a h:1\nassign 0 a\nassign 1 a\n";
        assert!(ShardMap::parse_text(ok).is_ok());
        let cases = [
            ("", E::BadHeader),
            ("# rif-shardmap v2 epoch=1 capacity=10 ranges=1\n", E::BadHeader),
            ("# rif-shardmap v1 epoch=x capacity=10 ranges=1\n", E::BadHeader),
            ("# rif-shardmap v1 epoch=1 capacity=10 ranges=0\n", E::BadGrid),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nnoode a h:1\n",
                E::BadLine(2),
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nnode b h:1\nnode a h:2\nassign 0 a\n",
                E::UnsortedNode(3),
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nnode a h:1\nnode a h:2\nassign 0 a\n",
                E::UnsortedNode(3),
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nnode a h:1\nassign 0 q\n",
                E::UnknownNode(3),
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=2\nnode a h:1\nassign 1 a\n",
                E::AssignOutOfOrder(3),
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=2\nnode a h:1\nassign 0 a\n",
                E::MissingAssignments,
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nassign 0 a\n",
                E::UnknownNode(2),
            ),
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nnode a h:1\nassign 0 a\nnode b h:2\n",
                E::BadLine(4),
            ),
        ];
        for (text, want) in cases {
            assert_eq!(ShardMap::parse_text(text), Err(want), "text {text:?}");
        }
    }

    fn three_nodes() -> Vec<NodeInfo> {
        vec![
            NodeInfo {
                id: "a".into(),
                addr: "h:1".into(),
            },
            NodeInfo {
                id: "b".into(),
                addr: "h:2".into(),
            },
            NodeInfo {
                id: "c".into(),
                addr: "h:3".into(),
            },
        ]
    }

    #[test]
    fn replicated_map_has_disjoint_replicas_and_roundtrips() {
        let m = ShardMap::replicated(1, 1 << 20, 8, three_nodes(), 2).unwrap();
        assert_eq!(m.replicas, 2);
        for r in 0..8u32 {
            let fs = &m.followers[r as usize];
            assert_eq!(fs.len(), 1, "R=2 on 3 nodes gives one follower");
            assert!(
                !fs.contains(&m.assignment[r as usize]),
                "primary follows itself"
            );
        }
        let parsed = ShardMap::parse_text(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        // An unreplicated map serializes without any replica vocabulary.
        let plain = ShardMap::rebalanced(1, 1 << 20, 4, three_nodes()).unwrap();
        assert!(!plain.to_text().contains("replicas"));
        assert!(!plain.to_text().contains("follow"));
        assert_eq!(ShardMap::parse_text(&plain.to_text()).unwrap(), plain);
    }

    #[test]
    fn killing_a_primary_promotes_its_follower() {
        let m = ShardMap::replicated(1, 1 << 20, 16, three_nodes(), 2).unwrap();
        for victim in ["a", "b", "c"] {
            let next = m.without_node(victim).unwrap();
            for r in 0..16u32 {
                let before = m.node_of(r).id.clone();
                if before == victim {
                    // The surviving follower is promoted, not an
                    // arbitrary rendezvous pick.
                    let follower = m.followers_of(r)[0].id.clone();
                    if follower != victim {
                        assert_eq!(next.node_of(r).id, follower, "range {r} not promoted");
                    }
                } else {
                    assert_eq!(next.node_of(r).id, before, "range {r} moved needlessly");
                }
                // Follower slots are refilled from the survivors.
                assert_eq!(next.followers_of(r).len(), 1);
                assert_ne!(next.followers_of(r)[0].id, next.node_of(r).id);
            }
        }
    }

    #[test]
    fn moved_to_a_follower_swaps_in_the_old_primary() {
        let m = ShardMap::replicated(1, 1 << 20, 4, three_nodes(), 2).unwrap();
        let follower = m.followers_of(0)[0].id.clone();
        let old_primary = m.node_of(0).id.clone();
        let next = m.moved(0, &follower).unwrap();
        assert_eq!(next.node_of(0).id, follower);
        assert_eq!(next.followers_of(0)[0].id, old_primary);
    }

    #[test]
    fn malformed_follow_lines_are_rejected() {
        use ShardMapError as E;
        let base = "# rif-shardmap v1 epoch=1 capacity=1000 ranges=2 replicas=2\nnode a h:1\nnode b h:2\nassign 0 a\nassign 1 b\n";
        let cases = [
            // Primary listed as its own follower.
            (format!("{base}follow 0 a\nfollow 1 a\n"), E::BadReplica(6)),
            // Duplicate follower.
            (format!("{base}follow 0 b b\nfollow 1 a\n"), E::BadReplica(6)),
            // Unknown follower node.
            (format!("{base}follow 0 q\nfollow 1 a\n"), E::UnknownNode(6)),
            // Out-of-order follow lines.
            (format!("{base}follow 1 a\nfollow 0 b\n"), E::AssignOutOfOrder(6)),
            // Missing the second follow line.
            (format!("{base}follow 0 b\n"), E::MissingAssignments),
            // Follow line without replication declared.
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1\nnode a h:1\nassign 0 a\nfollow 0\n"
                    .to_string(),
                E::BadLine(4),
            ),
            // replicas=1 is not a canonical spelling.
            (
                "# rif-shardmap v1 epoch=1 capacity=1000 ranges=1 replicas=1\nnode a h:1\nassign 0 a\n"
                    .to_string(),
                E::BadHeader,
            ),
        ];
        for (text, want) in cases {
            assert_eq!(ShardMap::parse_text(&text), Err(want), "text {text:?}");
        }
    }
}
