//! Multi-node cluster layer over the RiF serving stack.
//!
//! One `rif-server` process simulates one device. This crate scales the
//! service out to several such nodes behind a shared LBA space:
//!
//! - [`map`] — the versioned [`ShardMap`](map::ShardMap): consistent
//!   (rendezvous) hashing of LBA ranges onto nodes, a monotonic epoch,
//!   and a strict canonical text codec;
//! - [`directory`] — the std-only directory service that owns the map,
//!   orchestrates live shard handoffs, and fans STATS out to the fleet;
//! - [`router`] — the cluster-aware closed-loop client: routes by
//!   offset, chases `WRONG_SHARD(epoch)` with map refreshes, and keeps
//!   the single-node Journal/LoadReport contract so the chaos
//!   ContractChecker audits cluster runs unchanged;
//! - [`stats`] — parsing and merging per-node STATS texts into one
//!   cluster report (counters add, gauges max, histograms merge).
//!
//! The wire protocol is the v3 extension of `rif-server`'s: nodes learn
//! their ownership via `MAP_PUSH`, refuse foreign ranges with
//! `WRONG_SHARD(epoch)`, seal mid-handoff ranges with `BUSY(moving)`,
//! and hand their ThresholdLearner snapshot over `MIGRATE_OUT` /
//! `MIGRATE_IN` so read-threshold learning survives the move.

#![warn(missing_docs)]

pub mod directory;
pub mod map;
pub mod router;
pub mod stats;

pub use directory::{load_map, Directory, MapLoadError};
pub use map::{NodeInfo, ShardMap, ShardMapError};
pub use router::{run_routed, RouterConfig};
pub use stats::{cluster_report, NodeStats};
