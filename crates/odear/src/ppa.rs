//! Power / performance / area model of the RP module (paper §VI-C).
//!
//! The paper synthesizes RP with Synopsys Design Compiler at 130 nm /
//! 100 MHz and reports: 0.012 mm² area, 1.28 mW power, ≈3.2 nJ per
//! prediction — against 907 nJ saved for every avoided off-chip transfer
//! of an unrecoverable 16-KiB page. This module encodes those constants
//! and the arithmetic behind the "negligible overhead, net energy win"
//! conclusion.

/// The RP module's synthesis-derived PPA constants and energy arithmetic.
///
/// # Example
///
/// ```
/// use rif_odear::PpaModel;
///
/// let ppa = PpaModel::paper();
/// // Area overhead relative to a 101 mm² die is ~0.01 %.
/// assert!(ppa.area_overhead_fraction() < 2e-4);
/// // RP pays for itself whenever more than ~0.35 % of reads would have
/// // transferred an unrecoverable page.
/// assert!(ppa.break_even_retry_rate() < 0.005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaModel {
    /// RP module area (mm², 130 nm process).
    pub rp_area_mm2: f64,
    /// RP module power at 100 MHz (mW).
    pub rp_power_mw: f64,
    /// Energy per read-retry prediction (nJ), for the default 4-KiB chunk.
    pub prediction_energy_nj: f64,
    /// Energy of an off-chip transfer of one unrecoverable 16-KiB page
    /// (nJ) — what RiF saves per avoided transfer.
    pub transfer_energy_nj: f64,
    /// Reference die area (mm²) of a modern 512-Gb 3D NAND die.
    pub die_area_mm2: f64,
}

impl PpaModel {
    /// The §VI-C constants.
    pub fn paper() -> Self {
        PpaModel {
            rp_area_mm2: 0.012,
            rp_power_mw: 1.28,
            prediction_energy_nj: 3.2,
            transfer_energy_nj: 907.0,
            die_area_mm2: 101.0,
        }
    }

    /// RP area as a fraction of the flash die.
    pub fn area_overhead_fraction(&self) -> f64 {
        self.rp_area_mm2 / self.die_area_mm2
    }

    /// Prediction energy for a non-default chunk size: the pipeline is
    /// fetch-bound, so energy scales linearly with the chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_kib` is zero.
    pub fn prediction_energy_for_chunk(&self, chunk_kib: usize) -> f64 {
        assert!(chunk_kib > 0, "chunk must be non-empty");
        self.prediction_energy_nj * chunk_kib as f64 / 4.0
    }

    /// Net energy delta (nJ) over `reads` page reads of which a fraction
    /// `uncorrectable_rate` would have shipped an unrecoverable page
    /// off-chip: every read pays one prediction, every avoided transfer
    /// refunds `transfer_energy_nj`. Negative = RiF saves energy.
    pub fn net_energy_nj(&self, reads: u64, uncorrectable_rate: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&uncorrectable_rate),
            "rate {uncorrectable_rate} out of range"
        );
        reads as f64 * (self.prediction_energy_nj - uncorrectable_rate * self.transfer_energy_nj)
    }

    /// The uncorrectable-read fraction above which RP saves net energy.
    pub fn break_even_retry_rate(&self) -> f64 {
        self.prediction_energy_nj / self.transfer_energy_nj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = PpaModel::paper();
        assert_eq!(p.rp_area_mm2, 0.012);
        assert_eq!(p.rp_power_mw, 1.28);
        assert_eq!(p.prediction_energy_nj, 3.2);
        assert_eq!(p.transfer_energy_nj, 907.0);
    }

    #[test]
    fn area_overhead_is_negligible() {
        // §VI-C: "the space overhead of the RP module seems negligible."
        let f = PpaModel::paper().area_overhead_fraction();
        assert!(f < 1.5e-4, "area fraction {f}");
    }

    #[test]
    fn break_even_rate_is_tiny() {
        let r = PpaModel::paper().break_even_retry_rate();
        assert!((r - 3.2 / 907.0).abs() < 1e-12);
        assert!(r < 0.004);
    }

    #[test]
    fn net_energy_sign_flips_at_break_even() {
        let p = PpaModel::paper();
        let r = p.break_even_retry_rate();
        assert!(p.net_energy_nj(1_000, r * 0.5) > 0.0);
        assert!(p.net_energy_nj(1_000, r * 2.0) < 0.0);
        assert!(p.net_energy_nj(1_000, r).abs() < 1e-9);
    }

    #[test]
    fn chunk_energy_scales_linearly() {
        let p = PpaModel::paper();
        assert_eq!(p.prediction_energy_for_chunk(4), 3.2);
        assert_eq!(p.prediction_energy_for_chunk(1), 0.8);
        assert_eq!(p.prediction_energy_for_chunk(16), 12.8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn net_energy_rejects_bad_rate() {
        let _ = PpaModel::paper().net_energy_nj(1, 1.5);
    }
}
