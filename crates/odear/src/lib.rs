//! The ODEAR engine: the paper's primary contribution.
//!
//! A RiF-enabled flash die carries an **On-Die EArly-Retry** engine
//! (paper §IV) with two modules:
//!
//! * [`rp::ReadRetryPredictor`] — after a page is sensed into the page
//!   buffer, RP computes the approximate syndrome weight of one 4-KiB chunk
//!   (chunk-based prediction + syndrome pruning + rearranged codeword
//!   layout, §V) and compares it against the correctability threshold ρs.
//!   Above ρs the page is predicted *uncorrectable by the off-chip LDPC
//!   engine* and is never transferred;
//! * [`rvs::ReadVoltageSelector`] — on a predicted failure, RVS picks
//!   near-optimal read-reference voltages from the sensed data's
//!   ones-count (the Swift-Read mechanism, §IV-C) and the die re-reads the
//!   page before raising the ready flag.
//!
//! [`engine::OdearEngine`] wires the two into the die-level read flow of
//! Fig. 9; [`accuracy`] provides both the Monte-Carlo accuracy measurement
//! (Figs. 11 and 14) and the closed-form probability model the event-level
//! SSD simulator consumes; [`ppa`] reproduces the §VI-C power/area/energy
//! arithmetic.
//!
//! # Example
//!
//! ```
//! use rif_ldpc::QcLdpcCode;
//! use rif_odear::rp::ReadRetryPredictor;
//! use rif_ldpc::bits::BitVec;
//! use rif_events::SimRng;
//!
//! let code = QcLdpcCode::small_test();
//! let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
//! let mut rng = SimRng::seed_from(1);
//! // A clean page predicts "correctable".
//! let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
//! let sensed = code.rearrange(&cw);
//! assert!(!rp.predict(&sensed).retry_needed);
//! ```

pub mod accuracy;
pub mod engine;
pub mod pipeline;
pub mod ppa;
pub mod rp;
pub mod rvs;

pub use accuracy::{AccuracyPoint, RpBehavior};
pub use engine::{OdearEngine, OdearReadResult};
pub use ppa::PpaModel;
pub use rp::{Prediction, ReadRetryPredictor};
pub use rvs::ReadVoltageSelector;
