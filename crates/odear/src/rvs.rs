//! The read-voltage selector (RVS) module.
//!
//! When RP predicts a sensed page uncorrectable, RVS chooses better
//! read-reference voltages *without controller assistance* by reusing the
//! Swift-Read mechanism (paper §IV-C): the ones-count of the data already
//! sitting in the page buffer reveals the V_TH drift, from which
//! near-optimal references follow. The die then re-reads the page with
//! those references and raises the ready flag; the re-read page bypasses
//! RP (footnote 4).

use rif_events::SimRng;
use rif_flash::geometry::PageKind;
use rif_flash::swift_read::SwiftRead;
use rif_flash::vref::ReadVoltages;
use rif_flash::vth::{OperatingPoint, TlcModel};

/// The RVS module of a RiF-enabled die.
///
/// # Example
///
/// ```
/// use rif_odear::ReadVoltageSelector;
/// use rif_flash::{TlcModel, PageKind, OperatingPoint};
/// use rif_events::SimRng;
///
/// let rvs = ReadVoltageSelector::new(TlcModel::calibrated());
/// let mut rng = SimRng::seed_from(4);
/// let op = OperatingPoint::new(2000, 12.0);
/// let refs = rvs.select(op, 1.0, PageKind::Lsb, &mut rng);
/// let m = TlcModel::calibrated();
/// // Selected references decode where the defaults cannot.
/// assert!(m.rber(op, 1.0, refs.as_array(), PageKind::Lsb) < 0.0085);
/// ```
#[derive(Debug, Clone)]
pub struct ReadVoltageSelector {
    swift: SwiftRead,
    page_cells: usize,
}

impl ReadVoltageSelector {
    /// Builds an RVS over the given V_TH model with the paper's 16-KiB
    /// page (131 072 cells contribute to the ones-count).
    pub fn new(model: TlcModel) -> Self {
        Self::with_page_cells(model, 16 * 1024 * 8)
    }

    /// Builds an RVS with a custom page size in cells.
    ///
    /// # Panics
    ///
    /// Panics if `page_cells` is zero.
    pub fn with_page_cells(model: TlcModel, page_cells: usize) -> Self {
        assert!(page_cells > 0, "page must have at least one cell");
        ReadVoltageSelector {
            swift: SwiftRead::new(model),
            page_cells,
        }
    }

    /// Selects near-optimal references for a page under the (true) stress
    /// `op` and block `process_factor`: simulates the ones-count
    /// measurement of the sensed data and inverts it.
    pub fn select(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        kind: PageKind,
        rng: &mut SimRng,
    ) -> ReadVoltages {
        self.swift
            .select_refs(op, process_factor, kind, self.page_cells, rng)
    }

    /// Deterministic variant used by property tests: selects from an
    /// already-observed ones-fraction.
    pub fn select_from_observation(
        &self,
        pe_cycles: u32,
        kind: PageKind,
        observed_ones: f64,
    ) -> ReadVoltages {
        self.swift
            .refs_from_observation(pe_cycles, kind, observed_ones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_refs_recover_all_kinds_under_heavy_stress() {
        let model = TlcModel::calibrated();
        let rvs = ReadVoltageSelector::new(model.clone());
        let mut rng = SimRng::seed_from(9);
        for &(pe, days) in &[(1000u32, 20.0), (2000, 14.0)] {
            let op = OperatingPoint::new(pe, days);
            for kind in PageKind::ALL {
                let refs = rvs.select(op, 1.0, kind, &mut rng);
                let rber = model.rber(op, 1.0, refs.as_array(), kind);
                assert!(rber < 0.0085, "pe={pe} d={days} {kind}: RBER {rber}");
            }
        }
    }

    #[test]
    fn rvs_beats_default_refs_when_page_needs_retry() {
        let model = TlcModel::calibrated();
        let rvs = ReadVoltageSelector::new(model.clone());
        let mut rng = SimRng::seed_from(10);
        let op = OperatingPoint::new(1000, 22.0);
        let default = model.default_refs();
        for kind in PageKind::ALL {
            let selected = rvs.select(op, 1.2, kind, &mut rng);
            let before = model.rber(op, 1.2, &default, kind);
            let after = model.rber(op, 1.2, selected.as_array(), kind);
            assert!(after < before * 0.5, "{kind}: {before} -> {after}");
        }
    }

    #[test]
    fn observation_variant_is_deterministic() {
        let rvs = ReadVoltageSelector::new(TlcModel::calibrated());
        let a = rvs.select_from_observation(500, PageKind::Csb, 0.51);
        let b = rvs.select_from_observation(500, PageKind::Csb, 0.51);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn rejects_zero_page() {
        let _ = ReadVoltageSelector::with_page_cells(TlcModel::calibrated(), 0);
    }
}
