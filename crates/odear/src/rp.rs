//! The read-retry predictor (RP) module.
//!
//! RP estimates whether a sensed page is correctable by the *off-chip*
//! LDPC decoder without decoding it, by thresholding the syndrome weight
//! (paper §IV-B). Three hardware optimizations make the computation cheap
//! (§V): only one codeword-sized chunk of the page is inspected, only the
//! first block row of syndromes is computed (pruning), and the codeword is
//! stored in rearranged layout so the computation is a straight
//! XOR-of-segments + popcount over the page buffer's 128-bit words
//! (Fig. 16).

use rif_events::SimDuration;
use rif_ldpc::analysis::rho_s;
use rif_ldpc::bits::BitVec;
use rif_ldpc::QcLdpcCode;

/// RP's verdict on a sensed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// True when RP predicts the off-chip decoder would fail, so the die
    /// should retry in place instead of transferring.
    pub retry_needed: bool,
    /// The approximate (pruned) syndrome weight RP computed.
    pub syndrome_weight: usize,
}

/// The bit-accurate RP module over a concrete QC-LDPC code.
///
/// # Example
///
/// ```
/// use rif_ldpc::{QcLdpcCode, Bsc, bits::BitVec};
/// use rif_odear::rp::ReadRetryPredictor;
/// use rif_events::SimRng;
///
/// let code = QcLdpcCode::small_test();
/// let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
/// let mut rng = SimRng::seed_from(2);
/// let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
/// // Heavy corruption far above the capability: RP flags a retry.
/// let hopeless = Bsc::new(0.05).corrupt(&code.rearrange(&cw), &mut rng);
/// assert!(rp.predict(&hopeless).retry_needed);
/// ```
#[derive(Debug, Clone)]
pub struct ReadRetryPredictor {
    code: QcLdpcCode,
    rho_s: usize,
}

impl ReadRetryPredictor {
    /// Builds an RP with an explicit correctability threshold ρs.
    pub fn new(code: QcLdpcCode, rho_s: usize) -> Self {
        ReadRetryPredictor { code, rho_s }
    }

    /// Builds an RP whose ρs is the expected pruned syndrome weight at the
    /// ECC correction capability — the calibration rule of §IV-B / Fig. 10.
    pub fn for_capability(code: &QcLdpcCode, capability_rber: f64) -> Self {
        let rho = rho_s(code, capability_rber);
        ReadRetryPredictor::new(code.clone(), rho)
    }

    /// The correctability threshold ρs.
    pub fn rho_s(&self) -> usize {
        self.rho_s
    }

    /// The code this RP is built for.
    pub fn code(&self) -> &QcLdpcCode {
        &self.code
    }

    /// Predicts from a sensed chunk in *rearranged* (on-flash) layout:
    /// the hardware datapath — XOR the first-block-row segments, popcount,
    /// compare against ρs.
    ///
    /// # Panics
    ///
    /// Panics if `sensed` is not one codeword long.
    pub fn predict(&self, sensed: &BitVec) -> Prediction {
        let weight = self.code.pruned_weight_rearranged(sensed);
        Prediction {
            retry_needed: weight > self.rho_s,
            syndrome_weight: weight,
        }
    }

    /// Predicts from a chunk in original (decoder) layout — used by the
    /// RPSSD baseline, where the predictor lives in the controller and the
    /// data arrives restored.
    pub fn predict_original_layout(&self, chunk: &BitVec) -> Prediction {
        let weight = self.code.pruned_syndrome_weight(chunk);
        Prediction {
            retry_needed: weight > self.rho_s,
            syndrome_weight: weight,
        }
    }

    /// Predicts correctability of a 16-KiB page from its first chunk only
    /// (chunk-based prediction, §V-A1). `page` holds the page's codewords
    /// in rearranged layout.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty.
    pub fn predict_page(&self, page: &[BitVec]) -> Prediction {
        assert!(!page.is_empty(), "page must contain at least one chunk");
        self.predict(&page[0])
    }

    /// The RP pipeline latency for a chunk of `chunk_bits`: fetch-bound on
    /// the page buffer's readout bandwidth (§V: 10 µs per 16-KiB page,
    /// fully pipelined XOR/popcount ⇒ 2.5 µs for a 4-KiB chunk).
    pub fn prediction_latency(
        chunk_bits: usize,
        t_buffer_readout_page: SimDuration,
    ) -> SimDuration {
        const PAGE_BITS: u64 = 16 * 1024 * 8;
        SimDuration::from_ns(t_buffer_readout_page.as_ns() * chunk_bits as u64 / PAGE_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimRng;
    use rif_ldpc::channel::Bsc;
    use rif_ldpc::decoder::MinSumDecoder;

    fn fixture() -> (QcLdpcCode, ReadRetryPredictor, SimRng) {
        let code = QcLdpcCode::small_test();
        let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
        (code, rp, SimRng::seed_from(3))
    }

    #[test]
    fn clean_pages_never_retry() {
        let (code, rp, mut rng) = fixture();
        for _ in 0..20 {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let p = rp.predict(&code.rearrange(&cw));
            assert!(!p.retry_needed);
            assert_eq!(p.syndrome_weight, 0);
        }
    }

    #[test]
    fn hopeless_pages_always_retry() {
        let (code, rp, mut rng) = fixture();
        for _ in 0..20 {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = Bsc::new(0.05).corrupt(&code.rearrange(&cw), &mut rng);
            assert!(rp.predict(&noisy).retry_needed);
        }
    }

    #[test]
    fn rearranged_and_original_layouts_agree() {
        let (code, rp, mut rng) = fixture();
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let noisy = Bsc::new(0.01).corrupt(&cw, &mut rng);
        let original = rp.predict_original_layout(&noisy);
        let rearranged = rp.predict(&code.rearrange(&noisy));
        assert_eq!(original.syndrome_weight, rearranged.syndrome_weight);
        assert_eq!(original.retry_needed, rearranged.retry_needed);
    }

    #[test]
    fn prediction_mostly_matches_decoder_above_capability() {
        // The heart of Fig. 11: well above the capability RP catches the
        // overwhelming majority of uncorrectable pages.
        let (code, rp, _) = fixture();
        let mut rng = SimRng::seed_from(7);
        let dec = MinSumDecoder::new(&code);
        let mut agree = 0;
        let trials = 60;
        for _ in 0..trials {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = Bsc::new(0.014).corrupt(&cw, &mut rng);
            let predicted_fail = rp.predict(&code.rearrange(&noisy)).retry_needed;
            let actual_fail = !dec.decode(&noisy).success;
            if predicted_fail == actual_fail {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / trials as f64 > 0.85,
            "agreement {agree}/{trials}"
        );
    }

    #[test]
    fn prediction_mostly_matches_decoder_below_capability() {
        let (code, rp, mut rng) = fixture();
        let dec = MinSumDecoder::new(&code);
        let mut agree = 0;
        let trials = 60;
        for _ in 0..trials {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = Bsc::new(0.003).corrupt(&cw, &mut rng);
            let predicted_fail = rp.predict(&code.rearrange(&noisy)).retry_needed;
            let actual_fail = !dec.decode(&noisy).success;
            if predicted_fail == actual_fail {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / trials as f64 > 0.85,
            "agreement {agree}/{trials}"
        );
    }

    #[test]
    fn page_prediction_uses_first_chunk() {
        let (code, rp, mut rng) = fixture();
        let clean = code.rearrange(&code.encode(&BitVec::random(code.data_bits(), &mut rng)));
        let dirty = Bsc::new(0.05).corrupt(
            &code.rearrange(&code.encode(&BitVec::random(code.data_bits(), &mut rng))),
            &mut rng,
        );
        // Dirty chunk first: retry. Clean chunk first: no retry, even though
        // a later chunk is dirty — that is the approximation's trade-off.
        assert!(
            rp.predict_page(&[dirty.clone(), clean.clone()])
                .retry_needed
        );
        assert!(!rp.predict_page(&[clean, dirty]).retry_needed);
    }

    #[test]
    fn rho_s_threshold_behaves_as_boundary() {
        let (code, _, mut rng) = fixture();
        let rp = ReadRetryPredictor::new(code.clone(), 10);
        // Build a word with known pruned weight by flipping bits in a
        // parity-staircase segment observed only by block rows k-1, k.
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let mut sensed = code.rearrange(&cw);
        let t = code.matrix().t();
        // Segment 33 (first staircase column) participates in block row 0;
        // in rearranged layout each flipped bit adds exactly 1 to the
        // pruned weight.
        for k in 0..10 {
            sensed.flip(33 * t + k);
        }
        let p = rp.predict(&sensed);
        assert_eq!(p.syndrome_weight, 10);
        assert!(!p.retry_needed, "weight == rho_s must not retry");
        sensed.flip(33 * t + 10);
        assert!(
            rp.predict(&sensed).retry_needed,
            "weight > rho_s must retry"
        );
    }

    #[test]
    fn latency_matches_paper_tpred() {
        // 4-KiB chunk of a 16-KiB page at 10 µs full-page readout: 2.5 µs.
        let l = ReadRetryPredictor::prediction_latency(4 * 1024 * 8, SimDuration::from_us(10));
        assert_eq!(l.as_us(), 2.5);
        // 1-KiB chunk: 0.625 µs (the ablation point of §V-A1).
        let l1 = ReadRetryPredictor::prediction_latency(1024 * 8, SimDuration::from_us(10));
        assert_eq!(l1.as_us(), 0.625);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn empty_page_rejected() {
        let (_, rp, _) = fixture();
        let _ = rp.predict_page(&[]);
    }
}
