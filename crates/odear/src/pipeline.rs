//! Word-level model of the RP hardware datapath (paper Fig. 16).
//!
//! The RP module streams the sensed chunk out of the page buffer in
//! 128-bit words: each cycle fetches one word of one segment into the
//! segment register, XORs it into the syndrome register, and — once all
//! participating segments contributed a given word position — counts the
//! syndrome word's ones into the accumulator. Every stage is pipelined,
//! so the latency is *fetch-bound*: `(participating segments × t) /
//! word_bits` cycles plus a two-stage drain. At the paper's page-buffer
//! readout rate (one 128-bit word per 10-ns cycle, i.e. 16 KiB per
//! 10 µs) a 4-KiB chunk predicts in ≈2.5 µs — Table I's tPRED.
//!
//! [`RpPipeline::process`] executes the datapath word-by-word on a real
//! sensed chunk and is verified against the mathematical pruned syndrome
//! weight.

use rif_events::SimDuration;
use rif_ldpc::bits::BitVec;
use rif_ldpc::QcLdpcCode;

/// One execution of the RP datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineRun {
    /// The accumulated syndrome weight (equals the pruned weight).
    pub syndrome_weight: usize,
    /// Fetch cycles consumed (including the pipeline drain).
    pub cycles: u64,
}

/// The Fig. 16 datapath model.
///
/// # Example
///
/// ```
/// use rif_odear::pipeline::RpPipeline;
///
/// let p = RpPipeline::paper();
/// // The paper's code: 34 participating segments of 1024 bits.
/// let lat = p.latency(34 * 1024);
/// assert!((lat.as_us() - 2.5).abs() < 0.3); // Table I: tPRED = 2.5 µs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpPipeline {
    /// Page-buffer word width in bits (128 in the paper's reference).
    pub word_bits: usize,
    /// Datapath clock in Hz (100 MHz at the 130-nm synthesis point).
    pub clock_hz: u64,
}

impl RpPipeline {
    /// The paper's parameters: 128-bit words at 100 MHz.
    pub fn paper() -> Self {
        RpPipeline {
            word_bits: 128,
            clock_hz: 100_000_000,
        }
    }

    /// Fetch cycles to stream `chunk_bits` through the pipeline: one word
    /// per cycle plus the two-stage (XOR, popcount) drain.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits` is not word-aligned.
    pub fn cycles(&self, chunk_bits: usize) -> u64 {
        assert!(
            chunk_bits % self.word_bits == 0,
            "chunk must be a multiple of the {}-bit word",
            self.word_bits
        );
        (chunk_bits / self.word_bits) as u64 + 2
    }

    /// Wall-clock latency of a prediction over `chunk_bits`.
    pub fn latency(&self, chunk_bits: usize) -> SimDuration {
        let ns = self.cycles(chunk_bits) * 1_000_000_000 / self.clock_hz;
        SimDuration::from_ns(ns)
    }

    /// Executes the datapath on a sensed chunk in rearranged (on-flash)
    /// layout: word-by-word XOR across the first-block-row segments, then
    /// per-word popcount into the accumulator — exactly the hardware's
    /// data movement, and provably equal to
    /// [`QcLdpcCode::pruned_weight_rearranged`].
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not one codeword long or the circulant size
    /// is not word-aligned.
    pub fn process(&self, code: &QcLdpcCode, sensed: &BitVec) -> PipelineRun {
        let h = code.matrix();
        assert_eq!(sensed.len(), code.n(), "codeword length mismatch");
        assert!(
            h.t() % self.word_bits == 0,
            "circulant size must be word-aligned"
        );
        let words_per_segment = h.t() / self.word_bits;
        let participating: Vec<usize> = (0..h.cols_b())
            .filter(|&j| h.coeff(0, j).is_some())
            .collect();

        let words = sensed.as_words();
        let words_per_64 = self.word_bits / 64;
        let mut weight = 0usize;
        let mut fetches = 0u64;
        // Walk syndrome word positions; for each, fetch the matching word
        // of every participating segment, XOR, popcount, accumulate.
        for w in 0..words_per_segment {
            let mut acc = vec![0u64; words_per_64];
            for &j in &participating {
                let seg_word_base = (j * h.t()) / 64 + w * words_per_64;
                for (k, a) in acc.iter_mut().enumerate() {
                    *a ^= words[seg_word_base + k];
                }
                fetches += 1;
            }
            weight += acc.iter().map(|x| x.count_ones() as usize).sum::<usize>();
        }
        PipelineRun {
            syndrome_weight: weight,
            cycles: fetches + 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimRng;
    use rif_ldpc::Bsc;

    #[test]
    fn paper_tpred_anchor() {
        let p = RpPipeline::paper();
        // 34 participating segments × 1024 bits = 272 words -> 2.74 µs,
        // the paper's "about 2.5 µs" for a 4-KiB chunk.
        let lat = p.latency(34 * 1024);
        assert!((2.4..3.0).contains(&lat.as_us()), "latency {}", lat.as_us());
        // A full 16-KiB page would quadruple it — why chunking matters.
        let full = p.latency(4 * 34 * 1024);
        assert!(full.as_ns() > lat.as_ns() * 3);
    }

    #[test]
    fn datapath_weight_matches_mathematical_definition() {
        // small_test's 64-bit circulants need a 64-bit datapath.
        let code = QcLdpcCode::small_test();
        let p = RpPipeline {
            word_bits: 64,
            clock_hz: 100_000_000,
        };
        let mut rng = SimRng::seed_from(3);
        for &rber in &[0.0, 0.002, 0.01, 0.05] {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let sensed = Bsc::new(rber).corrupt(&code.rearrange(&cw), &mut rng);
            let run = p.process(&code, &sensed);
            assert_eq!(
                run.syndrome_weight,
                code.pruned_weight_rearranged(&sensed),
                "rber {rber}"
            );
        }
    }

    #[test]
    fn cycle_count_matches_fetch_bound_model() {
        // The medium code's 256-bit circulants stream cleanly through the
        // paper's 128-bit datapath.
        let code = QcLdpcCode::medium();
        let p = RpPipeline::paper();
        let mut rng = SimRng::seed_from(4);
        let sensed = code.rearrange(&code.encode(&BitVec::random(code.data_bits(), &mut rng)));
        let run = p.process(&code, &sensed);
        let h = code.matrix();
        let participating = (0..h.cols_b()).filter(|&j| h.coeff(0, j).is_some()).count();
        let words_per_segment = h.t() / 128;
        assert_eq!(run.cycles, (participating * words_per_segment) as u64 + 2);
        assert_eq!(run.syndrome_weight, code.pruned_weight_rearranged(&sensed));
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn rejects_unaligned_circulants() {
        // 64-bit circulants cannot stream through the 128-bit datapath.
        let code = QcLdpcCode::small_test();
        let sensed = BitVec::zeros(code.n());
        let _ = RpPipeline::paper().process(&code, &sensed);
    }

    #[test]
    fn latency_scales_linearly_with_chunk() {
        let p = RpPipeline::paper();
        let one = p.latency(128 * 100).as_ns();
        let two = p.latency(128 * 200).as_ns();
        assert!((two as i64 - 2 * one as i64).abs() <= 30, "{one} vs {two}");
    }
}
