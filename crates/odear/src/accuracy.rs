//! RP prediction-accuracy measurement (Figs. 11 and 14) and the
//! closed-form behaviour model the SSD simulator consumes.
//!
//! The paper validates RP by generating 10⁵ test pages per RBER value and
//! comparing RP's verdict against the real QC-LDPC decoder's outcome
//! (§IV-B). [`measure_accuracy`] is that experiment. For the event-level
//! simulator, §VI-A states that "a probability-based model is used using
//! the RP prediction accuracy function" — [`RpBehavior`] is that model,
//! with the retry probability in closed form: the pruned syndrome weight
//! is Binomial(t, q(RBER)), so `P(retry) = P(W > ρs)` follows from the
//! normal approximation.

use rif_events::{parallel_trials, SimRng};
use rif_ldpc::bits::BitVec;
use rif_ldpc::channel::Bsc;
use rif_ldpc::decoder::MinSumDecoder;
use rif_ldpc::model::normal_cdf;
use rif_ldpc::QcLdpcCode;

use crate::rp::ReadRetryPredictor;

/// One point of an RP-accuracy sweep (the bars of Figs. 11/14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyPoint {
    /// Raw bit-error rate of the test pages.
    pub rber: f64,
    /// Fraction of pages where RP's verdict matched the decoder outcome.
    pub accuracy: f64,
    /// Fraction of correctable pages RP flagged for retry (unnecessary
    /// in-die retries — cheap, §IV-B).
    pub false_retry_rate: f64,
    /// Fraction of uncorrectable pages RP let through (wasted off-chip
    /// transfers — the costly misprediction).
    pub missed_retry_rate: f64,
    /// Monte-Carlo trials behind this point.
    pub trials: usize,
}

/// Runs the Fig. 11/14 validation: per RBER, corrupts `trials` encoded
/// pages, compares RP (with or without the chunk/pruning approximations —
/// RP as passed in) against the real min-sum decoder.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn measure_accuracy(
    code: &QcLdpcCode,
    rp: &ReadRetryPredictor,
    rbers: &[f64],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<AccuracyPoint> {
    measure_accuracy_with(
        code,
        |c, noisy| rp.predict(&c.rearrange(noisy)).retry_needed,
        rbers,
        trials,
        seed,
        threads,
    )
}

/// Generalized accuracy measurement: `predict_fail` receives the noisy
/// codeword in *original* layout and returns the predictor's verdict.
/// Fig. 11 uses a full-syndrome predictor here; Fig. 14 uses the
/// approximate RP hardware path.
///
/// Trials fan out over `threads` workers with one `SimRng::stream` per
/// trial, so the points do not depend on the thread count.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn measure_accuracy_with<F>(
    code: &QcLdpcCode,
    predict_fail: F,
    rbers: &[f64],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<AccuracyPoint>
where
    F: Fn(&QcLdpcCode, &BitVec) -> bool + Sync,
{
    assert!(trials > 0, "need at least one trial");
    let decoder = MinSumDecoder::new(code);
    let mut out = Vec::with_capacity(rbers.len());
    for (pi, &rber) in rbers.iter().enumerate() {
        let channel = Bsc::new(rber);
        let verdicts = parallel_trials(threads, trials, |k| {
            let mut rng = SimRng::stream(seed, (pi * trials + k) as u64);
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = channel.corrupt(&cw, &mut rng);
            let predicted_fail = predict_fail(code, &noisy);
            let actual_fail = !decoder.decode(&noisy).success;
            (predicted_fail, actual_fail)
        });
        let mut correct = 0usize;
        let mut false_retry = 0usize;
        let mut missed_retry = 0usize;
        let mut correctable = 0usize;
        for &(predicted_fail, actual_fail) in &verdicts {
            if predicted_fail == actual_fail {
                correct += 1;
            }
            if actual_fail {
                if !predicted_fail {
                    missed_retry += 1;
                }
            } else {
                correctable += 1;
                if predicted_fail {
                    false_retry += 1;
                }
            }
        }
        let uncorrectable = trials - correctable;
        out.push(AccuracyPoint {
            rber,
            accuracy: correct as f64 / trials as f64,
            false_retry_rate: if correctable > 0 {
                false_retry as f64 / correctable as f64
            } else {
                0.0
            },
            missed_retry_rate: if uncorrectable > 0 {
                missed_retry as f64 / uncorrectable as f64
            } else {
                0.0
            },
            trials,
        });
    }
    out
}

/// Mean accuracy over the points with RBER above `capability` — the
/// headline "99.1 % / 98.7 % prediction accuracy for uncorrectable pages".
pub fn mean_accuracy_above(points: &[AccuracyPoint], capability: f64) -> f64 {
    let above: Vec<f64> = points
        .iter()
        .filter(|p| p.rber > capability)
        .map(|p| p.accuracy)
        .collect();
    if above.is_empty() {
        return 0.0;
    }
    above.iter().sum::<f64>() / above.len() as f64
}

/// Closed-form RP behaviour for the event-level simulator.
///
/// The pruned syndrome weight of a chunk at RBER `p` is
/// `W ~ Binomial(t, q)` with `q = (1 − (1−2p)^w0)/2`; RP retries when
/// `W > ρs`. The normal approximation gives the retry probability
/// directly, so the simulator never touches real codewords.
///
/// # Example
///
/// ```
/// use rif_odear::RpBehavior;
///
/// let rp = RpBehavior::paper_default();
/// // At the capability, the threshold splits the weight distribution:
/// // retry probability ≈ one half (the 50.3 % accuracy point of Fig. 11).
/// let p = rp.retry_probability(0.0085);
/// assert!((p - 0.5).abs() < 0.1);
/// // Far above, RP always retries; far below, never.
/// assert!(rp.retry_probability(0.012) > 0.999);
/// assert!(rp.retry_probability(0.005) < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpBehavior {
    /// Circulant size (number of pruned syndromes computed).
    t: usize,
    /// Row weight of the first block row.
    row_weight: usize,
    /// The correctability threshold ρs.
    rho_s: usize,
}

impl RpBehavior {
    /// The paper's configuration: t = 1024 syndromes of row weight 34
    /// (32 data blocks + 2 parity blocks in the first block row),
    /// ρs calibrated at RBER 0.0085.
    pub fn paper_default() -> Self {
        Self::calibrated(1024, 34, 0.0085)
    }

    /// Builds a behaviour model for a code with `t` pruned syndromes of
    /// `row_weight`, thresholded at the expected weight at
    /// `capability_rber`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `row_weight` is zero.
    pub fn calibrated(t: usize, row_weight: usize, capability_rber: f64) -> Self {
        assert!(t > 0 && row_weight > 0, "degenerate code geometry");
        let q = QcLdpcCode::syndrome_probability(row_weight, capability_rber);
        RpBehavior {
            t,
            row_weight,
            rho_s: (t as f64 * q).round() as usize,
        }
    }

    /// Builds a behaviour model with an explicit threshold (for ablation
    /// studies sweeping ρs away from the calibrated point).
    ///
    /// # Panics
    ///
    /// Panics if `t` or `row_weight` is zero.
    pub fn with_rho(t: usize, row_weight: usize, rho_s: usize) -> Self {
        assert!(t > 0 && row_weight > 0, "degenerate code geometry");
        RpBehavior {
            t,
            row_weight,
            rho_s,
        }
    }

    /// Builds the behaviour model matching a concrete bit-level RP.
    pub fn from_predictor(rp: &ReadRetryPredictor) -> Self {
        let h = rp.code().matrix();
        RpBehavior {
            t: h.t(),
            row_weight: h.row_weight(0),
            rho_s: rp.rho_s(),
        }
    }

    /// The threshold ρs.
    pub fn rho_s(&self) -> usize {
        self.rho_s
    }

    /// Probability that RP flags a page of the given RBER for an in-die
    /// retry.
    pub fn retry_probability(&self, rber: f64) -> f64 {
        let q = QcLdpcCode::syndrome_probability(self.row_weight, rber.clamp(0.0, 0.5));
        let mean = self.t as f64 * q;
        let var = self.t as f64 * q * (1.0 - q);
        if var <= 0.0 {
            return if mean > self.rho_s as f64 { 1.0 } else { 0.0 };
        }
        // Continuity-corrected normal tail of Binomial(t, q) above rho_s.
        1.0 - normal_cdf((self.rho_s as f64 + 0.5 - mean) / var.sqrt())
    }

    /// Samples RP's verdict for a page of the given RBER.
    pub fn sample_retry(&self, rber: f64, rng: &mut SimRng) -> bool {
        rng.chance(self.retry_probability(rber))
    }

    /// Expected pruned-syndrome weight at `rber`, as a fraction of the
    /// retry threshold ρs: <1 means the page decodes with margin, ≈1
    /// sits at the capability, >1 is expected to need a retry.
    ///
    /// This is the controller-visible "how close to failing" signal
    /// that online threshold learning consumes — the weight is measured
    /// by the very syndrome hardware ODEAR's ρs was calibrated on, so a
    /// learner fed this fraction inherits that calibration instead of
    /// reading the oracle RBER tables.
    pub fn expected_weight_fraction(&self, rber: f64) -> f64 {
        let q = QcLdpcCode::syndrome_probability(self.row_weight, rber.clamp(0.0, 0.5));
        self.t as f64 * q / self.rho_s.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_high_far_from_capability() {
        let code = QcLdpcCode::small_test();
        let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
        let pts = measure_accuracy(&code, &rp, &[0.003, 0.016], 60, 5, 1);
        assert!(
            pts[0].accuracy > 0.9,
            "below-cap accuracy {}",
            pts[0].accuracy
        );
        assert!(
            pts[1].accuracy > 0.9,
            "above-cap accuracy {}",
            pts[1].accuracy
        );
    }

    #[test]
    fn accuracy_degrades_at_capability() {
        // Fig. 11: accuracy drops to ≈50 % when RBER equals the capability
        // (both the decoder outcome and the weight threshold are coin
        // flips there, decided by independent noise).
        let code = QcLdpcCode::small_test();
        // For the small code the min-sum waterfall sits near 0.012; use a
        // threshold calibrated there to probe the boundary effect.
        let rp = ReadRetryPredictor::for_capability(&code, 0.012);
        let pts = measure_accuracy(&code, &rp, &[0.012], 80, 6, 1);
        assert!(
            pts[0].accuracy < 0.9,
            "boundary accuracy suspiciously high: {}",
            pts[0].accuracy
        );
    }

    #[test]
    fn accuracy_is_thread_count_invariant() {
        let code = QcLdpcCode::small_test();
        let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
        assert_eq!(
            measure_accuracy(&code, &rp, &[0.004, 0.011], 20, 9, 1),
            measure_accuracy(&code, &rp, &[0.004, 0.011], 20, 9, 8),
        );
    }

    #[test]
    fn mean_accuracy_above_filters_correctly() {
        let pts = vec![
            AccuracyPoint {
                rber: 0.005,
                accuracy: 0.2,
                false_retry_rate: 0.0,
                missed_retry_rate: 0.0,
                trials: 1,
            },
            AccuracyPoint {
                rber: 0.010,
                accuracy: 0.9,
                false_retry_rate: 0.0,
                missed_retry_rate: 0.0,
                trials: 1,
            },
            AccuracyPoint {
                rber: 0.012,
                accuracy: 1.0,
                false_retry_rate: 0.0,
                missed_retry_rate: 0.0,
                trials: 1,
            },
        ];
        assert!((mean_accuracy_above(&pts, 0.0085) - 0.95).abs() < 1e-12);
        assert_eq!(mean_accuracy_above(&pts, 0.05), 0.0);
    }

    #[test]
    fn behavior_matches_bit_level_rp() {
        // The closed-form retry probability must track the Monte-Carlo
        // retry rate of the real RP hardware model.
        let code = QcLdpcCode::small_test();
        let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
        let behavior = RpBehavior::from_predictor(&rp);
        let mut rng = SimRng::seed_from(7);
        for &rber in &[0.006, 0.0085, 0.012] {
            let trials = 200;
            let mut retries = 0;
            for _ in 0..trials {
                let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
                let noisy = Bsc::new(rber).corrupt(&code.rearrange(&cw), &mut rng);
                if rp.predict(&noisy).retry_needed {
                    retries += 1;
                }
            }
            let mc = retries as f64 / trials as f64;
            let analytic = behavior.retry_probability(rber);
            assert!(
                (mc - analytic).abs() < 0.12,
                "rber {rber}: MC {mc} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn retry_probability_is_monotone() {
        let rp = RpBehavior::paper_default();
        let mut last = 0.0;
        for i in 0..50 {
            let p = rp.retry_probability(i as f64 * 0.0005);
            assert!(p >= last - 1e-12, "not monotone at step {i}");
            last = p;
        }
        assert!(last > 0.999);
    }

    #[test]
    fn sample_retry_tracks_probability() {
        let rp = RpBehavior::paper_default();
        let mut rng = SimRng::seed_from(8);
        let trials = 20_000;
        let rate = (0..trials)
            .filter(|_| rp.sample_retry(0.0085, &mut rng))
            .count() as f64
            / trials as f64;
        let expect = rp.retry_probability(0.0085);
        assert!((rate - expect).abs() < 0.02, "rate {rate} expect {expect}");
    }

    #[test]
    fn expected_weight_fraction_tracks_rho_s() {
        let rp = RpBehavior::paper_default();
        // Monotone in RBER, ≈1 where the retry decision flips (the
        // fraction and retry_probability cross 1 / 0.5 together), and
        // well-behaved at the extremes.
        let mut last = 0.0;
        for i in 0..=50 {
            let w = rp.expected_weight_fraction(i as f64 * 0.0005);
            assert!(w.is_finite() && w >= 0.0);
            assert!(w >= last - 1e-12, "not monotone at step {i}");
            last = w;
        }
        assert_eq!(rp.expected_weight_fraction(0.0), 0.0);
        // Where the expected weight sits right at ρs, the normal-tail
        // retry probability must be ≈50 %.
        let mut lo = 0.0;
        let mut hi = 0.05;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if rp.expected_weight_fraction(mid) < 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = rp.retry_probability(0.5 * (lo + hi));
        assert!((p - 0.5).abs() < 0.05, "P(retry) at weight==rho_s: {p}");
        // Clamped far above capability: stays finite.
        assert!(rp.expected_weight_fraction(0.9).is_finite());
    }

    #[test]
    fn paper_default_rho_s_scale() {
        // With t = 1024 and w0 = 34, q(0.0085) ≈ 0.22 ⇒ ρs ≈ 230. The
        // paper's ρs = 3830 corresponds to its different (undisclosed)
        // syndrome accounting; what matters is consistency with our code.
        let rp = RpBehavior::paper_default();
        assert!((200..260).contains(&rp.rho_s()), "rho_s {}", rp.rho_s());
    }
}
