//! The full ODEAR engine: the die-level read flow of Fig. 9.
//!
//! `OdearEngine` stitches RP and RVS into the read path of a RiF-enabled
//! die, operating on real codewords:
//!
//! 1. a read command senses the page into the page buffer (errors at the
//!    current RBER);
//! 2. RP computes the approximate syndrome weight of the first 4-KiB chunk
//!    and compares it to ρs;
//! 3. *correctable* → ready flag is set, the page transfers off-chip;
//! 4. *uncorrectable* → RVS selects near-optimal references from the
//!    sensed data's ones-count, the die re-reads the page with them, and
//!    only then raises the ready flag. The re-read page bypasses RP.

use rif_events::{SimDuration, SimRng};
use rif_flash::chip::{FlashCommand, FlashTiming};
use rif_flash::geometry::PageKind;
use rif_flash::rber::{BlockProfile, ErrorModel};
use rif_flash::vth::OperatingPoint;
use rif_ldpc::bits::BitVec;
use rif_ldpc::channel::Bsc;
use rif_ldpc::QcLdpcCode;

use crate::rp::{Prediction, ReadRetryPredictor};
use crate::rvs::ReadVoltageSelector;

/// Outcome of a die-level RiF read.
#[derive(Debug, Clone)]
pub struct OdearReadResult {
    /// The chunks handed to the channel, in rearranged (on-flash) layout.
    pub transferred: Vec<BitVec>,
    /// RP's verdict on the first sense.
    pub prediction: Prediction,
    /// True when the engine performed an in-die retry.
    pub retried: bool,
    /// Total die occupancy (tR + tPRED [+ tR]).
    pub die_time: SimDuration,
    /// The RBER at which the transferred data was sensed.
    pub transferred_rber: f64,
}

/// A bit-accurate ODEAR engine bound to a QC-LDPC code and an error model.
///
/// # Example
///
/// ```
/// use rif_odear::OdearEngine;
/// use rif_ldpc::{QcLdpcCode, bits::BitVec};
/// use rif_flash::{ErrorModel, OperatingPoint, PageKind, BlockProfile};
/// use rif_events::SimRng;
///
/// let engine = OdearEngine::new(QcLdpcCode::small_test(), ErrorModel::calibrated());
/// let mut rng = SimRng::seed_from(6);
/// let page: Vec<BitVec> = (0..4)
///     .map(|_| engine.code().encode(&BitVec::random(engine.code().data_bits(), &mut rng)))
///     .collect();
/// // An aged page: the engine retries in-die and the transferred data is
/// // sensed at a far lower RBER.
/// let out = engine.read_page(
///     &page,
///     OperatingPoint::new(2000, 20.0),
///     BlockProfile::median(),
///     PageKind::Csb,
///     &mut rng,
/// );
/// assert!(out.retried);
/// assert!(out.transferred_rber < 0.0085);
/// ```
#[derive(Debug, Clone)]
pub struct OdearEngine {
    code: QcLdpcCode,
    model: ErrorModel,
    rp: ReadRetryPredictor,
    rvs: ReadVoltageSelector,
    timing: FlashTiming,
}

impl OdearEngine {
    /// Builds an engine with ρs calibrated at the paper's 0.0085
    /// capability and Table I timing.
    pub fn new(code: QcLdpcCode, model: ErrorModel) -> Self {
        let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
        let rvs = ReadVoltageSelector::new(model.tlc().clone());
        OdearEngine {
            code,
            model,
            rp,
            rvs,
            timing: FlashTiming::paper(),
        }
    }

    /// The protected code.
    pub fn code(&self) -> &QcLdpcCode {
        &self.code
    }

    /// The RP module.
    pub fn rp(&self) -> &ReadRetryPredictor {
        &self.rp
    }

    /// Reads a programmed page (its clean codewords in *original* layout),
    /// simulating sensing noise, prediction and the optional in-die retry.
    ///
    /// # Panics
    ///
    /// Panics if `page` is empty or any chunk has the wrong length.
    pub fn read_page(
        &self,
        page: &[BitVec],
        op: OperatingPoint,
        block: BlockProfile,
        kind: PageKind,
        rng: &mut SimRng,
    ) -> OdearReadResult {
        assert!(!page.is_empty(), "page must contain at least one chunk");
        // Sense at the default references: the stored (rearranged) data
        // picks up errors at the page's current default-reference RBER.
        let rber_default = self.model.rber_default(block, op, kind);
        let sense = |rber: f64, rng: &mut SimRng| -> Vec<BitVec> {
            let bsc = Bsc::new(rber.min(0.5));
            page.iter()
                .map(|cw| bsc.corrupt(&self.code.rearrange(cw), rng))
                .collect()
        };
        let first = sense(rber_default, rng);
        let prediction = self.rp.predict_page(&first);

        if !prediction.retry_needed {
            return OdearReadResult {
                transferred: first,
                prediction,
                retried: false,
                die_time: FlashCommand::RifReadPredicted.die_occupancy(&self.timing),
                transferred_rber: rber_default,
            };
        }

        // RVS: select near-optimal references from the sensed ones-count,
        // then re-sense. The re-read bypasses RP (footnote 4).
        let refs = self.rvs.select(op, block.factor, kind, rng);
        let rber_retry = self.model.rber_at(block, op, refs, kind);
        let second = sense(rber_retry, rng);
        OdearReadResult {
            transferred: second,
            prediction,
            retried: true,
            die_time: FlashCommand::RifReadRetried.die_occupancy(&self.timing),
            transferred_rber: rber_retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_ldpc::decoder::MinSumDecoder;

    fn engine() -> OdearEngine {
        OdearEngine::new(QcLdpcCode::small_test(), ErrorModel::calibrated())
    }

    fn random_page(code: &QcLdpcCode, rng: &mut SimRng) -> Vec<BitVec> {
        (0..4)
            .map(|_| code.encode(&BitVec::random(code.data_bits(), rng)))
            .collect()
    }

    #[test]
    fn fresh_pages_transfer_without_retry() {
        let e = engine();
        let mut rng = SimRng::seed_from(11);
        let page = random_page(e.code(), &mut rng);
        let out = e.read_page(
            &page,
            OperatingPoint::fresh(),
            BlockProfile::median(),
            PageKind::Lsb,
            &mut rng,
        );
        assert!(!out.retried);
        assert_eq!(out.die_time.as_us(), 42.5); // tR + tPRED
        assert_eq!(out.transferred.len(), 4);
    }

    #[test]
    fn aged_pages_retry_in_die_and_become_decodable() {
        let e = engine();
        let mut rng = SimRng::seed_from(12);
        let page = random_page(e.code(), &mut rng);
        let op = OperatingPoint::new(2000, 22.0);
        let out = e.read_page(&page, op, BlockProfile::median(), PageKind::Csb, &mut rng);
        assert!(out.retried);
        assert_eq!(out.die_time.as_us(), 82.5); // tR + tPRED + tR
                                                // The transferred data, restored to decoder layout, decodes.
        let dec = MinSumDecoder::new(e.code());
        for (chunk, clean) in out.transferred.iter().zip(&page) {
            let restored = e.code().restore(chunk);
            let res = dec.decode(&restored);
            assert!(res.success, "retried chunk failed to decode");
            assert_eq!(&res.decoded, clean);
        }
    }

    #[test]
    fn retry_lowers_transferred_rber() {
        let e = engine();
        let mut rng = SimRng::seed_from(13);
        let page = random_page(e.code(), &mut rng);
        let op = OperatingPoint::new(1000, 25.0);
        let block = BlockProfile::median();
        let out = e.read_page(&page, op, block, PageKind::Msb, &mut rng);
        assert!(out.retried);
        let default_rber = e.model.rber_default(block, op, PageKind::Msb);
        assert!(out.transferred_rber < default_rber * 0.5);
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let e = engine();
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            let page = random_page(e.code(), &mut rng);
            let out = e.read_page(
                &page,
                OperatingPoint::new(1000, 15.0),
                BlockProfile::median(),
                PageKind::Lsb,
                &mut rng,
            );
            (out.retried, out.prediction.syndrome_weight)
        };
        assert_eq!(run(99), run(99));
    }
}
