//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — a reduced-cost run (smaller codes / fewer trials /
//!   shorter traces) for smoke testing;
//! * `--csv`   — machine-readable output instead of aligned text tables;
//! * `--seed N` — override the default seed.

use rif_ssd::{RetryKind, SimReport, Simulator, SsdConfig};
use rif_workloads::{Trace, WorkloadProfile};

/// Parsed command-line options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Reduced-cost run.
    pub quick: bool,
    /// Emit CSV instead of a text table.
    pub csv: bool,
    /// Seed for all stochastic components.
    pub seed: u64,
}

impl HarnessOpts {
    /// Parses `std::env::args`, exiting with usage on unknown flags.
    pub fn parse() -> Self {
        let mut opts = HarnessOpts {
            quick: false,
            csv: false,
            seed: 42,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--csv" => opts.csv = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--help" | "-h" => usage("")
                ,
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// Picks between a full-scale and quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--quick] [--csv] [--seed N]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 })
}

/// A simple aligned-text / CSV table writer.
#[derive(Debug)]
pub struct TableWriter {
    csv: bool,
    widths: Vec<usize>,
}

impl TableWriter {
    /// Creates a writer; `widths` are the per-column widths in text mode.
    pub fn new(csv: bool, widths: &[usize]) -> Self {
        TableWriter {
            csv,
            widths: widths.to_vec(),
        }
    }

    /// Prints one row of cells.
    pub fn row(&self, cells: &[String]) {
        if self.csv {
            println!("{}", cells.join(","));
        } else {
            let line: Vec<String> = cells
                .iter()
                .zip(self.widths.iter().chain(std::iter::repeat(&12)))
                .map(|(c, w)| format!("{c:>w$}", w = *w))
                .collect();
            println!("{}", line.join(" "));
        }
    }

    /// Prints a section heading (suppressed in CSV mode).
    pub fn heading(&self, text: &str) {
        if !self.csv {
            println!("\n== {text} ==");
        }
    }
}

/// The three wear stages of the evaluation.
pub const PE_STAGES: [u32; 3] = [0, 1000, 2000];

/// Generates a device-saturating variant of a named workload: the paper
/// measures SSD I/O bandwidth, so the offered load must exceed the host
/// link.
pub fn saturating_trace(profile: &WorkloadProfile, n_requests: usize, seed: u64) -> Trace {
    let mut cfg = profile.config();
    cfg.mean_interarrival_ns = 3_000.0; // ≈21 GB/s offered
    cfg.generate(n_requests, seed)
}

/// Runs one paper-geometry simulation.
pub fn run_paper_sim(retry: RetryKind, pe: u32, trace: &Trace, seed: u64) -> SimReport {
    let mut cfg = SsdConfig::paper(retry, pe);
    cfg.seed = seed;
    Simulator::new(cfg).run(trace)
}

/// Geometric mean helper (Fig. 17's summary column).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pick_switches_on_quick() {
        let q = HarnessOpts { quick: true, csv: false, seed: 1 };
        let f = HarnessOpts { quick: false, csv: false, seed: 1 };
        assert_eq!(q.pick(10, 2), 2);
        assert_eq!(f.pick(10, 2), 10);
    }

    #[test]
    fn saturating_trace_overdrives() {
        let p = WorkloadProfile::by_name("Sys0").unwrap();
        let t = saturating_trace(&p, 500, 1);
        let offered = t.total_bytes() as f64 / t.span().as_secs();
        assert!(offered > 12e9, "offered {offered}");
    }
}
