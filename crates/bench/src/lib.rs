//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — a reduced-cost run (smaller codes / fewer trials /
//!   shorter traces) for smoke testing;
//! * `--csv`   — machine-readable output instead of aligned text tables;
//! * `--seed N` — override the default seed;
//! * `--threads N` — worker threads for the Monte-Carlo sweeps. Trials
//!   use one RNG stream each, so the output is byte-identical for every
//!   thread count.
//!
//! Simulator-backed binaries additionally accept:
//!
//! * `--trace-out PREFIX` — each simulated run writes its JSONL trace to
//!   `PREFIX-<label>.jsonl`, then replays it through the
//!   [`TraceChecker`]; any violated invariant aborts the binary with
//!   status 1, so a traced figure run is also a correctness check;
//! * `--metrics` — each run collects a [`rif_events::MetricsRegistry`]
//!   and prints its contents as `# metric <label> <line>` rows.

use std::fs::File;
use std::io::BufWriter;

use rif_events::trace::JsonlSink;
use rif_ssd::tracecheck::TraceChecker;
use rif_ssd::{RetryKind, SimReport, Simulator, SsdConfig};
use rif_workloads::{Trace, WorkloadProfile};

/// Parsed command-line options common to all experiment binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Reduced-cost run.
    pub quick: bool,
    /// Emit CSV instead of a text table.
    pub csv: bool,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Worker threads for trial fan-out (≥ 1; does not affect results).
    pub threads: usize,
    /// Trace-file prefix: each run writes `<prefix>-<label>.jsonl` and is
    /// checked against the engine invariants.
    pub trace_out: Option<String>,
    /// Collect and print per-run metrics.
    pub metrics: bool,
}

/// Why [`HarnessOpts::parse_from`] rejected an argument list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help`/`-h` was given: print usage and exit successfully.
    Help,
    /// A flag was unknown or malformed.
    Invalid(String),
}

const USAGE: &str =
    "usage: <bin> [--quick] [--csv] [--seed N] [--threads N] [--trace-out PREFIX] [--metrics]";

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            quick: false,
            csv: false,
            seed: 42,
            threads: 1,
            trace_out: None,
            metrics: false,
        }
    }
}

impl HarnessOpts {
    /// Parses `std::env::args`, printing usage and exiting on `--help`
    /// (status 0) or on unknown/malformed flags (status 2).
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(ParseError::Help) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(ParseError::Invalid(msg)) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Pure parsing core of [`HarnessOpts::parse`].
    pub fn parse_from<I>(args: I) -> Result<Self, ParseError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut opts = HarnessOpts::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--csv" => opts.csv = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| ParseError::Invalid("--seed needs an integer".into()))?;
                }
                "--threads" => {
                    opts.threads = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| {
                            ParseError::Invalid("--threads needs an integer ≥ 1".into())
                        })?;
                }
                "--trace-out" => {
                    opts.trace_out =
                        Some(args.next().filter(|s| !s.is_empty()).ok_or_else(|| {
                            ParseError::Invalid("--trace-out needs a path prefix".into())
                        })?);
                }
                "--metrics" => opts.metrics = true,
                "--help" | "-h" => return Err(ParseError::Help),
                other => return Err(ParseError::Invalid(format!("unknown flag {other}"))),
            }
        }
        Ok(opts)
    }

    /// Picks between a full-scale and quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A simple aligned-text / CSV table writer.
#[derive(Debug)]
pub struct TableWriter {
    csv: bool,
    widths: Vec<usize>,
}

impl TableWriter {
    /// Creates a writer; `widths` are the per-column widths in text mode.
    pub fn new(csv: bool, widths: &[usize]) -> Self {
        TableWriter {
            csv,
            widths: widths.to_vec(),
        }
    }

    /// Prints one row of cells.
    pub fn row(&self, cells: &[String]) {
        if self.csv {
            println!("{}", cells.join(","));
        } else {
            let line: Vec<String> = cells
                .iter()
                .zip(self.widths.iter().chain(std::iter::repeat(&12)))
                .map(|(c, w)| format!("{c:>w$}", w = *w))
                .collect();
            println!("{}", line.join(" "));
        }
    }

    /// Prints a section heading (suppressed in CSV mode).
    pub fn heading(&self, text: &str) {
        if !self.csv {
            println!("\n== {text} ==");
        }
    }
}

/// The three wear stages of the evaluation.
pub const PE_STAGES: [u32; 3] = [0, 1000, 2000];

/// Generates a device-saturating variant of a named workload: the paper
/// measures SSD I/O bandwidth, so the offered load must exceed the host
/// link.
pub fn saturating_trace(profile: &WorkloadProfile, n_requests: usize, seed: u64) -> Trace {
    let mut cfg = profile.config();
    cfg.mean_interarrival_ns = 3_000.0; // ≈21 GB/s offered
    cfg.generate(n_requests, seed)
}

/// Runs one paper-geometry simulation.
pub fn run_paper_sim(retry: RetryKind, pe: u32, trace: &Trace, seed: u64) -> SimReport {
    let mut cfg = SsdConfig::paper(retry, pe);
    cfg.seed = seed;
    Simulator::new(cfg).run(trace)
}

/// The trace file a labeled run writes under `--trace-out PREFIX`.
pub fn trace_file(prefix: &str, label: &str) -> String {
    format!("{prefix}-{label}.jsonl")
}

/// Runs one paper-geometry simulation honouring the harness's
/// observability flags (see [`run_observed`]).
pub fn run_paper_sim_observed(
    opts: &HarnessOpts,
    label: &str,
    retry: RetryKind,
    pe: u32,
    trace: &Trace,
    seed: u64,
) -> SimReport {
    let mut cfg = SsdConfig::paper(retry, pe);
    cfg.seed = seed;
    run_observed(opts, label, cfg, trace)
}

/// Runs one simulation with the harness's observability flags applied:
///
/// * with `--trace-out PREFIX`, the run streams its JSONL trace to
///   `PREFIX-<label>.jsonl`, re-reads the file, and replays it through
///   the [`TraceChecker`] — any violation is printed and the process
///   exits with status 1;
/// * with `--metrics`, the run's [`rif_events::MetricsRegistry`] is
///   printed as `# metric <label> <line>` rows on stdout.
pub fn run_observed(opts: &HarnessOpts, label: &str, cfg: SsdConfig, trace: &Trace) -> SimReport {
    let mut sim = Simulator::new(cfg);
    if opts.metrics {
        sim = sim.with_metrics();
    }
    let path = opts.trace_out.as_deref().map(|p| trace_file(p, label));
    if let Some(path) = &path {
        let f =
            File::create(path).unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
        sim = sim.with_tracer(Box::new(JsonlSink::new(BufWriter::new(f))));
    }
    let report = sim.run(trace);
    if let Some(path) = &path {
        check_trace_file(path);
    }
    if opts.metrics {
        if let Some(m) = &report.metrics {
            for line in m.lines() {
                println!("# metric {label} {line}");
            }
        }
    }
    report
}

/// Parses and checks a trace file, exiting with status 1 on malformed
/// input or any violated invariant.
pub fn check_trace_file(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read trace file {path}: {e}"));
    match TraceChecker::check_jsonl(&text) {
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        Ok(violations) if !violations.is_empty() => {
            eprintln!("{path}: {} invariant violation(s):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        Ok(_) => {}
    }
}

/// Geometric mean helper (Fig. 17's summary column).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pick_switches_on_quick() {
        let q = HarnessOpts {
            quick: true,
            ..HarnessOpts::default()
        };
        let f = HarnessOpts::default();
        assert_eq!(q.pick(10, 2), 2);
        assert_eq!(f.pick(10, 2), 10);
    }

    fn parse(args: &[&str]) -> Result<HarnessOpts, ParseError> {
        HarnessOpts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parse_from_accepts_all_flags() {
        let opts = parse(&["--quick", "--csv", "--seed", "7", "--threads", "4"]).unwrap();
        assert!(opts.quick && opts.csv);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 4);
    }

    #[test]
    fn parse_from_defaults() {
        assert_eq!(parse(&[]).unwrap(), HarnessOpts::default());
    }

    #[test]
    fn parse_from_rejects_unknown_flag() {
        match parse(&["--bogus"]) {
            Err(ParseError::Invalid(msg)) => assert!(msg.contains("--bogus"), "msg {msg}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn parse_from_help_is_not_an_error_exit() {
        assert_eq!(parse(&["--help"]), Err(ParseError::Help));
        assert_eq!(parse(&["-h"]), Err(ParseError::Help));
    }

    #[test]
    fn parse_from_validates_values() {
        assert!(matches!(parse(&["--seed"]), Err(ParseError::Invalid(_))));
        assert!(matches!(
            parse(&["--seed", "x"]),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["--threads", "0"]),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(parse(&["--threads"]), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn parse_from_observability_flags() {
        let opts = parse(&["--trace-out", "/tmp/run", "--metrics"]).unwrap();
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/run"));
        assert!(opts.metrics);
        assert!(matches!(
            parse(&["--trace-out"]),
            Err(ParseError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["--trace-out", ""]),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn trace_file_joins_prefix_and_label() {
        assert_eq!(
            trace_file("out/fig19", "Ali124-RiFSSD-2000"),
            "out/fig19-Ali124-RiFSSD-2000.jsonl"
        );
    }

    #[test]
    fn saturating_trace_overdrives() {
        let p = WorkloadProfile::by_name("Sys0").unwrap();
        let t = saturating_trace(&p, 500, 1);
        let offered = t.total_bytes() as f64 / t.span().as_secs();
        assert!(offered > 12e9, "offered {offered}");
    }
}
