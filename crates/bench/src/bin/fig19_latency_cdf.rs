//! Fig. 19 — cumulative distribution of SSD-level read latencies for
//! Ali124 across schemes and wear stages, plus tail percentiles.
//!
//! Paper anchors: at 2K P/E, RiFSSD cuts the 99.99-th percentile tail by
//! 91.8 % / 82.6 % / 56.3 % vs SENC / SWR / SWR+.

use rif_bench::{run_paper_sim_observed, HarnessOpts, TableWriter, PE_STAGES};
use rif_ssd::RetryKind;
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(8_000, 800);
    // Latency is measured at a high-but-sustainable load so tails show
    // device behaviour, not unbounded backlog growth (the paper replays
    // its traces at recorded intensity).
    let mut wl = WorkloadProfile::by_name("Ali124")
        .expect("table workload")
        .config();
    wl.mean_interarrival_ns = 20_000.0;
    let trace = wl.generate(n_requests, opts.seed);
    let schemes = [
        RetryKind::Sentinel,
        RetryKind::SwiftRead,
        RetryKind::SwiftReadPlus,
        RetryKind::RpSsd,
        RetryKind::Rif,
    ];

    for pe in PE_STAGES {
        let t = TableWriter::new(opts.csv, &[8, 10, 10, 10, 10, 10]);
        t.heading(&format!(
            "Fig. 19 @ {pe} P/E: Ali124 read-latency percentiles (µs)"
        ));
        t.row(&[
            "scheme".into(),
            "p50".into(),
            "p90".into(),
            "p99".into(),
            "p99.9".into(),
            "p99.99".into(),
        ]);
        let mut senc_tail = 0.0;
        let mut rif_tail = 0.0;
        for scheme in schemes {
            let label = format!("Ali124-{}-{pe}", scheme.label());
            let report = run_paper_sim_observed(&opts, &label, scheme, pe, &trace, opts.seed);
            let p = |q: f64| {
                report
                    .read_latency
                    .percentile(q)
                    .map(|d| d.as_us())
                    .unwrap_or(0.0)
            };
            if scheme == RetryKind::Sentinel {
                senc_tail = p(99.99);
            }
            if scheme == RetryKind::Rif {
                rif_tail = p(99.99);
            }
            t.row(&[
                scheme.label().into(),
                format!("{:.1}", p(50.0)),
                format!("{:.1}", p(90.0)),
                format!("{:.1}", p(99.0)),
                format!("{:.1}", p(99.9)),
                format!("{:.1}", p(99.99)),
            ]);
            if opts.csv {
                // Also emit the CDF curve rows for plotting.
                for (lat, frac) in report.read_latency.cdf() {
                    println!("cdf,{pe},{},{:.3},{:.6}", scheme.label(), lat.as_us(), frac);
                }
            }
        }
        if !opts.csv && senc_tail > 0.0 {
            println!(
                "  -> RiF p99.99 tail {:.1}% below SENC (paper at 2K: 91.8%)",
                (1.0 - rif_tail / senc_tail) * 100.0
            );
        }
    }
}
