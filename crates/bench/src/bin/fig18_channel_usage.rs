//! Fig. 18 — flash-channel usage breakdown (IDLE / COR / UNCOR /
//! ECCWAIT) for the two most read-intensive workloads across schemes and
//! wear stages.
//!
//! Paper anchors: at 2K P/E on Ali124, SWR wastes 54.4 % of channel time
//! in UNCOR+ECCWAIT; RiFSSD wastes ≈1.8 % (Ali121) while RPSSD still
//! loses ≈19.9 % to UNCOR transfers.

use rif_bench::{run_paper_sim_observed, saturating_trace, HarnessOpts, TableWriter, PE_STAGES};
use rif_ssd::RetryKind;
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(6_000, 600);
    let schemes = [
        RetryKind::Sentinel,
        RetryKind::SwiftRead,
        RetryKind::SwiftReadPlus,
        RetryKind::RpSsd,
        RetryKind::Rif,
    ];

    let t = TableWriter::new(opts.csv, &[8, 6, 8, 8, 8, 8, 8, 9]);
    t.heading("Fig. 18: channel usage breakdown");
    t.row(&[
        "trace".into(),
        "pe".into(),
        "scheme".into(),
        "idle".into(),
        "cor".into(),
        "uncor".into(),
        "eccwait".into(),
        "wasted".into(),
    ]);
    for name in ["Ali121", "Ali124"] {
        let wl = WorkloadProfile::by_name(name).expect("table workload");
        for pe in PE_STAGES {
            let trace = saturating_trace(&wl, n_requests, opts.seed);
            for scheme in schemes {
                let label = format!("{name}-{}-{pe}", scheme.label());
                let report = run_paper_sim_observed(&opts, &label, scheme, pe, &trace, opts.seed);
                let u = report.channel_usage();
                t.row(&[
                    name.into(),
                    pe.to_string(),
                    scheme.label().into(),
                    format!("{:.3}", u.idle),
                    format!("{:.3}", u.cor),
                    format!("{:.3}", u.uncor),
                    format!("{:.3}", u.eccwait),
                    format!("{:.1}%", u.wasted() * 100.0),
                ]);
            }
        }
    }
    if !opts.csv {
        println!("\nRiF consumes the channel almost exclusively for correctable (COR)");
        println!("transfers; the reactive schemes burn large UNCOR + ECCWAIT shares.");
    }
}
