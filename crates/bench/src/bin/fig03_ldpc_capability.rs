//! Fig. 3 — error-correction capability of the 4-KiB QC-LDPC engine:
//! decoding-failure probability and average iteration count vs RBER,
//! measured by Monte-Carlo on the real code and min-sum decoder.
//!
//! Paper anchors: failure probability exceeds 10⁻¹ and iterations reach
//! the 20 cap as RBER passes 0.0085.

use rif_bench::{HarnessOpts, TableWriter};
use rif_ldpc::analysis::capability_sweep;
use rif_ldpc::{EccModel, QcLdpcCode};

fn main() {
    let opts = HarnessOpts::parse();
    let code = if opts.quick {
        QcLdpcCode::medium()
    } else {
        QcLdpcCode::paper()
    };
    let trials = opts.pick(200, 40);
    let rbers: Vec<f64> = (4..=10).map(|i| i as f64 * 0.001).collect();

    let t = TableWriter::new(opts.csv, &[10, 14, 12, 14, 12]);
    t.heading(&format!(
        "Fig. 3: QC-LDPC capability (n = {} bits, rate {:.3}, {} trials/point)",
        code.n(),
        code.rate(),
        trials
    ));
    t.row(&[
        "rber".into(),
        "fail_prob".into(),
        "avg_iters".into(),
        "model_fail".into(),
        "model_iters".into(),
    ]);

    let points = capability_sweep(&code, &rbers, trials, opts.seed, opts.threads);
    let model = EccModel::paper_default();
    for p in &points {
        t.row(&[
            format!("{:.4}", p.rber),
            format!("{:.4}", p.failure_probability),
            format!("{:.2}", p.avg_iterations),
            format!("{:.4}", model.failure_probability(p.rber)),
            format!("{:.2}", model.avg_iterations(p.rber)),
        ]);
    }

    let fitted = EccModel::fit(&points);
    if !opts.csv {
        println!(
            "\nmeasured correction capability (10% failure RBER): {:.5}",
            fitted.correction_capability()
        );
        println!("paper anchor: 0.0085 — the behavioural EccModel used by the SSD simulator");
        println!("is pinned to the paper value; the measured code lands within the same band.");
    }
}
