//! Fig. 4 — distribution of the retention time after which a page's RBER
//! exceeds the ECC correction capability, across P/E-cycle stages.
//!
//! Paper anchors: first failures at ≈17 / 14 / 10 / 8 days for
//! 0 / 200 / 500 / 1000 P/E cycles; at 1–2 K P/E most of the population
//! fails within the 30-day refresh horizon.

use rif_bench::{HarnessOpts, TableWriter};
use rif_flash::characterize::retention_failure_map;
use rif_flash::rber::ErrorModel;

fn main() {
    let opts = HarnessOpts::parse();
    let model = ErrorModel::calibrated();
    let pe_list = [0u32, 100, 200, 300, 500, 1000, 2000];
    let blocks = opts.pick(2_000, 200);
    let max_day = 30;

    let map = retention_failure_map(&model, &pe_list, max_day, blocks, 0.0085, opts.seed);

    let t = TableWriter::new(opts.csv, &[8, 6, 12]);
    t.heading(&format!(
        "Fig. 4: retention days until RBER exceeds 0.0085 ({blocks} blocks/stage)"
    ));
    if opts.csv {
        t.row(&["pe".into(), "day".into(), "proportion".into()]);
        for c in map.cells() {
            t.row(&[
                c.pe_cycles.to_string(),
                c.day.to_string(),
                format!("{:.4}", c.proportion),
            ]);
        }
    } else {
        // Heat-map style rows, like the figure.
        print!("{:>6} |", "P/E");
        for d in 0..=max_day {
            print!(
                "{}",
                if d % 5 == 0 {
                    format!("{d:>3}")
                } else {
                    "   ".into()
                }
            );
        }
        println!();
        for &pe in &pe_list {
            print!("{pe:>6} |");
            for day in 0..=max_day {
                let p = map
                    .cells()
                    .iter()
                    .find(|c| c.pe_cycles == pe && c.day == day)
                    .map(|c| c.proportion)
                    .unwrap_or(0.0);
                let glyph = match p {
                    p if p == 0.0 => "  .",
                    p if p < 0.02 => "  -",
                    p if p < 0.05 => "  +",
                    p if p < 0.10 => "  *",
                    _ => "  #",
                };
                print!("{glyph}");
            }
            println!();
        }
        println!("\nonset and median of the failure-day distribution:");
        println!(
            "{:>6} {:>10} {:>10} {:>10}",
            "P/E", "first", "median", "survive"
        );
        for &pe in &pe_list {
            let first = map
                .first_failure_day(pe)
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into());
            let median = map
                .median_failure_day(pe)
                .map(|d| format!("{d:.0}"))
                .unwrap_or_else(|| "-".into());
            let surv = map
                .survivors()
                .iter()
                .find(|(p, _)| *p == pe)
                .map(|(_, s)| format!("{:.2}", s))
                .unwrap_or_default();
            println!("{pe:>6} {first:>10} {median:>10} {surv:>10}");
        }
        println!("\npaper anchors: first failures ≈17/14/10/8 days at 0/200/500/1000 P/E;");
        println!("with a 30-day refresh horizon, read-retry is the common case at ≥1K P/E.");
    }
}
