//! Ablation — the correctability threshold ρs (§IV-B).
//!
//! ρs trades the two misprediction costs: a *low* threshold triggers
//! unnecessary in-die retries (one extra tR each, cheap); a *high* one
//! lets uncorrectable pages ship off-chip (wasted transfer + 20-µs
//! decode + conventional retry, expensive). The paper pins ρs at the
//! expected weight at the capability; this sweep shows how forgiving
//! that choice is.

use rif_bench::{saturating_trace, HarnessOpts, TableWriter};
use rif_events::parallel_trials;
use rif_odear::RpBehavior;
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let wl = WorkloadProfile::by_name("Ali124").expect("table workload");
    let trace = saturating_trace(&wl, opts.pick(4_000, 500), opts.seed);
    let calibrated = RpBehavior::paper_default().rho_s();

    let t = TableWriter::new(opts.csv, &[8, 8, 12, 12, 12, 12]);
    t.heading(&format!(
        "Ablation: rho_s sweep (calibrated = {calibrated}; RiFSSD @ 2K P/E, Ali124)"
    ));
    t.row(&[
        "mult".into(),
        "rho_s".into(),
        "bandwidth".into(),
        "in_die".into(),
        "uncor_xfers".into(),
        "misses".into(),
    ]);
    // Each ρs point is an independent deterministic simulation, so the
    // sweep fans the points out across the worker pool; rows are printed
    // in multiplier order regardless of completion order or --threads.
    let mults = [0.5f64, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];
    let reports = parallel_trials(opts.threads, mults.len(), |i| {
        let rho = (calibrated as f64 * mults[i]).round() as usize;
        let mut cfg = SsdConfig::paper(RetryKind::Rif, 2000);
        cfg.rp = RpBehavior::with_rho(1024, 34, rho);
        cfg.seed = opts.seed;
        (rho, Simulator::new(cfg).run(&trace))
    });
    for (mult, (rho, report)) in mults.iter().zip(&reports) {
        t.row(&[
            format!("{mult:.2}"),
            rho.to_string(),
            format!("{:.0}", report.io_bandwidth_mbps()),
            report.in_die_retries.to_string(),
            report.uncor_page_transfers.to_string(),
            report.decode_failures.to_string(),
        ]);
    }
    if !opts.csv {
        println!("\nBelow ~1.0 the extra in-die retries are nearly free; far above,");
        println!("missed predictions reintroduce the off-chip waste RiF exists to remove.");
    }
}
