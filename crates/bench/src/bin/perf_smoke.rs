//! Decode-kernel performance smoke test.
//!
//! Times the word-packed min-sum fast path against its scalar reference
//! (`decode_llr_reference`) on `QcLdpcCode::small_test` at three RBER
//! points spanning the waterfall, plus the rotate-XOR syndrome-weight
//! throughput, and writes the numbers to `BENCH_ldpc.json` at the repo
//! root for trend tracking.
//!
//! `--quick` shrinks the corpus and the timing window; `--seed` reseeds
//! the corpus.

use std::time::Instant;

use rif_bench::{HarnessOpts, TableWriter};
use rif_events::SimRng;
use rif_ldpc::bits::BitVec;
use rif_ldpc::channel::Bsc;
use rif_ldpc::decoder::MinSumDecoder;
use rif_ldpc::QcLdpcCode;

const OUT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ldpc.json");

/// RBER points: comfortably correctable, at the capability, mostly failing.
const RBERS: [f64; 3] = [0.004, 0.0085, 0.012];

fn corpus(code: &QcLdpcCode, rber: f64, count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = SimRng::seed_from(seed);
    let channel = Bsc::new(rber);
    (0..count)
        .map(|_| {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            channel.corrupt(&cw, &mut rng)
        })
        .collect()
}

/// Decodes the corpus repeatedly for at least `window_ms`, returning
/// codewords per second.
fn throughput<F: Fn(&BitVec)>(words: &[BitVec], window_ms: u64, decode: F) -> f64 {
    // One untimed pass to settle caches.
    for w in words {
        decode(w);
    }
    let start = Instant::now();
    let mut decoded = 0usize;
    loop {
        for w in words {
            decode(w);
        }
        decoded += words.len();
        if start.elapsed().as_millis() as u64 >= window_ms {
            break;
        }
    }
    decoded as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let opts = HarnessOpts::parse();
    let code = QcLdpcCode::small_test();
    let decoder = MinSumDecoder::new(&code);
    let count = opts.pick(60, 15);
    let window_ms = opts.pick(400, 80);

    let t = TableWriter::new(opts.csv, &[10, 14, 14, 10]);
    t.heading(&format!(
        "perf_smoke: min-sum fast path vs scalar reference (n = {}, {} codewords/point)",
        code.n(),
        count
    ));
    t.row(&[
        "rber".into(),
        "fast_cw_s".into(),
        "ref_cw_s".into(),
        "speedup".into(),
    ]);

    let mut points = Vec::new();
    for (i, &rber) in RBERS.iter().enumerate() {
        let words = corpus(&code, rber, count, opts.seed + i as u64);
        let fast = throughput(&words, window_ms, |w| {
            std::hint::black_box(decoder.decode(w));
        });
        let reference = throughput(&words, window_ms, |w| {
            std::hint::black_box(decoder.decode_reference(w));
        });
        let speedup = fast / reference;
        t.row(&[
            format!("{rber:.4}"),
            format!("{fast:.0}"),
            format!("{reference:.0}"),
            format!("{speedup:.2}x"),
        ]);
        points.push((rber, fast, reference, speedup));
    }

    // Word-packed syndrome-weight throughput (the RP module's primitive).
    let words = corpus(&code, 0.0085, count, opts.seed + 100);
    let syn_per_s = throughput(&words, window_ms, |w| {
        std::hint::black_box(code.syndrome_weight(w));
    });

    let speedup_geomean = rif_bench::geomean(&points.iter().map(|p| p.3).collect::<Vec<_>>());
    if !opts.csv {
        println!("\nsyndrome_weight: {syn_per_s:.0} codewords/s");
        println!("decode speedup geomean: {speedup_geomean:.2}x");
    }

    let json_points: Vec<String> = points
        .iter()
        .map(|(rber, fast, reference, speedup)| {
            format!(
                "    {{\"rber\": {rber}, \"fast_cw_per_s\": {fast:.1}, \
                 \"reference_cw_per_s\": {reference:.1}, \"speedup\": {speedup:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ldpc_decode_smoke\",\n  \"code\": \"small_test\",\n  \
         \"codewords_per_point\": {count},\n  \"decode\": [\n{}\n  ],\n  \
         \"decode_speedup_geomean\": {speedup_geomean:.3},\n  \
         \"syndrome_weight_cw_per_s\": {syn_per_s:.1}\n}}\n",
        json_points.join(",\n")
    );
    match std::fs::write(OUT_PATH, &json) {
        Ok(()) => {
            if !opts.csv {
                println!("wrote {OUT_PATH}");
            }
        }
        Err(e) => eprintln!("warning: could not write {OUT_PATH}: {e}"),
    }
}
