//! Fig. 17 — I/O bandwidth of every retry configuration over the eight
//! Table II workloads at 0K/1K/2K P/E cycles, normalized to SENC.
//!
//! Paper anchors (averages over the eight workloads): RiFSSD outperforms
//! SENC by 23.8 % / 47.4 % / 72.1 % at 0K / 1K / 2K, beats SWR by 61.2 %
//! and SWR+ by 50.0 % at 2K, and lands within 1.8 % of SSDzero.

use rif_bench::{
    geomean, run_paper_sim_observed, saturating_trace, HarnessOpts, TableWriter, PE_STAGES,
};
use rif_ssd::RetryKind;
use rif_workloads::profiles::PAPER_WORKLOADS;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(6_000, 600);
    let schemes = RetryKind::ALL;

    for pe in PE_STAGES {
        let t = TableWriter::new(opts.csv, &[8, 9, 9, 9, 9, 9, 9, 9]);
        t.heading(&format!("Fig. 17 @ {pe} P/E: bandwidth normalized to SENC"));
        let mut header = vec!["trace".to_string()];
        header.extend(schemes.iter().map(|s| s.label().to_string()));
        t.row(&header);

        let mut norm: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
        for wl in PAPER_WORKLOADS {
            let trace = saturating_trace(&wl, n_requests, opts.seed);
            let bws: Vec<f64> = schemes
                .iter()
                .map(|&s| {
                    let label = format!("{}-{}-{pe}", wl.name, s.label());
                    run_paper_sim_observed(&opts, &label, s, pe, &trace, opts.seed)
                        .io_bandwidth_mbps()
                })
                .collect();
            let senc = bws[0];
            let mut row = vec![wl.name.to_string()];
            for (i, bw) in bws.iter().enumerate() {
                norm[i].push(bw / senc);
                row.push(format!("{:.2}", bw / senc));
            }
            t.row(&row);
        }
        let mut summary = vec!["geomean".to_string()];
        for series in &norm {
            summary.push(format!("{:.2}", geomean(series)));
        }
        t.row(&summary);
        if !opts.csv {
            let rif_idx = schemes
                .iter()
                .position(|s| *s == RetryKind::Rif)
                .expect("rif");
            let zero_idx = schemes
                .iter()
                .position(|s| *s == RetryKind::Zero)
                .expect("zero");
            let rif = geomean(&norm[rif_idx]);
            let zero = geomean(&norm[zero_idx]);
            println!(
                "  -> RiFSSD over SENC: +{:.1}%  (paper: {});  gap to SSDzero: {:.1}%",
                (rif - 1.0) * 100.0,
                match pe {
                    0 => "+23.8%",
                    1000 => "+47.4%",
                    _ => "+72.1%",
                },
                (1.0 - rif / zero) * 100.0
            );
        }
    }
}
