//! Fig. 14 — RP accuracy with the two hardware approximations
//! (chunk-based prediction + syndrome pruning), against the exact
//! full-syndrome predictor of Fig. 11.
//!
//! Paper anchor: the approximations cost ≈0.4 points of accuracy
//! (99.1 % → 98.7 % above the capability).

use rif_bench::{HarnessOpts, TableWriter};
use rif_ldpc::QcLdpcCode;
use rif_odear::accuracy::{mean_accuracy_above, measure_accuracy, measure_accuracy_with};
use rif_odear::rp::ReadRetryPredictor;

fn main() {
    let opts = HarnessOpts::parse();
    let code = if opts.quick {
        QcLdpcCode::medium()
    } else {
        QcLdpcCode::paper()
    };
    let trials = opts.pick(200, 40);
    let capability = 0.0085;
    let rbers: Vec<f64> = (3..=33).step_by(2).map(|i| i as f64 * 0.001).collect();

    // With approximations: the RP hardware path — pruned syndrome on the
    // rearranged layout of a single chunk.
    let rp = ReadRetryPredictor::for_capability(&code, capability);
    let approx = measure_accuracy(&code, &rp, &rbers, trials, opts.seed, opts.threads);

    // Without: full syndrome weight of the page.
    let rho_full = code.expected_full_weight(capability).round() as usize;
    let exact = measure_accuracy_with(
        &code,
        |c, noisy| c.syndrome_weight(noisy) > rho_full,
        &rbers,
        trials,
        opts.seed + 1,
        opts.threads,
    );

    let t = TableWriter::new(opts.csv, &[10, 16, 16]);
    t.heading(&format!(
        "Fig. 14: RP accuracy with vs without approximations (rho_s = {}, {} trials/point)",
        rp.rho_s(),
        trials
    ));
    t.row(&["rber".into(), "with_approx".into(), "without".into()]);
    for (a, e) in approx.iter().zip(&exact) {
        t.row(&[
            format!("{:.3}", a.rber),
            format!("{:.3}", a.accuracy),
            format!("{:.3}", e.accuracy),
        ]);
    }
    if !opts.csv {
        println!(
            "\nmean accuracy above capability: with approximations {:.1}% (paper 98.7%), \
             without {:.1}% (paper 99.1%)",
            mean_accuracy_above(&approx, capability) * 100.0,
            mean_accuracy_above(&exact, capability) * 100.0
        );
    }
}
