//! Ablation — RP chunk size (§V-A1).
//!
//! The paper picks a 4-KiB chunk: smaller chunks shrink tPRED but compute
//! fewer syndromes, widening the prediction's uncertainty band around the
//! capability; a full-page check quadruples the latency for little
//! accuracy. This sweep quantifies the trade-off on the boundary width
//! and on end-to-end RiFSSD bandwidth.

use rif_bench::{saturating_trace, HarnessOpts, TableWriter};
use rif_events::SimDuration;
use rif_odear::rp::ReadRetryPredictor;
use rif_odear::RpBehavior;
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::WorkloadProfile;

/// RBER where the retry probability crosses `target`.
fn crossing(rp: &RpBehavior, target: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 0.05f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if rp.retry_probability(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    let opts = HarnessOpts::parse();
    let wl = WorkloadProfile::by_name("Ali124").expect("table workload");
    let trace = saturating_trace(&wl, opts.pick(4_000, 500), opts.seed);

    let t = TableWriter::new(opts.csv, &[10, 10, 8, 12, 12, 10]);
    t.heading("Ablation: RP chunk size (RiFSSD @ 1K P/E, Ali124)");
    t.row(&[
        "chunk_kib".into(),
        "syndromes".into(),
        "tpred_us".into(),
        "band_width".into(),
        "bandwidth".into(),
        "misses".into(),
    ]);
    for chunk_kib in [1usize, 2, 4, 16] {
        // A k-KiB chunk reads k/4 of each segment: t·k/4 complete
        // syndromes (256 per KiB for the paper's t = 1024 code).
        let syndromes = 1024 * chunk_kib / 4;
        let rp = RpBehavior::calibrated(syndromes, 34, 0.0085);
        let tpred =
            ReadRetryPredictor::prediction_latency(chunk_kib * 1024 * 8, SimDuration::from_us(10));
        // Uncertainty band: RBER span where the verdict is a coin flip.
        let band = crossing(&rp, 0.9) - crossing(&rp, 0.1);

        let mut cfg = SsdConfig::paper(RetryKind::Rif, 1000);
        cfg.rp = rp;
        cfg.timing.t_pred = tpred;
        cfg.seed = opts.seed;
        let report = Simulator::new(cfg).run(&trace);
        t.row(&[
            chunk_kib.to_string(),
            syndromes.to_string(),
            format!("{:.2}", tpred.as_us()),
            format!("{:.5}", band),
            format!("{:.0}", report.io_bandwidth_mbps()),
            report.decode_failures.to_string(),
        ]);
    }
    if !opts.csv {
        println!("\n(band_width = RBER span where RP's verdict is uncertain; misses =");
        println!(" pages that reached the off-chip decoder and failed there)");
    }
}
