//! Fig. 11 — validation of RP against the real LDPC decoder *without*
//! the hardware approximations: the predictor thresholds the full
//! syndrome weight of each page.
//!
//! Paper anchors: ≈99.1 % prediction accuracy for RBERs above the
//! correction capability, dropping to ≈50 % exactly at the capability.

use rif_bench::{HarnessOpts, TableWriter};
use rif_ldpc::QcLdpcCode;
use rif_odear::accuracy::{mean_accuracy_above, measure_accuracy_with};

fn main() {
    let opts = HarnessOpts::parse();
    let code = if opts.quick {
        QcLdpcCode::medium()
    } else {
        QcLdpcCode::paper()
    };
    let trials = opts.pick(200, 40);
    // The capability of *this* code, so the boundary effect shows at the
    // right abscissa (the paper grid spans 0.003–0.033).
    let capability = 0.0085;
    let rho_full = code.expected_full_weight(capability).round() as usize;
    let rbers: Vec<f64> = (3..=33).step_by(2).map(|i| i as f64 * 0.001).collect();

    let t = TableWriter::new(opts.csv, &[10, 12, 14, 14]);
    t.heading(&format!(
        "Fig. 11: RP accuracy, full syndrome weight (rho = {rho_full}, {trials} trials/point)"
    ));
    t.row(&[
        "rber".into(),
        "accuracy".into(),
        "false_retry".into(),
        "missed_retry".into(),
    ]);
    let points = measure_accuracy_with(
        &code,
        |c, noisy| c.syndrome_weight(noisy) > rho_full,
        &rbers,
        trials,
        opts.seed,
        opts.threads,
    );
    for p in &points {
        t.row(&[
            format!("{:.3}", p.rber),
            format!("{:.3}", p.accuracy),
            format!("{:.3}", p.false_retry_rate),
            format!("{:.3}", p.missed_retry_rate),
        ]);
    }
    if !opts.csv {
        println!(
            "\nmean accuracy above the capability: {:.1}%  (paper: 99.1%)",
            mean_accuracy_above(&points, capability) * 100.0
        );
    }
}
