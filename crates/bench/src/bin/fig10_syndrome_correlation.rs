//! Fig. 10 — correlation between RBER and syndrome weight, and the
//! derivation of the RP correctability threshold ρs.
//!
//! Paper anchor: the syndrome weight grows monotonically with RBER; ρs is
//! set to the weight at the correction-capability RBER (0.0085).

use rif_bench::{HarnessOpts, TableWriter};
use rif_ldpc::analysis::{rho_s, syndrome_sweep};
use rif_ldpc::QcLdpcCode;

fn main() {
    let opts = HarnessOpts::parse();
    let code = if opts.quick {
        QcLdpcCode::medium()
    } else {
        QcLdpcCode::paper()
    };
    let trials = opts.pick(100, 25);
    let rbers: Vec<f64> = (1..=16).map(|i| i as f64 * 0.001).collect();

    let t = TableWriter::new(opts.csv, &[10, 14, 14, 14, 14]);
    t.heading(&format!(
        "Fig. 10: RBER vs syndrome weight (t = {}, {} trials/point)",
        code.matrix().t(),
        trials
    ));
    t.row(&[
        "rber".into(),
        "full_weight".into(),
        "pruned_wt".into(),
        "analytic_full".into(),
        "analytic_pruned".into(),
    ]);
    for p in syndrome_sweep(&code, &rbers, trials, opts.seed, opts.threads) {
        t.row(&[
            format!("{:.3}", p.rber),
            format!("{:.1}", p.avg_full_weight),
            format!("{:.1}", p.avg_pruned_weight),
            format!("{:.1}", code.expected_full_weight(p.rber)),
            format!("{:.1}", code.expected_pruned_weight(p.rber)),
        ]);
    }
    if !opts.csv {
        println!(
            "\nrho_s (pruned weight at the 0.0085 capability): {}",
            rho_s(&code, 0.0085)
        );
        println!(
            "full-syndrome equivalent: {:.0}  (the paper reports 3830 for its \
             undisclosed syndrome accounting; the calibration rule is identical)",
            code.expected_full_weight(0.0085)
        );
    }
}
