//! Lifetime sweep — the seven-scheme retry comparison re-run as the
//! device ages *while serving*, with the controller's read thresholds
//! either taken from the oracle characterization tables or learned
//! online from decode feedback.
//!
//! Each lifetime stage pairs a P/E wear level with a drift-clock rate:
//! within a stage the drift clock converts simulated serving time into
//! extra retention days, so later reads in the same run see older data
//! than earlier ones — the threshold drift the learner has to chase.
//! Every (stage, scheme) cell runs twice, `oracle` vs `learned`, and the
//! learned runs also report the learner's mean absolute V_REF estimate
//! error against the oracle's optimal offset.
//!
//! ```text
//! lifetime_sweep [--quick] [--csv] [--seed N] [--schemes all|ci]
//!                [--check-envelope FILE] [--write-envelope FILE]
//! ```
//!
//! `--check-envelope` compares learned-mode retry activity against a
//! checked-in min/max envelope (see `results/lifetime_envelope.csv`) and
//! exits 1 on any excursion; `--write-envelope` regenerates that file
//! (review the diff before committing it). Runs are deterministic for a
//! fixed seed, so CI uses the envelope as a cheap behavioural pin.

use std::fmt::Write as _;

use rif_bench::{HarnessOpts, TableWriter};
use rif_ssd::{DriftClock, LearnerConfig, LearningMode, RetryKind, Simulator, SsdConfig};
use rif_workloads::SynthConfig;

/// One lifetime stage: wear level plus in-run drift acceleration.
struct Stage {
    pe_cycles: u32,
    days_per_sec: f64,
}

const STAGES: [Stage; 3] = [
    Stage {
        pe_cycles: 0,
        days_per_sec: 0.0,
    },
    Stage {
        pe_cycles: 1000,
        days_per_sec: 800.0,
    },
    Stage {
        pe_cycles: 2000,
        days_per_sec: 1600.0,
    },
];

/// The two-scheme subset the CI smoke gate sweeps.
const CI_SCHEMES: [RetryKind; 2] = [RetryKind::SwiftReadPlus, RetryKind::Rif];

struct CellResult {
    stage: String,
    scheme: &'static str,
    mode: &'static str,
    bandwidth_mbps: f64,
    decode_failures: u64,
    in_die_retries: u64,
    learner_err: Option<f64>,
    learner_updates: u64,
}

fn run_cell(
    stage: &Stage,
    scheme: RetryKind,
    learned: bool,
    n_requests: usize,
    seed: u64,
) -> CellResult {
    let trace = SynthConfig {
        read_ratio: 0.9,
        cold_read_ratio: 0.6,
        ..SynthConfig::default()
    }
    .generate(n_requests, seed);
    let mut cfg = SsdConfig::small(scheme, stage.pe_cycles);
    cfg.seed = seed;
    cfg.queue_depth = 16;
    cfg.drift = DriftClock {
        days_per_sec: stage.days_per_sec,
        pe_per_sec: 0.0,
    };
    if learned {
        cfg.learning = LearningMode::Learned(LearnerConfig::default_paper());
    }
    let report = Simulator::new(cfg).run(&trace);
    CellResult {
        stage: stage_label(stage),
        scheme: scheme.label(),
        mode: if learned { "learned" } else { "oracle" },
        bandwidth_mbps: report.io_bandwidth_mbps(),
        decode_failures: report.decode_failures,
        in_die_retries: report.in_die_retries,
        learner_err: report.learner.map(|l| l.mean_abs_error),
        learner_updates: report.learner.map(|l| l.updates).unwrap_or(0),
    }
}

fn stage_label(stage: &Stage) -> String {
    format!("pe{}-d{}", stage.pe_cycles, stage.days_per_sec as u64)
}

/// Envelope line: `stage,scheme,metric,min,max`.
fn envelope_rows(results: &[CellResult]) -> String {
    let mut s = String::from("# stage,scheme,metric,min,max (learned-mode retry activity)\n");
    for r in results.iter().filter(|r| r.mode == "learned") {
        for (metric, v) in [
            ("decode_failures", r.decode_failures),
            ("in_die_retries", r.in_die_retries),
        ] {
            // ±40 % plus a small absolute slack on both sides: wide
            // enough to absorb intentional tuning of the learner
            // constants (including runs that do strictly better, down
            // to zero), tight enough to catch a broken learned read
            // path (e.g. 10× retries).
            let lo = ((v as f64 * 0.6).floor() as u64).saturating_sub(8);
            let hi = (v as f64 * 1.4).ceil() as u64 + 8;
            let _ = writeln!(s, "{},{},{metric},{lo},{hi}", r.stage, r.scheme);
        }
    }
    s
}

fn check_envelope(path: &str, results: &[CellResult]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut checked = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(format!("{path}:{}: expected 5 fields", ln + 1));
        }
        let (stage, scheme, metric) = (fields[0], fields[1], fields[2]);
        let lo: u64 = fields[3]
            .parse()
            .map_err(|_| format!("{path}:{}: bad min", ln + 1))?;
        let hi: u64 = fields[4]
            .parse()
            .map_err(|_| format!("{path}:{}: bad max", ln + 1))?;
        let Some(r) = results
            .iter()
            .find(|r| r.mode == "learned" && r.stage == stage && r.scheme == scheme)
        else {
            // Envelope rows for stages/schemes outside this run's subset
            // are ignored, so one checked-in file covers quick and full.
            continue;
        };
        let v = match metric {
            "decode_failures" => r.decode_failures,
            "in_die_retries" => r.in_die_retries,
            other => return Err(format!("{path}:{}: unknown metric {other}", ln + 1)),
        };
        if !(lo..=hi).contains(&v) {
            return Err(format!(
                "{stage}/{scheme}/{metric} = {v} outside envelope [{lo}, {hi}]"
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("{path}: no envelope rows matched this run"));
    }
    println!("envelope ok: {checked} learned-mode bounds hold");
    Ok(())
}

fn main() {
    // Split off the sweep-specific flags, hand the rest to the shared
    // harness parser.
    let mut check_path: Option<String> = None;
    let mut write_path: Option<String> = None;
    let mut ci_schemes = false;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check-envelope" => {
                check_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--check-envelope needs a file");
                    std::process::exit(2);
                }))
            }
            "--write-envelope" => {
                write_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--write-envelope needs a file");
                    std::process::exit(2);
                }))
            }
            "--schemes" => match args.next().as_deref() {
                Some("all") => ci_schemes = false,
                Some("ci") => ci_schemes = true,
                _ => {
                    eprintln!("--schemes needs all|ci");
                    std::process::exit(2);
                }
            },
            other => rest.push(other.to_string()),
        }
    }
    let opts = match HarnessOpts::parse_from(rest) {
        Ok(o) => o,
        Err(_) => {
            eprintln!(
                "usage: lifetime_sweep [--quick] [--csv] [--seed N] [--schemes all|ci]\n\
                 \x20                     [--check-envelope FILE] [--write-envelope FILE]"
            );
            std::process::exit(2);
        }
    };
    let n_requests = opts.pick(2_000, 250);
    let schemes: &[RetryKind] = if ci_schemes {
        &CI_SCHEMES
    } else {
        &RetryKind::ALL
    };

    let mut results = Vec::new();
    let t = TableWriter::new(opts.csv, &[12, 8, 8, 10, 8, 8, 10, 8]);
    t.heading("Lifetime sweep: oracle vs learned thresholds as drift advances");
    t.row(&[
        "stage".into(),
        "scheme".into(),
        "mode".into(),
        "bw_mbps".into(),
        "dec_fail".into(),
        "in_die".into(),
        "learn_err".into(),
        "updates".into(),
    ]);
    for stage in &STAGES {
        for &scheme in schemes {
            for learned in [false, true] {
                let r = run_cell(stage, scheme, learned, n_requests, opts.seed);
                t.row(&[
                    r.stage.clone(),
                    r.scheme.to_string(),
                    r.mode.to_string(),
                    format!("{:.1}", r.bandwidth_mbps),
                    r.decode_failures.to_string(),
                    r.in_die_retries.to_string(),
                    r.learner_err
                        .map(|e| format!("{e:.4}"))
                        .unwrap_or_else(|| "-".into()),
                    r.learner_updates.to_string(),
                ]);
                results.push(r);
            }
        }
    }

    if let Some(path) = write_path {
        let rows = envelope_rows(&results);
        if let Err(e) = std::fs::write(&path, rows) {
            eprintln!("cannot write envelope {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote envelope to {path}");
    }
    if let Some(path) = check_path {
        if let Err(e) = check_envelope(&path, &results) {
            eprintln!("lifetime_sweep: envelope check failed: {e}");
            std::process::exit(1);
        }
    }
}
