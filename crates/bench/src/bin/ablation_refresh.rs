//! Ablation — refresh interval (§IV-B footnote 3).
//!
//! The paper assumes a monthly refresh bounds retention to 30 days. A
//! shorter interval is an *alternative* mitigation for read-retry: it
//! truncates the cold-age distribution before RBER crosses the capability
//! — at the cost of write bandwidth and P/E endurance. This sweep shows
//! why on-die early retry is the better deal: RiF gets SSDzero-class
//! bandwidth at *any* refresh interval, while the reactive schemes need
//! aggressive (endurance-hostile) refresh to approach it.

use rif_bench::{saturating_trace, HarnessOpts, TableWriter};
use rif_flash::geometry::FlashGeometry;
use rif_flash::rber::ErrorModel;
use rif_ssd::refresh::RefreshPolicy;
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let wl = WorkloadProfile::by_name("Ali124").expect("table workload");
    let trace = saturating_trace(&wl, opts.pick(4_000, 500), opts.seed);
    let model = ErrorModel::calibrated();
    let g = FlashGeometry::paper();

    let t = TableWriter::new(opts.csv, &[10, 8, 12, 12, 14, 12]);
    t.heading("Ablation: refresh interval (Ali124 @ 1K P/E)");
    t.row(&[
        "interval".into(),
        "scheme".into(),
        "bandwidth".into(),
        "cold_retry".into(),
        "refresh_MB/s".into(),
        "PE/year".into(),
    ]);
    for days in [7.0f64, 14.0, 30.0, 60.0] {
        let policy = RefreshPolicy::new(days);
        let cold_retry = policy.cold_retry_fraction(&model, 1000, 0.0085);
        for scheme in [RetryKind::Sentinel, RetryKind::Rif] {
            let mut cfg = SsdConfig::paper(scheme, 1000);
            cfg.refresh_days = days;
            cfg.seed = opts.seed;
            let report = Simulator::new(cfg).run(&trace);
            t.row(&[
                format!("{days:.0}d"),
                scheme.label().into(),
                format!("{:.0}", report.io_bandwidth_mbps()),
                format!("{:.2}", cold_retry),
                format!("{:.1}", policy.write_bandwidth(&g) / 1e6),
                format!("{:.1}", policy.pe_cycles_per_year()),
            ]);
        }
    }
    if !opts.csv {
        println!("\nA 7-day refresh rescues SENC by brute force — at 12x the refresh");
        println!("writes and 52 P/E cycles/year of pure wear. RiF needs neither.");
    }
}
