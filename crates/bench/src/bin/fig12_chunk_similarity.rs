//! Fig. 12 — intra-page RBER similarity among fixed-size chunks of a
//! 16-KiB page, the basis of RP's chunk-based prediction (§V-A1).
//!
//! Paper anchors: the maximum (RBERmax − RBERmin)/RBERmax across 4-KiB
//! chunks stays small (≈4.5 %-scale at heavy stress), growing as chunks
//! shrink (≈3× worse at 1 KiB) — data randomization spreads errors
//! uniformly, but smaller samples are noisier.

use rif_bench::{HarnessOpts, TableWriter};
use rif_flash::characterize::chunk_similarity;
use rif_flash::rber::ErrorModel;

fn main() {
    let opts = HarnessOpts::parse();
    let model = ErrorModel::calibrated();
    let pe_list = [0u32, 1000, 2000];
    let days = [1u32, 3, 7, 14, 21, 28];
    let chunk_kibs = [4usize, 2, 1];
    let pages = opts.pick(200, 30);

    let rows = chunk_similarity(&model, &pe_list, &days, &chunk_kibs, pages, opts.seed);

    let t = TableWriter::new(opts.csv, &[6, 6, 10, 12]);
    t.heading(&format!(
        "Fig. 12: max (RBERmax-RBERmin)/RBERmax among chunks ({pages} pages/point)"
    ));
    t.row(&[
        "pe".into(),
        "day".into(),
        "chunk_kib".into(),
        "max_ratio".into(),
    ]);
    for r in &rows {
        t.row(&[
            r.pe_cycles.to_string(),
            r.day.to_string(),
            r.chunk_kib.to_string(),
            format!("{:.3}", r.max_ratio),
        ]);
    }
    if !opts.csv {
        // Summarize the chunk-size trend where prediction matters: the
        // stressed conditions whose RBER approaches the capability. (At
        // fresh conditions chunks hold a handful of errors and the ratio
        // degenerates — a chunk with zero errors yields ratio 1.0.)
        for &kib in &chunk_kibs {
            let worst = rows
                .iter()
                .filter(|r| r.chunk_kib == kib && r.pe_cycles >= 1000 && r.day >= 7)
                .map(|r| r.max_ratio)
                .fold(0.0f64, f64::max);
            println!(
                "worst-case ratio at {kib}-KiB chunks (>=1K P/E, >=7 days): {:.1}%",
                worst * 100.0
            );
        }
        println!("\n4-KiB chunks track the page RBER closely enough for prediction;");
        println!("1-KiB chunks roughly triple the spread — the paper picks 4 KiB.");
    }
}
