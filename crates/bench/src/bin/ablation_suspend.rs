//! Extension — program/erase suspend-resume.
//!
//! On mixed workloads, reads queue behind 400-µs programs (and
//! 3.5-ms erases); enterprise SSDs let reads *suspend* the long
//! operation. This sweep shows the feature is orthogonal to RiF: suspend
//! fixes die-level queueing for write-heavy traces, RiF fixes
//! channel/ECC waste for read-heavy ones — and the combination stacks.

use rif_bench::{HarnessOpts, TableWriter};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(4_000, 500);

    let t = TableWriter::new(opts.csv, &[8, 9, 9, 12, 12, 12]);
    t.heading("Extension: read suspend-resume (@1K P/E)");
    t.row(&[
        "trace".into(),
        "scheme".into(),
        "suspend".into(),
        "bandwidth".into(),
        "p99_us".into(),
        "p99.9_us".into(),
    ]);
    for name in ["Ali2", "Ali124"] {
        // Sub-saturation load: read latency then reflects device waits
        // (programs ahead of reads on a die), not backlog queueing.
        let wl = WorkloadProfile::by_name(name).expect("table workload");
        let mut cfg_wl = wl.config();
        cfg_wl.mean_interarrival_ns = 20_000.0;
        let trace = cfg_wl.generate(n_requests, opts.seed);
        for scheme in [RetryKind::Sentinel, RetryKind::Rif] {
            for suspend in [false, true] {
                let mut cfg = SsdConfig::paper(scheme, 1000);
                cfg.read_suspend = suspend;
                cfg.seed = opts.seed;
                let report = Simulator::new(cfg).run(&trace);
                let p = |q: f64| {
                    report
                        .read_latency
                        .percentile(q)
                        .map(|d| d.as_us())
                        .unwrap_or(0.0)
                };
                t.row(&[
                    name.into(),
                    scheme.label().into(),
                    if suspend { "on" } else { "off" }.into(),
                    format!("{:.0}", report.io_bandwidth_mbps()),
                    format!("{:.0}", p(99.0)),
                    format!("{:.0}", p(99.9)),
                ]);
            }
        }
    }
    if !opts.csv {
        println!("\nSuspend helps the write-heavy trace's read tail; RiF helps the");
        println!("read-heavy trace's bandwidth. The mechanisms compose.");
    }
}
