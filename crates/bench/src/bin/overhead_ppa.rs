//! §VI-C — power / area / energy overheads of the RP module, tied to the
//! retry rates an actual simulation produces.
//!
//! Paper anchors: 0.012 mm² and 1.28 mW at 130 nm / 100 MHz; 3.2 nJ per
//! prediction vs 907 nJ saved per avoided unrecoverable-page transfer.

use rif_bench::{run_paper_sim, saturating_trace, HarnessOpts, PE_STAGES};
use rif_odear::PpaModel;
use rif_ssd::RetryKind;
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let ppa = PpaModel::paper();
    println!("== §VI-C: RP module PPA ==");
    println!(
        "area: {:.3} mm²  ({:.4}% of a {:.0} mm² die)",
        ppa.rp_area_mm2,
        ppa.area_overhead_fraction() * 100.0,
        ppa.die_area_mm2
    );
    println!("power: {:.2} mW @ 130 nm, 100 MHz", ppa.rp_power_mw);
    println!(
        "energy: {:.1} nJ/prediction vs {:.0} nJ/avoided transfer",
        ppa.prediction_energy_nj, ppa.transfer_energy_nj
    );
    println!(
        "break-even uncorrectable-read rate: {:.3}%",
        ppa.break_even_retry_rate() * 100.0
    );
    println!("\nchunk-size scaling of prediction energy:");
    for kib in [1usize, 2, 4, 16] {
        println!(
            "  {kib:>2}-KiB chunk: {:.1} nJ",
            ppa.prediction_energy_for_chunk(kib)
        );
    }

    // Tie to the simulator: the uncorrectable-transfer rate SSDone
    // exhibits is the rate at which RiF's RP refunds transfers.
    let wl = WorkloadProfile::by_name("Ali124").expect("table workload");
    let n_requests = opts.pick(4_000, 500);
    let trace = saturating_trace(&wl, n_requests, opts.seed);
    println!("\nnet energy over the Ali124 run (per simulated page read):");
    for pe in PE_STAGES {
        let r = run_paper_sim(RetryKind::IdealOne, pe, &trace, opts.seed);
        let rate = r.uncor_page_transfers as f64 / r.page_senses.max(1) as f64;
        let net = ppa.net_energy_nj(r.page_senses, rate) / r.page_senses.max(1) as f64;
        println!(
            "  {pe:>4} P/E: uncorrectable rate {:>5.1}% -> net {:+.1} nJ/read ({})",
            rate * 100.0,
            net,
            if net < 0.0 {
                "RiF saves energy"
            } else {
                "RiF costs energy"
            }
        );
    }
}
