//! Standalone trace-invariant checker: validates one or more JSONL trace
//! files emitted by the simulator's `--trace-out` flag.
//!
//! Usage: `trace_check FILE...` — exits 0 when every file parses and
//! satisfies all engine invariants, 1 otherwise. The CI trace gate runs
//! this over the logs of a quick `fig19_latency_cdf --trace-out` run.

use rif_ssd::tracecheck::TraceChecker;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() || files.iter().any(|f| f == "--help" || f == "-h") {
        eprintln!("usage: trace_check FILE...");
        std::process::exit(if files.is_empty() { 2 } else { 0 });
    }
    let mut failed = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed += 1;
                continue;
            }
        };
        match TraceChecker::check_jsonl(&text) {
            Err(e) => {
                eprintln!("{path}: malformed: {e}");
                failed += 1;
            }
            Ok(violations) if !violations.is_empty() => {
                eprintln!("{path}: {} invariant violation(s):", violations.len());
                for v in &violations {
                    eprintln!("  {v}");
                }
                failed += 1;
            }
            Ok(_) => {
                println!("{path}: ok ({} lines)", text.lines().count());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} of {} file(s) failed", files.len());
        std::process::exit(1);
    }
}
