//! Table I — the evaluated SSD configuration, printed from the live
//! `SsdConfig` so any drift between documentation and simulator is
//! impossible.

use rif_bench::HarnessOpts;
use rif_ssd::{RetryKind, SsdConfig};

fn main() {
    let opts = HarnessOpts::parse();
    let c = SsdConfig::paper(RetryKind::Rif, 0);
    let g = c.geometry;
    let t = c.timing;
    let rows: Vec<(&str, String)> = vec![
        (
            "configuration",
            format!(
                "{:.1}-TiB total; {} channels; {} dies/channel; {} planes/die; {} blocks/plane; {} pages/block",
                g.capacity_bytes() as f64 / (1u64 << 40) as f64,
                g.channels,
                g.dies_per_channel,
                g.planes_per_die,
                g.blocks_per_plane,
                g.pages_per_block
            ),
        ),
        (
            "latencies (us)",
            format!(
                "tR = {:.0}; tPROG = {:.0}; tBERS = {:.0}; tDMA = {:.0}; tECC = {:.0} to {:.0}; tPRED = {:.1}",
                t.t_r.as_us(),
                t.t_prog.as_us(),
                t.t_bers.as_us(),
                t.t_dma_page.as_us(),
                c.ecc.t_ecc(0.0).as_us(),
                c.ecc.t_ecc_failure().as_us(),
                t.t_pred.as_us()
            ),
        ),
        (
            "bandwidth",
            format!(
                "{:.1} GB/s external I/O (PCIe 4.0, 4-lane); {:.1} GB/s channel I/O",
                c.host_bw_bytes_per_sec as f64 / 1e9,
                16.0 * 1024.0 / t.t_dma_page.as_us() / 1e3
            ),
        ),
        (
            "ECC engine",
            format!(
                "4-KiB LDPC with {:.4} correction capability; {}-page channel buffer",
                c.ecc.correction_capability(),
                c.ecc_buffer_pages
            ),
        ),
        (
            "RP module",
            format!(
                "rho_s = {}; prediction over one 4-KiB chunk in {:.1} us",
                c.rp.rho_s(),
                t.t_pred.as_us()
            ),
        ),
    ];
    if opts.csv {
        for (k, v) in rows {
            println!("{k},{}", v.replace(',', ";"));
        }
    } else {
        println!("== Table I: evaluated SSD configuration ==");
        for (k, v) in rows {
            println!("{k:>16} | {v}");
        }
    }
}
