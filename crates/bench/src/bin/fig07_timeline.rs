//! Figs. 7 & 8(c) — the 256-KiB worked example: one sequential host read
//! split into four 64-KiB multi-plane commands A–D on a 2-die channel,
//! with A and B requiring a read-retry.
//!
//! The timeline printed per scheme is reconstructed from the run's real
//! trace: each resource row (die, channel, ECC engine) lists the spans
//! the engine actually emitted, and the trace is validated against the
//! engine invariants before being displayed.
//!
//! Paper anchors: SSDzero 252 µs, SSDone 418 µs (+166), RiF 292 µs.

use rif_bench::{trace_file, HarnessOpts, TableWriter};
use rif_events::trace::{JsonlSink, SharedBuf, TraceRecord};
use rif_events::SimTime;
use rif_ssd::timeline::example_256k_setup;
use rif_ssd::tracecheck::TraceChecker;
use rif_ssd::{RetryKind, Simulator};

/// One completed span on an exclusive resource.
struct ResSpan {
    res: String,
    name: String,
    begin: SimTime,
    end: SimTime,
}

/// Extracts the resource-occupying spans of a parsed trace, in begin
/// order per resource.
fn resource_spans(records: &[TraceRecord]) -> Vec<ResSpan> {
    let mut open: std::collections::BTreeMap<u64, (String, String, SimTime)> = Default::default();
    let mut out = Vec::new();
    for r in records {
        match r {
            TraceRecord::SpanBegin {
                t,
                name,
                id,
                res: Some(res),
                ..
            } => {
                open.insert(*id, (res.clone(), name.clone(), *t));
            }
            TraceRecord::SpanEnd { t, id } => {
                if let Some((res, name, begin)) = open.remove(id) {
                    out.push(ResSpan {
                        res,
                        name,
                        begin,
                        end: *t,
                    });
                }
            }
            _ => {}
        }
    }
    out.sort_by(|a, b| (a.res.as_str(), a.begin).cmp(&(b.res.as_str(), b.begin)));
    out
}

/// Prints the per-resource timeline rebuilt from the trace.
fn print_timeline(scheme: RetryKind, spans: &[ResSpan]) {
    println!(
        "\n-- {} timeline (µs, from the run's trace) --",
        scheme.label()
    );
    let mut cur = "";
    let mut line = String::new();
    for s in spans {
        if s.res == "host" {
            continue; // negligible in this scenario (see example_256k_setup)
        }
        if s.res != cur {
            if !line.is_empty() {
                println!("{line}");
            }
            cur = &s.res;
            line = format!("  {:<7}", s.res);
        }
        line.push_str(&format!(
            " {}[{:.1}-{:.1}]",
            s.name,
            s.begin.as_us(),
            s.end.as_us()
        ));
    }
    if !line.is_empty() {
        println!("{line}");
    }
}

fn main() {
    let opts = HarnessOpts::parse();
    let t = TableWriter::new(opts.csv, &[8, 12, 12, 12, 14]);
    t.heading("Figs. 7/8: 256-KiB read on a 2-die channel, A and B need a retry");
    t.row(&[
        "scheme".into(),
        "total_us".into(),
        "paper_us".into(),
        "uncor_pgs".into(),
        "in_die_retry".into(),
    ]);
    for (scheme, paper) in [
        (RetryKind::Zero, 252.0),
        (RetryKind::IdealOne, 418.0),
        (RetryKind::Rif, 292.0),
    ] {
        let (cfg, trace) = example_256k_setup(scheme);
        let buf = SharedBuf::new();
        let mut sim = Simulator::new(cfg).with_tracer(Box::new(JsonlSink::new(buf.clone())));
        if opts.metrics {
            sim = sim.with_metrics();
        }
        let report = sim.run(&trace);
        let text = buf.contents();
        if let Some(prefix) = &opts.trace_out {
            let path = trace_file(prefix, scheme.label());
            std::fs::write(&path, &text)
                .unwrap_or_else(|e| panic!("cannot write trace file {path}: {e}"));
        }
        let records = TraceRecord::parse_jsonl(&text).expect("emitted trace parses");
        let violations = TraceChecker::check(&records);
        if !violations.is_empty() {
            eprintln!(
                "{}: {} invariant violation(s):",
                scheme.label(),
                violations.len()
            );
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        t.row(&[
            scheme.label().into(),
            format!("{:.1}", report.makespan.as_us()),
            format!("{paper:.0}"),
            report.uncor_page_transfers.to_string(),
            report.in_die_retries.to_string(),
        ]);
        if !opts.csv {
            print_timeline(scheme, &resource_spans(&records));
        }
        if opts.metrics {
            if let Some(m) = &report.metrics {
                for line in m.lines() {
                    println!("# metric {} {line}", scheme.label());
                }
            }
        }
    }
    if !opts.csv {
        println!("\nSSDone pays the failed transfers and their 20-µs hopeless decodes;");
        println!("RiF converts both retries into one extra tR inside each die.");
    }
}
