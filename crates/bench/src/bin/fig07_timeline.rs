//! Figs. 7 & 8(c) — the 256-KiB worked example: one sequential host read
//! split into four 64-KiB multi-plane commands A–D on a 2-die channel,
//! with A and B requiring a read-retry.
//!
//! Paper anchors: SSDzero 252 µs, SSDone 418 µs (+166), RiF 292 µs.

use rif_bench::{HarnessOpts, TableWriter};
use rif_ssd::timeline::example_256k;
use rif_ssd::RetryKind;

fn main() {
    let opts = HarnessOpts::parse();
    let t = TableWriter::new(opts.csv, &[8, 12, 12, 12, 14]);
    t.heading("Figs. 7/8: 256-KiB read on a 2-die channel, A and B need a retry");
    t.row(&[
        "scheme".into(),
        "total_us".into(),
        "paper_us".into(),
        "uncor_pgs".into(),
        "in_die_retry".into(),
    ]);
    for (scheme, paper) in [
        (RetryKind::Zero, 252.0),
        (RetryKind::IdealOne, 418.0),
        (RetryKind::Rif, 292.0),
    ] {
        let r = example_256k(scheme);
        t.row(&[
            scheme.label().into(),
            format!("{:.1}", r.total.as_us()),
            format!("{paper:.0}"),
            r.report.uncor_page_transfers.to_string(),
            r.report.in_die_retries.to_string(),
        ]);
    }
    if !opts.csv {
        println!("\nSSDone pays the failed transfers and their 20-µs hopeless decodes;");
        println!("RiF converts both retries into one extra tR inside each die.");
    }
}
