//! Hybrid-flash sweep — all seven retry schemes on TLC vs QLC vs hybrid
//! (SLC cache over QLC capacity), with background traffic off and on.
//!
//! The tentpole claim of DESIGN §14: RiF's early-retry win grows where
//! retries are costlier (denser cells) and the die is busier (background
//! GC / migration / refresh traffic). Each cell runs the same foreground
//! load through `SsdConfig.hybrid`; "bg on" cells enable the background
//! scheduler with a refresh interval below the cold-age horizon, so
//! SLC→QLC migrations and refresh rewrites contend with the same
//! foreground reads.
//!
//! Outputs: the table on stdout and in `results/hybrid_sweep.txt`, plus
//! machine-readable `BENCH_hybrid.json` with per-cell latencies and
//! RiF's relative win per device config. Exits non-zero unless the win
//! under QLC+background is strictly larger than under TLC-only — the
//! acceptance gate CI runs in `--quick` mode.

use rif_bench::{geomean, run_observed, HarnessOpts};
use rif_ssd::hybrid::{HybridConfig, MigrationPolicy};
use rif_ssd::{RetryKind, SimReport, SsdConfig};
use rif_workloads::{SynthConfig, Trace};

const OUT_JSON: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hybrid.json");
const OUT_TXT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/hybrid_sweep.txt"
);

const PE: u32 = 1500;

/// The device configs swept: pure TLC, all-QLC, and the SLC/QLC hybrid.
const MODES: [&str; 3] = ["tlc", "qlc", "hybrid"];

/// RiF's win is measured against the realistic baselines (the ideal
/// schemes bound it from above by construction).
const BASELINES: [RetryKind; 4] = [
    RetryKind::Sentinel,
    RetryKind::SwiftRead,
    RetryKind::SwiftReadPlus,
    RetryKind::RpSsd,
];

fn device(mode: &str, bg: bool) -> Option<HybridConfig> {
    let mut h = match mode {
        "tlc" => return None,
        "qlc" => HybridConfig::qlc(),
        "hybrid" => HybridConfig::slc_qlc(),
        other => panic!("unknown mode {other}"),
    };
    if bg {
        // Surface the background machinery inside a short run: drain
        // migrations aggressively (Fifo at these watermarks) and put the
        // refresh interval just below the cold-age horizon (30 days) so
        // the oldest touched cold slots come due for a rewrite — a
        // finite refresh stream, bounded per tick well below the dies'
        // drain rate. (Much shorter intervals turn the sweep into a
        // refresh benchmark: the rewrites reset so many cold slots that
        // the retry-heavy baselines gain more from the error reduction
        // than they lose to die contention.)
        h.migration = MigrationPolicy::Fifo;
        // The small geometry's SLC cache holds 64Ki slots; a read-heavy
        // 1.5k-request trace writes only a few dozen, so the watermark
        // must sit below that to see any migration at all.
        h.bg.high_watermark = 0.0001;
        h.bg.low_watermark = 0.0;
        h.bg.refresh_interval_days = 25.0;
        h.bg.refresh_scan_batch = 8;
    }
    Some(h)
}

/// One foreground load for every cell — read-dominant (the latency story
/// is about foreground reads) with just enough writes to fill the SLC
/// cache and feed GC. Keeping the trace identical across the bg on/off
/// cells makes the bg columns a pure machinery effect rather than a
/// workload change.
fn foreground(n: usize, seed: u64) -> Trace {
    SynthConfig {
        read_ratio: 0.96,
        cold_read_ratio: 0.6,
        hot_region_bytes: 4 << 20,
        cold_region_bytes: 64 << 20,
        ..SynthConfig::default()
    }
    .generate(n, seed)
}

fn main() {
    let opts = HarnessOpts::parse();
    let n = opts.pick(1500, 250);

    let mut table = String::new();
    let mut cells = Vec::new();
    let line = |t: &mut String, s: String| {
        println!("{s}");
        t.push_str(&s);
        t.push('\n');
    };

    line(
        &mut table,
        format!("== Hybrid sweep: mean read latency (µs) at {PE} P/E, {n} requests =="),
    );
    line(
        &mut table,
        format!(
            "{:>8} {:>6} | {}",
            "device",
            "bg",
            RetryKind::ALL
                .iter()
                .map(|r| format!("{:>9}", r.label()))
                .collect::<Vec<_>>()
                .join(" ")
        ),
    );

    // win[mode][bg] = geomean over baselines of baseline/RiF mean latency.
    let mut wins: Vec<(String, f64)> = Vec::new();
    for mode in MODES {
        for bg in [false, true] {
            let trace = foreground(n, opts.seed);
            let mut means = Vec::new();
            for retry in RetryKind::ALL {
                let mut cfg = SsdConfig::small(retry, PE);
                cfg.seed = opts.seed;
                cfg.hybrid = device(mode, bg);
                let label = format!(
                    "{mode}-{}-{}",
                    if bg { "bgon" } else { "bgoff" },
                    retry.label()
                );
                let report: SimReport = run_observed(&opts, &label, cfg, &trace);
                let mean_us = report.read_latency.mean().as_ns() as f64 / 1e3;
                let bg_ops = report.hybrid.map_or(0, |h| h.bg_ops);
                cells.push(format!(
                    "    {{\"device\": \"{mode}\", \"bg\": {bg}, \"scheme\": \"{}\", \
                     \"mean_read_us\": {mean_us:.3}, \"decode_failures\": {}, \
                     \"in_die_retries\": {}, \"bg_ops\": {bg_ops}}}",
                    retry.label(),
                    report.decode_failures,
                    report.in_die_retries,
                ));
                means.push((retry, mean_us));
            }
            let rif = means
                .iter()
                .find(|(r, _)| *r == RetryKind::Rif)
                .expect("RiF in ALL")
                .1;
            let ratios: Vec<f64> = BASELINES
                .iter()
                .map(|b| means.iter().find(|(r, _)| r == b).expect("baseline").1 / rif)
                .collect();
            wins.push((
                format!("{mode}_{}", if bg { "on" } else { "off" }),
                geomean(&ratios),
            ));
            line(
                &mut table,
                format!(
                    "{:>8} {:>6} | {}",
                    mode,
                    if bg { "on" } else { "off" },
                    means
                        .iter()
                        .map(|(_, us)| format!("{us:>9.1}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
            );
        }
    }

    line(&mut table, String::new());
    line(
        &mut table,
        "RiF win (geomean of baseline/RiF mean latency over SENC, SWR, SWR+, RPSSD):".into(),
    );
    for (key, w) in &wins {
        line(&mut table, format!("  {key:>10}: {w:.3}x"));
    }

    let win_of = |key: &str| wins.iter().find(|(k, _)| k == key).expect("win key").1;
    let tlc_off = win_of("tlc_off");
    let qlc_on = win_of("qlc_on");
    let hybrid_on = win_of("hybrid_on");
    let widens = qlc_on > tlc_off;
    line(
        &mut table,
        format!(
            "\nRiF's relative win under QLC+background ({qlc_on:.3}x) vs TLC-only \
             ({tlc_off:.3}x): {}",
            if widens { "WIDENS" } else { "DOES NOT WIDEN" }
        ),
    );

    let win_json: Vec<String> = wins
        .iter()
        .map(|(k, w)| format!("    \"{k}\": {w:.4}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hybrid_sweep\",\n  \"pe_cycles\": {PE},\n  \"requests\": {n},\n  \
         \"cells\": [\n{}\n  ],\n  \"rif_win\": {{\n{}\n  }},\n  \
         \"win_widens\": {widens},\n  \"hybrid_on_win\": {hybrid_on:.4}\n}}\n",
        cells.join(",\n"),
        win_json.join(",\n")
    );
    for (path, contents) in [(OUT_JSON, &json), (OUT_TXT, &table)] {
        match std::fs::write(path, contents) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }

    if !widens {
        eprintln!(
            "FAIL: RiF's QLC+background win ({qlc_on:.3}x) does not exceed its TLC-only \
             win ({tlc_off:.3}x)"
        );
        std::process::exit(1);
    }
}
