//! Table II — key I/O characteristics of the eight evaluation traces,
//! recomputed from the synthetic generators and compared against the
//! paper's published values.

use rif_bench::{HarnessOpts, TableWriter};
use rif_workloads::profiles::PAPER_WORKLOADS;
use rif_workloads::TraceStats;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(20_000, 2_000);

    let t = TableWriter::new(opts.csv, &[8, 12, 12, 12, 12, 12]);
    t.heading(&format!(
        "Table II: workload characteristics ({n_requests} requests each)"
    ));
    t.row(&[
        "trace".into(),
        "read(paper)".into(),
        "read(ours)".into(),
        "cold(paper)".into(),
        "cold(ours)".into(),
        "GB moved".into(),
    ]);
    for wl in PAPER_WORKLOADS {
        let trace = wl.generate(n_requests, opts.seed);
        let s = TraceStats::compute(&trace);
        t.row(&[
            wl.name.into(),
            format!("{:.2}", wl.read_ratio),
            format!("{:.2}", s.read_ratio),
            format!("{:.2}", wl.cold_read_ratio),
            format!("{:.2}", s.cold_read_ratio),
            format!("{:.2}", s.total_bytes as f64 / 1e9),
        ]);
    }
}
