//! Table II — key I/O characteristics of the eight evaluation traces,
//! recomputed from the synthetic generators and compared against the
//! paper's published values.
//!
//! With `--trace-out` / `--metrics` each workload is additionally
//! replayed through the paper-geometry simulator (RiF at 1K P/E) so its
//! trace passes the invariant checker and its engine metrics are shown.

use rif_bench::{run_paper_sim_observed, HarnessOpts, TableWriter};
use rif_ssd::RetryKind;
use rif_workloads::profiles::PAPER_WORKLOADS;
use rif_workloads::TraceStats;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(20_000, 2_000);

    let t = TableWriter::new(opts.csv, &[8, 12, 12, 12, 12, 12]);
    t.heading(&format!(
        "Table II: workload characteristics ({n_requests} requests each)"
    ));
    t.row(&[
        "trace".into(),
        "read(paper)".into(),
        "read(ours)".into(),
        "cold(paper)".into(),
        "cold(ours)".into(),
        "GB moved".into(),
    ]);
    for wl in PAPER_WORKLOADS {
        let trace = wl.generate(n_requests, opts.seed);
        let s = TraceStats::compute(&trace);
        t.row(&[
            wl.name.into(),
            format!("{:.2}", wl.read_ratio),
            format!("{:.2}", s.read_ratio),
            format!("{:.2}", wl.cold_read_ratio),
            format!("{:.2}", s.cold_read_ratio),
            format!("{:.2}", s.total_bytes as f64 / 1e9),
        ]);
    }

    if opts.trace_out.is_some() || opts.metrics {
        // Validation replay: each workload through the simulator under
        // the trace checker (and/or with metrics collection).
        let sim_requests = opts.pick(2_000, 200);
        for wl in PAPER_WORKLOADS {
            let trace = wl.generate(sim_requests, opts.seed);
            run_paper_sim_observed(&opts, wl.name, RetryKind::Rif, 1000, &trace, opts.seed);
        }
        if !opts.csv && opts.trace_out.is_some() {
            println!(
                "\nall {} workload replays passed the trace checker",
                PAPER_WORKLOADS.len()
            );
        }
    }
}
