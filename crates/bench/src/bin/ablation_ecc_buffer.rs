//! Ablation — channel-level ECC buffer capacity (§III-B3's third root
//! cause).
//!
//! The ECCWAIT pathology exists because the ECC engine's input buffer is
//! finite: while an uncorrectable page grinds through a 20-µs failed
//! decode, buffered pages pile up and the channel must stall. A larger
//! buffer hides more decode latency for the reactive schemes — RiF barely
//! cares, because its decodes are all short.

use rif_bench::{saturating_trace, HarnessOpts, TableWriter};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let wl = WorkloadProfile::by_name("Ali124").expect("table workload");
    let trace = saturating_trace(&wl, opts.pick(4_000, 500), opts.seed);

    let t = TableWriter::new(opts.csv, &[8, 8, 12, 10, 10]);
    t.heading("Ablation: ECC buffer pages (SWR and RiFSSD @ 2K P/E, Ali124)");
    t.row(&[
        "scheme".into(),
        "buffer".into(),
        "bandwidth".into(),
        "eccwait".into(),
        "uncor".into(),
    ]);
    for scheme in [RetryKind::SwiftRead, RetryKind::Rif] {
        for buffer in [1usize, 2, 4, 8, 16] {
            let mut cfg = SsdConfig::paper(scheme, 2000);
            cfg.ecc_buffer_pages = buffer;
            cfg.seed = opts.seed;
            let report = Simulator::new(cfg).run(&trace);
            let u = report.channel_usage();
            t.row(&[
                scheme.label().into(),
                buffer.to_string(),
                format!("{:.0}", report.io_bandwidth_mbps()),
                format!("{:.3}", u.eccwait),
                format!("{:.3}", u.uncor),
            ]);
        }
    }
    if !opts.csv {
        println!("\nBuffering trades silicon for ECCWAIT but cannot recover the UNCOR");
        println!("share — only deciding retries before the transfer (RiF) removes both.");
    }
}
