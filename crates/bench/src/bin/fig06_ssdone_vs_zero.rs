//! Fig. 6 — I/O bandwidth of SSDone (ideal reactive retry) vs SSDzero
//! (no retries) across four workloads and three wear stages.
//!
//! Paper anchors: SSDone degrades by 19.4 % / 34.9 % / 50.4 % on average
//! at 0K / 1K / 2K P/E cycles; Ali124 at 2K is capped near 2831 MB/s
//! while SSDzero sustains ≈6026 MB/s.

use rif_bench::{run_paper_sim, saturating_trace, HarnessOpts, TableWriter, PE_STAGES};
use rif_ssd::RetryKind;
use rif_workloads::WorkloadProfile;

fn main() {
    let opts = HarnessOpts::parse();
    let n_requests = opts.pick(6_000, 800);
    let workloads = WorkloadProfile::motivation_set();

    let t = TableWriter::new(opts.csv, &[6, 8, 12, 12, 12]);
    t.heading("Fig. 6: SSDone vs SSDzero I/O bandwidth (MB/s)");
    t.row(&[
        "pe".into(),
        "trace".into(),
        "SSDone".into(),
        "SSDzero".into(),
        "degradation".into(),
    ]);

    for pe in PE_STAGES {
        let mut degradations = Vec::new();
        for wl in &workloads {
            let trace = saturating_trace(wl, n_requests, opts.seed);
            let one = run_paper_sim(RetryKind::IdealOne, pe, &trace, opts.seed);
            let zero = run_paper_sim(RetryKind::Zero, pe, &trace, opts.seed);
            let degradation = 1.0 - one.io_bandwidth_mbps() / zero.io_bandwidth_mbps();
            degradations.push(degradation);
            t.row(&[
                pe.to_string(),
                wl.name.into(),
                format!("{:.0}", one.io_bandwidth_mbps()),
                format!("{:.0}", zero.io_bandwidth_mbps()),
                format!("{:.1}%", degradation * 100.0),
            ]);
        }
        if !opts.csv {
            let avg = degradations.iter().sum::<f64>() / degradations.len() as f64;
            println!(
                "  -> average degradation at {pe} P/E: {:.1}%  (paper: {})",
                avg * 100.0,
                match pe {
                    0 => "19.4%",
                    1000 => "34.9%",
                    _ => "50.4%",
                }
            );
        }
    }
}
