//! Extension — TLC vs QLC retry pressure (paper §VII).
//!
//! The paper argues read-retry optimization matters even more for denser
//! cells. This harness quantifies it in two ways, both sourced from the
//! hybrid subsystem's [`CellMode`] models (DESIGN §14) so there is a
//! single definition of "QLC" in the tree:
//!
//! 1. analytically, with the generalized MLC model: QLC's sixteen states
//!    share the TLC V_TH window, so the same retention drift crosses the
//!    ECC capability in a fraction of the time — compressing the usable
//!    refresh interval and multiplying the retry rate RiF eliminates;
//! 2. by simulation, running the same trace through a TLC device and a
//!    QLC one configured via `SsdConfig.hybrid = HybridConfig::qlc()` —
//!    the config path the hybrid_sweep harness and `rif-server --hybrid`
//!    use.

use rif_bench::{HarnessOpts, TableWriter};
use rif_flash::vth::OperatingPoint;
use rif_ssd::hybrid::{CellMode, HybridConfig};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::SynthConfig;

fn main() {
    let opts = HarnessOpts::parse();
    let tlc = CellMode::Tlc.model();
    let qlc = CellMode::Qlc.model();

    let t = TableWriter::new(opts.csv, &[6, 14, 14, 16, 16]);
    t.heading("Extension: TLC vs QLC capability-crossing days and retry pressure");
    t.row(&[
        "pe".into(),
        "tlc_days".into(),
        "qlc_days".into(),
        "tlc_retry_30d".into(),
        "qlc_retry_30d".into(),
    ]);
    for pe in [0u32, 200, 500, 1000, 2000] {
        let dt = tlc.days_to_exceed(pe, 0.0085, 120.0);
        let dq = qlc.days_to_exceed(pe, 0.0085, 120.0);
        // Cold-read retry fraction under a 30-day refresh horizon.
        let frac = |d: Option<f64>| match d {
            Some(day) => format!("{:.2}", (1.0 - day / 30.0).clamp(0.0, 1.0)),
            None => "0.00".into(),
        };
        let fmt = |d: Option<f64>| match d {
            Some(day) => format!("{day:.1}"),
            None => ">120".into(),
        };
        t.row(&[pe.to_string(), fmt(dt), fmt(dq), frac(dt), frac(dq)]);
    }

    if !opts.csv {
        // RBER amplification at matched stress.
        println!("\nRBER amplification (QLC / TLC) at matched stress:");
        for &(pe, days) in &[(0u32, 5.0), (500, 5.0), (1000, 3.0)] {
            let op = OperatingPoint::new(pe, days);
            let ratio = qlc.rber_avg(op, 1.0) / tlc.rber_avg(op, 1.0).max(1e-12);
            println!("  {pe:>4} P/E, {days:>3.0} days: {ratio:.0}x");
        }
    }

    // Simulated confirmation through the hybrid config path: the same
    // trace on a TLC device (hybrid: None) and an all-QLC one.
    let n_requests = opts.pick(1200, 300);
    let trace = SynthConfig {
        read_ratio: 0.8,
        cold_read_ratio: 0.5,
        hot_region_bytes: 4 << 20,
        cold_region_bytes: 64 << 20,
        ..SynthConfig::default()
    }
    .generate(n_requests, opts.seed);

    let t = TableWriter::new(opts.csv, &[10, 12, 12, 12, 12]);
    t.heading("Simulated mean read latency (µs) and retries, TLC vs QLC (hybrid config path)");
    t.row(&[
        "scheme".into(),
        "tlc_us".into(),
        "qlc_us".into(),
        "tlc_retry".into(),
        "qlc_retry".into(),
    ]);
    for &retry in &[
        RetryKind::Zero,
        RetryKind::SwiftRead,
        RetryKind::RpSsd,
        RetryKind::Rif,
    ] {
        let run = |hybrid: Option<HybridConfig>| {
            let mut cfg = SsdConfig::small(retry, 1000);
            cfg.seed = opts.seed;
            cfg.hybrid = hybrid;
            Simulator::new(cfg).run(&trace)
        };
        let rt = run(None);
        let rq = run(Some(HybridConfig::qlc()));
        t.row(&[
            format!("{retry:?}"),
            format!("{:.1}", rt.read_latency.mean().as_ns() as f64 / 1e3),
            format!("{:.1}", rq.read_latency.mean().as_ns() as f64 / 1e3),
            (rt.decode_failures + rt.in_die_retries).to_string(),
            (rq.decode_failures + rq.in_die_retries).to_string(),
        ]);
    }

    if !opts.csv {
        println!("\nWith QLC, nearly every cold read needs a retry within days of");
        println!("programming — deciding retries on-die stops being an optimization");
        println!("and becomes the only way to keep the channel usable.");
    }
}
