//! Extension — TLC vs QLC retry pressure (paper §VII).
//!
//! The paper argues read-retry optimization matters even more for denser
//! cells. This harness quantifies it with the generalized MLC model:
//! QLC's sixteen states share the TLC V_TH window, so the same retention
//! drift crosses the ECC capability in a fraction of the time —
//! compressing the usable refresh interval and multiplying the retry rate
//! that RiF eliminates.

use rif_bench::{HarnessOpts, TableWriter};
use rif_flash::mlc::MlcModel;
use rif_flash::vth::OperatingPoint;

fn main() {
    let opts = HarnessOpts::parse();
    let tlc = MlcModel::tlc();
    let qlc = MlcModel::qlc();

    let t = TableWriter::new(opts.csv, &[6, 14, 14, 16, 16]);
    t.heading("Extension: TLC vs QLC capability-crossing days and retry pressure");
    t.row(&[
        "pe".into(),
        "tlc_days".into(),
        "qlc_days".into(),
        "tlc_retry_30d".into(),
        "qlc_retry_30d".into(),
    ]);
    for pe in [0u32, 200, 500, 1000, 2000] {
        let dt = tlc.days_to_exceed(pe, 0.0085, 120.0);
        let dq = qlc.days_to_exceed(pe, 0.0085, 120.0);
        // Cold-read retry fraction under a 30-day refresh horizon.
        let frac = |d: Option<f64>| match d {
            Some(day) => format!("{:.2}", (1.0 - day / 30.0).clamp(0.0, 1.0)),
            None => "0.00".into(),
        };
        let fmt = |d: Option<f64>| match d {
            Some(day) => format!("{day:.1}"),
            None => ">120".into(),
        };
        t.row(&[pe.to_string(), fmt(dt), fmt(dq), frac(dt), frac(dq)]);
    }

    if !opts.csv {
        // RBER amplification at matched stress.
        println!("\nRBER amplification (QLC / TLC) at matched stress:");
        for &(pe, days) in &[(0u32, 5.0), (500, 5.0), (1000, 3.0)] {
            let op = OperatingPoint::new(pe, days);
            let ratio = qlc.rber_avg(op, 1.0) / tlc.rber_avg(op, 1.0).max(1e-12);
            println!("  {pe:>4} P/E, {days:>3.0} days: {ratio:.0}x");
        }
        println!("\nWith QLC, nearly every cold read needs a retry within days of");
        println!("programming — deciding retries on-die stops being an optimization");
        println!("and becomes the only way to keep the channel usable.");
    }
}
