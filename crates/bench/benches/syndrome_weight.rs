//! The two on-die syndrome computations of §V: the exact full syndrome
//! versus the hardware path (pruned first block row on the rearranged
//! layout) — the speedup that makes RP implementable in a flash die.

use criterion::{criterion_group, criterion_main, Criterion};
use rif_events::SimRng;
use rif_ldpc::bits::BitVec;
use rif_ldpc::{Bsc, QcLdpcCode};

fn bench_syndrome(c: &mut Criterion) {
    let code = QcLdpcCode::paper();
    let mut rng = SimRng::seed_from(2);
    let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
    let noisy = Bsc::new(0.0085).corrupt(&cw, &mut rng);
    let rearranged = code.rearrange(&noisy);

    c.bench_function("full_syndrome_weight", |b| {
        b.iter(|| code.syndrome_weight(std::hint::black_box(&noisy)))
    });
    c.bench_function("pruned_syndrome_weight", |b| {
        b.iter(|| code.pruned_syndrome_weight(std::hint::black_box(&noisy)))
    });
    c.bench_function("pruned_weight_rearranged_hw_path", |b| {
        b.iter(|| code.pruned_weight_rearranged(std::hint::black_box(&rearranged)))
    });
    c.bench_function("rearrange_codeword", |b| {
        b.iter(|| code.rearrange(std::hint::black_box(&noisy)))
    });
}

criterion_group!(benches, bench_syndrome);
criterion_main!(benches);
