//! End-to-end RP prediction cost (bit-accurate model and the closed-form
//! behavioural model the simulator uses).

use criterion::{criterion_group, criterion_main, Criterion};
use rif_events::SimRng;
use rif_ldpc::bits::BitVec;
use rif_ldpc::{Bsc, QcLdpcCode};
use rif_odear::rp::ReadRetryPredictor;
use rif_odear::RpBehavior;

fn bench_rp(c: &mut Criterion) {
    let code = QcLdpcCode::paper();
    let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
    let mut rng = SimRng::seed_from(3);
    let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
    let sensed = Bsc::new(0.009).corrupt(&code.rearrange(&cw), &mut rng);

    c.bench_function("rp_predict_bit_accurate", |b| {
        b.iter(|| rp.predict(std::hint::black_box(&sensed)))
    });

    let behavior = RpBehavior::paper_default();
    c.bench_function("rp_behavior_closed_form", |b| {
        b.iter(|| behavior.retry_probability(std::hint::black_box(0.009)))
    });
    c.bench_function("rp_behavior_sample", |b| {
        b.iter(|| behavior.sample_retry(std::hint::black_box(0.009), &mut rng))
    });
}

criterion_group!(benches, bench_rp);
criterion_main!(benches);
