//! Min-sum decoder throughput across RBER regimes: the latency behind
//! the 1–20 µs tECC range of Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rif_events::SimRng;
use rif_ldpc::bits::BitVec;
use rif_ldpc::decoder::MinSumDecoder;
use rif_ldpc::{Bsc, QcLdpcCode};

fn bench_decode(c: &mut Criterion) {
    let code = QcLdpcCode::medium();
    let decoder = MinSumDecoder::new(&code);
    let mut rng = SimRng::seed_from(1);
    let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));

    let mut group = c.benchmark_group("minsum_decode");
    for &rber in &[0.001f64, 0.005, 0.0085, 0.015] {
        let noisy = Bsc::new(rber).corrupt(&cw, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(rber), &noisy, |b, input| {
            b.iter(|| decoder.decode(std::hint::black_box(input)))
        });
    }
    group.finish();

    c.bench_function("encode_medium", |b| {
        let data = BitVec::random(code.data_bits(), &mut rng);
        b.iter(|| code.encode(std::hint::black_box(&data)))
    });
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
