//! Event-engine throughput: simulated host requests per second of wall
//! time, per retry scheme — the cost of the reproduction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::WorkloadProfile;

fn bench_sim(c: &mut Criterion) {
    let mut wl = WorkloadProfile::by_name("Ali124")
        .expect("workload")
        .config();
    wl.mean_interarrival_ns = 3_000.0;
    let trace = wl.generate(500, 7);

    let mut group = c.benchmark_group("ssd_sim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.sample_size(20);
    for scheme in [RetryKind::Zero, RetryKind::Sentinel, RetryKind::Rif] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &trace,
            |b, t| {
                b.iter(|| {
                    let cfg = SsdConfig::small(scheme, 2000);
                    Simulator::new(cfg).run(std::hint::black_box(t))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
