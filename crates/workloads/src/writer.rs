//! CSV block-trace export: the inverse of [`crate::parser`], so synthetic
//! traces can be archived, plotted, or fed to external simulators.

use std::fmt::Write as _;

use crate::trace::Trace;

/// Serializes a trace into the CSV shape [`crate::parser::parse_csv`]
/// accepts (`timestamp_us,R|W,offset_bytes,length_bytes`).
///
/// # Example
///
/// ```
/// use rif_workloads::{SynthConfig, parser, writer};
///
/// let trace = SynthConfig::default().generate(100, 1);
/// let text = writer::to_csv(&trace);
/// let back = parser::parse_csv(&text).unwrap();
/// assert_eq!(back.len(), trace.len());
/// ```
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 32 + 64);
    out.push_str("# timestamp_us,op,offset_bytes,length_bytes\n");
    for r in trace {
        let op = if r.is_read() { 'R' } else { 'W' };
        writeln!(
            out,
            "{},{},{},{}",
            r.arrival.as_ns() / 1_000,
            op,
            r.offset,
            r.bytes
        )
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_csv;
    use crate::synth::SynthConfig;
    use crate::trace::{IoOp, IoRequest};
    use rif_events::SimTime;

    #[test]
    fn roundtrip_preserves_requests() {
        let trace = SynthConfig::default().generate(500, 9);
        let back = parse_csv(&to_csv(&trace)).expect("roundtrip parse");
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.op, b.op);
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.bytes, b.bytes);
            // Timestamps round to microseconds.
            assert!(a.arrival.as_ns().abs_diff(b.arrival.as_ns()) < 1_000);
        }
    }

    #[test]
    fn header_is_a_comment() {
        let trace = Trace::new(vec![IoRequest {
            arrival: SimTime::from_us(5),
            op: IoOp::Write,
            offset: 4096,
            bytes: 16384,
        }]);
        let text = to_csv(&trace);
        assert!(text.starts_with('#'));
        assert!(text.contains("5,W,4096,16384"));
    }

    #[test]
    fn empty_trace_is_just_the_header() {
        let text = to_csv(&Trace::default());
        assert_eq!(text.lines().count(), 1);
        assert!(parse_csv(&text).unwrap().is_empty());
    }
}
