//! The captured-trace format: served requests journaled as CSV.
//!
//! A live `rif-server` run can journal every *admitted* request through
//! its `TraceRecorder`; this module is the interchange format those
//! journals are written in and read back from. It is a strict superset
//! of the plain block-trace CSV of [`crate::parser`]: the first four
//! fields are identical (`t_us,R|W,offset_bytes,length_bytes`), followed
//! by the serving-side metadata a replay needs (`tenant,shard,outcome`).
//!
//! ```text
//! # rif-capture v1: t_us,op,offset_bytes,length_bytes,tenant,shard,outcome
//! 0,R,1048576,65536,0,1,done
//! 12,W,524288,65536,3,0,done
//! 57,R,9437184,16384,0,1,error
//! ```
//!
//! Three invariants make a capture a *replayable golden artifact*:
//!
//! 1. **Monotonic time.** Timestamps are wall-clock microseconds read
//!    from one monotonic clock at admission and normalized so the first
//!    record sits at `t = 0`. The parser rejects any row whose timestamp
//!    runs backwards — a capture that violates this was corrupted or
//!    hand-edited, and replaying it would silently reorder I/O.
//! 2. **Logical requests, journaled once.** The recorder coalesces client
//!    re-issues (linked by `retry_of` tags) into the record of their
//!    first admission, so a capture row is one logical I/O, not one wire
//!    frame.
//! 3. **Canonical serialization.** [`Capture::to_csv`] renders a unique
//!    byte string for a given record list, so `serialize → parse →
//!    re-serialize` is the identity and captures diff cleanly.

use std::fmt;

use rif_events::SimTime;

use crate::trace::{IoOp, IoRequest, Trace};

/// How an admitted request terminated on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaptureOutcome {
    /// The simulated I/O completed (DONE on the wire).
    Done,
    /// The request was admitted but failed terminally (worker crash, or
    /// it was still unresolved when the capture was taken).
    Error,
}

impl CaptureOutcome {
    /// The canonical CSV token.
    pub fn label(&self) -> &'static str {
        match self {
            CaptureOutcome::Done => "done",
            CaptureOutcome::Error => "error",
        }
    }
}

/// One journaled logical request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedRequest {
    /// Admission wall time in microseconds, relative to capture start.
    pub t_us: u64,
    /// Read or write.
    pub op: IoOp,
    /// Logical byte offset (wrapped into the served capacity, *before*
    /// shard rebasing — replaying through a server with the same shard
    /// count routes identically).
    pub offset: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Tenant id the request was admitted under.
    pub tenant: u32,
    /// Shard index that served it.
    pub shard: u32,
    /// Terminal outcome.
    pub outcome: CaptureOutcome,
}

impl CapturedRequest {
    /// The offline-replay view: the four core block-trace fields.
    pub fn to_io_request(&self) -> IoRequest {
        IoRequest {
            arrival: SimTime::from_us(self.t_us),
            op: self.op,
            offset: self.offset,
            bytes: self.bytes,
        }
    }
}

/// An ordered capture of served requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capture {
    /// Records in admission order (non-decreasing `t_us`).
    pub records: Vec<CapturedRequest>,
}

/// The canonical header line every capture starts with.
pub const CAPTURE_HEADER: &str =
    "# rif-capture v1: t_us,op,offset_bytes,length_bytes,tenant,shard,outcome";

/// A capture-parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCaptureError {
    /// Line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub kind: CaptureErrorKind,
}

/// The category of a capture-parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureErrorKind {
    /// Wrong number of comma-separated fields (expected 7).
    FieldCount(usize),
    /// A numeric field failed to parse (covers negative offsets and
    /// timestamps: every numeric field is unsigned).
    BadNumber(String),
    /// The op field was neither `R` nor `W`.
    BadOp(String),
    /// The outcome field was neither `done` nor `error`.
    BadOutcome(String),
    /// A zero-length request.
    EmptyRequest,
    /// A timestamp earlier than its predecessor.
    NonMonotonicTime {
        /// The offending timestamp.
        t_us: u64,
        /// The timestamp of the previous record.
        prev_us: u64,
    },
}

impl fmt::Display for ParseCaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CaptureErrorKind::FieldCount(n) => {
                write!(f, "line {}: expected 7 fields, found {n}", self.line)
            }
            CaptureErrorKind::BadNumber(s) => {
                write!(f, "line {}: invalid number {s:?}", self.line)
            }
            CaptureErrorKind::BadOp(s) => {
                write!(f, "line {}: invalid op {s:?} (expected R or W)", self.line)
            }
            CaptureErrorKind::BadOutcome(s) => write!(
                f,
                "line {}: invalid outcome {s:?} (expected done or error)",
                self.line
            ),
            CaptureErrorKind::EmptyRequest => {
                write!(f, "line {}: zero-length request", self.line)
            }
            CaptureErrorKind::NonMonotonicTime { t_us, prev_us } => write!(
                f,
                "line {}: timestamp {t_us} runs backwards (previous record at {prev_us})",
                self.line
            ),
        }
    }
}

impl std::error::Error for ParseCaptureError {}

impl Capture {
    /// Wraps a record list. The records must already be in admission
    /// order; use [`Capture::normalize`] to rebase timestamps to zero.
    pub fn new(records: Vec<CapturedRequest>) -> Self {
        Capture { records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rebases timestamps so the first record sits at `t_us = 0`. A
    /// capture straight off a `TraceRecorder` is already monotonic; this
    /// removes the arbitrary offset of when, within the server's
    /// lifetime, the first request happened to arrive.
    pub fn normalize(&mut self) {
        let Some(t0) = self.records.first().map(|r| r.t_us) else {
            return;
        };
        for r in &mut self.records {
            r.t_us -= t0;
        }
    }

    /// The offline-replay view: a plain [`Trace`] carrying the four core
    /// fields, interchangeable with synthetic and parsed traces. Every
    /// admitted record replays — an `error` outcome means the I/O reached
    /// a simulator, so the offline pipeline replays it too.
    pub fn to_trace(&self) -> Trace {
        self.records.iter().map(|r| r.to_io_request()).collect()
    }

    /// Canonical CSV rendering: one unique byte string per record list.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 40 + CAPTURE_HEADER.len() + 1);
        out.push_str(CAPTURE_HEADER);
        out.push('\n');
        for r in &self.records {
            use std::fmt::Write as _;
            writeln!(
                out,
                "{},{},{},{},{},{},{}",
                r.t_us,
                if r.op == IoOp::Read { 'R' } else { 'W' },
                r.offset,
                r.bytes,
                r.tenant,
                r.shard,
                r.outcome.label(),
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Parses a captured-trace CSV. Blank lines and `#` comments are
    /// skipped; every record row must have exactly 7 well-formed fields
    /// and non-decreasing timestamps.
    ///
    /// # Errors
    ///
    /// Returns the first malformed record with its line number. Negative
    /// numbers fail the unsigned parses, so a hand-mangled `-4096` offset
    /// is a [`CaptureErrorKind::BadNumber`], never a panic or a wrap.
    pub fn parse_csv(text: &str) -> Result<Capture, ParseCaptureError> {
        let mut records = Vec::new();
        let mut prev_us: Option<u64> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
            if fields.len() != 7 {
                return Err(ParseCaptureError {
                    line,
                    kind: CaptureErrorKind::FieldCount(fields.len()),
                });
            }
            let num = |s: &str| -> Result<u64, ParseCaptureError> {
                s.parse().map_err(|_| ParseCaptureError {
                    line,
                    kind: CaptureErrorKind::BadNumber(s.to_string()),
                })
            };
            let t_us = num(fields[0])?;
            let op = match fields[1] {
                "R" => IoOp::Read,
                "W" => IoOp::Write,
                other => {
                    return Err(ParseCaptureError {
                        line,
                        kind: CaptureErrorKind::BadOp(other.to_string()),
                    })
                }
            };
            let offset = num(fields[2])?;
            let bytes = num(fields[3])?;
            let bytes = u32::try_from(bytes).map_err(|_| ParseCaptureError {
                line,
                kind: CaptureErrorKind::BadNumber(fields[3].to_string()),
            })?;
            if bytes == 0 {
                return Err(ParseCaptureError {
                    line,
                    kind: CaptureErrorKind::EmptyRequest,
                });
            }
            let tenant = u32::try_from(num(fields[4])?).map_err(|_| ParseCaptureError {
                line,
                kind: CaptureErrorKind::BadNumber(fields[4].to_string()),
            })?;
            let shard = u32::try_from(num(fields[5])?).map_err(|_| ParseCaptureError {
                line,
                kind: CaptureErrorKind::BadNumber(fields[5].to_string()),
            })?;
            let outcome = match fields[6] {
                "done" => CaptureOutcome::Done,
                "error" => CaptureOutcome::Error,
                other => {
                    return Err(ParseCaptureError {
                        line,
                        kind: CaptureErrorKind::BadOutcome(other.to_string()),
                    })
                }
            };
            if let Some(prev) = prev_us {
                if t_us < prev {
                    return Err(ParseCaptureError {
                        line,
                        kind: CaptureErrorKind::NonMonotonicTime {
                            t_us,
                            prev_us: prev,
                        },
                    });
                }
            }
            prev_us = Some(t_us);
            records.push(CapturedRequest {
                t_us,
                op,
                offset,
                bytes,
                tenant,
                shard,
                outcome,
            });
        }
        Ok(Capture { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_us: u64, op: IoOp, offset: u64, bytes: u32) -> CapturedRequest {
        CapturedRequest {
            t_us,
            op,
            offset,
            bytes,
            tenant: 0,
            shard: 0,
            outcome: CaptureOutcome::Done,
        }
    }

    #[test]
    fn csv_roundtrips_byte_identically() {
        let cap = Capture::new(vec![
            rec(0, IoOp::Read, 1 << 20, 65536),
            CapturedRequest {
                t_us: 12,
                op: IoOp::Write,
                offset: 524288,
                bytes: 65536,
                tenant: 3,
                shard: 1,
                outcome: CaptureOutcome::Error,
            },
            rec(12, IoOp::Read, 0, 4096),
        ]);
        let csv = cap.to_csv();
        let back = Capture::parse_csv(&csv).expect("parse");
        assert_eq!(back, cap);
        assert_eq!(back.to_csv(), csv, "re-serialization must be identity");
    }

    #[test]
    fn normalize_rebases_to_zero_and_preserves_spacing() {
        let mut cap = Capture::new(vec![
            rec(1_000, IoOp::Read, 0, 4096),
            rec(1_007, IoOp::Write, 4096, 4096),
        ]);
        cap.normalize();
        assert_eq!(cap.records[0].t_us, 0);
        assert_eq!(cap.records[1].t_us, 7);
    }

    #[test]
    fn to_trace_carries_core_fields() {
        let cap = Capture::new(vec![rec(5, IoOp::Write, 8192, 16384)]);
        let t = cap.to_trace();
        assert_eq!(t.len(), 1);
        let r = t.requests()[0];
        assert_eq!(r.arrival, SimTime::from_us(5));
        assert_eq!(r.op, IoOp::Write);
        assert_eq!(r.offset, 8192);
        assert_eq!(r.bytes, 16384);
    }

    #[test]
    fn rejects_bad_tenant() {
        let e = Capture::parse_csv("0,R,0,4096,nope,0,done\n").unwrap_err();
        assert!(matches!(e.kind, CaptureErrorKind::BadNumber(_)), "{e:?}");
    }

    #[test]
    fn rejects_negative_offset() {
        let e = Capture::parse_csv("0,R,-4096,4096,0,0,done\n").unwrap_err();
        assert!(matches!(e.kind, CaptureErrorKind::BadNumber(_)), "{e:?}");
    }

    #[test]
    fn rejects_non_monotonic_time() {
        let text = "5,R,0,4096,0,0,done\n4,R,0,4096,0,0,done\n";
        let e = Capture::parse_csv(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(
            matches!(
                e.kind,
                CaptureErrorKind::NonMonotonicTime {
                    t_us: 4,
                    prev_us: 5
                }
            ),
            "{e:?}"
        );
    }

    #[test]
    fn rejects_bad_outcome_field_count_and_zero_length() {
        assert!(matches!(
            Capture::parse_csv("0,R,0,4096,0,0,maybe\n")
                .unwrap_err()
                .kind,
            CaptureErrorKind::BadOutcome(_)
        ));
        assert!(matches!(
            Capture::parse_csv("0,R,0,4096\n").unwrap_err().kind,
            CaptureErrorKind::FieldCount(4)
        ));
        assert!(matches!(
            Capture::parse_csv("0,R,0,0,0,0,done\n").unwrap_err().kind,
            CaptureErrorKind::EmptyRequest
        ));
    }

    #[test]
    fn empty_capture_is_just_the_header() {
        let cap = Capture::default();
        let csv = cap.to_csv();
        assert_eq!(csv.lines().count(), 1);
        assert!(Capture::parse_csv(&csv).unwrap().is_empty());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = Capture::parse_csv("0,R,0,4096,0,0,done\n0,T,0,4,0,0,done\n").unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 2") && msg.contains("invalid op"),
            "{msg}"
        );
    }
}
