//! Block I/O workloads for the SSD simulator.
//!
//! The paper evaluates on eight cloud block-storage traces (Table II):
//! six AliCloud traces and two Systor traces, selected by read ratio, with
//! cold-read ratios between 0.50 and 0.83. Those trace files are not
//! redistributable, so this crate provides
//!
//! * [`trace`] — the trace data model ([`IoRequest`], [`Trace`]);
//! * [`synth`] — a synthetic generator that reproduces the two
//!   characteristics the evaluation depends on (read ratio and cold-read
//!   ratio) plus Zipfian hot-spot locality and Poisson arrivals;
//! * [`profiles`] — the eight named workloads of Table II as generator
//!   presets;
//! * [`parser`] — a CSV block-trace parser for users who do have real
//!   traces;
//! * [`capture`] — the captured-trace format `rif-server` journals served
//!   requests in, replayable through the offline pipeline;
//! * [`stats`] — trace statistics (regenerates Table II from any trace).

pub mod capture;
pub mod parser;
pub mod profiles;
pub mod stats;
pub mod synth;
pub mod trace;
pub mod writer;

pub use capture::{Capture, CaptureOutcome, CapturedRequest, ParseCaptureError};
pub use profiles::WorkloadProfile;
pub use stats::TraceStats;
pub use synth::SynthConfig;
pub use trace::{IoOp, IoRequest, Trace};
