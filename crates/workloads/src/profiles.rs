//! The eight named workloads of Table II as generator presets.

use crate::synth::SynthConfig;
use crate::trace::Trace;

/// One of the paper's evaluation workloads (Table II), reproduced as a
/// synthetic generator preset with the published read ratio and cold-read
/// ratio.
///
/// # Example
///
/// ```
/// use rif_workloads::WorkloadProfile;
///
/// let ali124 = WorkloadProfile::by_name("Ali124").unwrap();
/// assert_eq!(ali124.read_ratio, 0.96);
/// let trace = ali124.generate(1000, 1);
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Trace name as used in the paper's figures.
    pub name: &'static str,
    /// Fraction of requests that are reads (Table II).
    pub read_ratio: f64,
    /// Fraction of reads that target never-updated pages (Table II).
    pub cold_read_ratio: f64,
}

/// Table II, verbatim.
pub const PAPER_WORKLOADS: [WorkloadProfile; 8] = [
    WorkloadProfile {
        name: "Ali2",
        read_ratio: 0.27,
        cold_read_ratio: 0.50,
    },
    WorkloadProfile {
        name: "Ali46",
        read_ratio: 0.34,
        cold_read_ratio: 0.75,
    },
    WorkloadProfile {
        name: "Ali81",
        read_ratio: 0.43,
        cold_read_ratio: 0.74,
    },
    WorkloadProfile {
        name: "Ali121",
        read_ratio: 0.92,
        cold_read_ratio: 0.70,
    },
    WorkloadProfile {
        name: "Ali124",
        read_ratio: 0.96,
        cold_read_ratio: 0.79,
    },
    WorkloadProfile {
        name: "Ali295",
        read_ratio: 0.42,
        cold_read_ratio: 0.73,
    },
    WorkloadProfile {
        name: "Sys0",
        read_ratio: 0.70,
        cold_read_ratio: 0.82,
    },
    WorkloadProfile {
        name: "Sys1",
        read_ratio: 0.72,
        cold_read_ratio: 0.83,
    },
];

impl WorkloadProfile {
    /// Looks a profile up by its paper name (case-sensitive).
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        PAPER_WORKLOADS.iter().copied().find(|w| w.name == name)
    }

    /// The profile with the highest read ratio, `None` for an empty
    /// slice. Uses a total order in which a NaN ratio (e.g. from a
    /// hand-built profile) loses to every real number, instead of
    /// panicking the comparison the way `partial_cmp().unwrap()` did.
    pub fn most_read_intensive(profiles: &[WorkloadProfile]) -> Option<WorkloadProfile> {
        fn key(w: &WorkloadProfile) -> f64 {
            if w.read_ratio.is_nan() {
                f64::NEG_INFINITY
            } else {
                w.read_ratio
            }
        }
        profiles
            .iter()
            .copied()
            .max_by(|a, b| key(a).total_cmp(&key(b)))
    }

    /// The four workloads of the motivation study (Fig. 6).
    pub fn motivation_set() -> [WorkloadProfile; 4] {
        [
            Self::by_name("Ali121").expect("table entry"),
            Self::by_name("Ali124").expect("table entry"),
            Self::by_name("Sys0").expect("table entry"),
            Self::by_name("Sys1").expect("table entry"),
        ]
    }

    /// The generator configuration for this profile.
    pub fn config(&self) -> SynthConfig {
        SynthConfig {
            read_ratio: self.read_ratio,
            cold_read_ratio: self.cold_read_ratio,
            ..SynthConfig::default()
        }
    }

    /// Generates `n_requests` requests of this workload.
    pub fn generate(&self, n_requests: usize, seed: u64) -> Trace {
        // Mix the profile name into the seed so different workloads draw
        // independent streams even with the same user seed.
        let salt = self
            .name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        self.config().generate(n_requests, seed ^ salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn table2_is_complete() {
        assert_eq!(PAPER_WORKLOADS.len(), 8);
        let names: Vec<&str> = PAPER_WORKLOADS.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            ["Ali2", "Ali46", "Ali81", "Ali121", "Ali124", "Ali295", "Sys0", "Sys1"]
        );
    }

    #[test]
    fn by_name_round_trips() {
        for w in PAPER_WORKLOADS {
            assert_eq!(WorkloadProfile::by_name(w.name), Some(w));
        }
        assert_eq!(WorkloadProfile::by_name("nope"), None);
    }

    #[test]
    fn ali124_is_most_read_intensive() {
        // §III-B: "the most read-intensive workload Ali124".
        let max = WorkloadProfile::most_read_intensive(&PAPER_WORKLOADS).unwrap();
        assert_eq!(max.name, "Ali124");
    }

    #[test]
    fn most_read_intensive_survives_nan_and_empty() {
        // Regression: the old partial_cmp().unwrap() panicked on NaN.
        let with_nan = [
            WorkloadProfile {
                name: "broken",
                read_ratio: f64::NAN,
                cold_read_ratio: 0.5,
            },
            WorkloadProfile::by_name("Ali2").unwrap(),
        ];
        let max = WorkloadProfile::most_read_intensive(&with_nan).unwrap();
        assert_eq!(max.name, "Ali2", "NaN must lose to any real ratio");
        assert_eq!(WorkloadProfile::most_read_intensive(&[]), None);
        // All-NaN input still yields an answer rather than panicking.
        let all_nan = [with_nan[0]];
        assert_eq!(
            WorkloadProfile::most_read_intensive(&all_nan).unwrap().name,
            "broken"
        );
    }

    #[test]
    fn generated_traces_match_table2() {
        for w in PAPER_WORKLOADS {
            let t = w.generate(3000, 5);
            let s = TraceStats::compute(&t);
            assert!(
                (s.read_ratio - w.read_ratio).abs() < 0.05,
                "{}: read ratio {} vs {}",
                w.name,
                s.read_ratio,
                w.read_ratio
            );
            assert!(
                (s.cold_read_ratio - w.cold_read_ratio).abs() < 0.06,
                "{}: cold ratio {} vs {}",
                w.name,
                s.cold_read_ratio,
                w.cold_read_ratio
            );
        }
    }

    #[test]
    fn different_workloads_different_streams() {
        let a = WorkloadProfile::by_name("Sys0").unwrap().generate(50, 1);
        let b = WorkloadProfile::by_name("Sys1").unwrap().generate(50, 1);
        assert_ne!(a.requests(), b.requests());
    }
}
