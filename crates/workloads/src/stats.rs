//! Trace statistics: regenerates Table II's characteristics from any
//! trace, generated or parsed.

use std::collections::HashSet;

use rif_events::SimDuration;

use crate::trace::Trace;

/// Key I/O characteristics of a trace (the columns of Table II plus
/// volume/intensity figures).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Fraction of reads addressing pages never written in this trace —
    /// the cold reads whose long retention age triggers read-retry.
    pub cold_read_ratio: f64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Bytes moved by reads.
    pub read_bytes: u64,
    /// Trace duration (arrival of the last request).
    pub duration: SimDuration,
    /// Mean request size in bytes.
    pub mean_request_bytes: f64,
}

impl TraceStats {
    /// Computes statistics over `trace`.
    ///
    /// Cold reads are counted page-wise at 16-KiB granularity: a read
    /// request is cold when *none* of the pages it touches is ever written
    /// anywhere in the trace (the paper's definition: "reads to pages that
    /// are not updated at all during the workload simulation").
    pub fn compute(trace: &Trace) -> Self {
        const PAGE: u64 = 16 * 1024;
        let mut written: HashSet<u64> = HashSet::new();
        for r in trace {
            if !r.is_read() {
                let first = r.offset / PAGE;
                let last = (r.end().saturating_sub(1)) / PAGE;
                for p in first..=last {
                    written.insert(p);
                }
            }
        }
        let mut reads = 0usize;
        let mut cold = 0usize;
        for r in trace {
            if r.is_read() {
                reads += 1;
                let first = r.offset / PAGE;
                let last = (r.end().saturating_sub(1)) / PAGE;
                if (first..=last).all(|p| !written.contains(&p)) {
                    cold += 1;
                }
            }
        }
        let n = trace.len();
        TraceStats {
            requests: n,
            read_ratio: if n > 0 { reads as f64 / n as f64 } else { 0.0 },
            cold_read_ratio: if reads > 0 {
                cold as f64 / reads as f64
            } else {
                0.0
            },
            total_bytes: trace.total_bytes(),
            read_bytes: trace.read_bytes(),
            duration: trace.span().since(rif_events::SimTime::ZERO),
            mean_request_bytes: if n > 0 {
                trace.total_bytes() as f64 / n as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{IoOp, IoRequest};
    use rif_events::SimTime;

    fn req(us: u64, op: IoOp, offset: u64, bytes: u32) -> IoRequest {
        IoRequest {
            arrival: SimTime::from_us(us),
            op,
            offset,
            bytes,
        }
    }

    #[test]
    fn ratios_on_tiny_trace() {
        // Write page 0; read page 0 (hot) and page 10 (cold).
        let t = Trace::new(vec![
            req(0, IoOp::Write, 0, 16384),
            req(1, IoOp::Read, 0, 16384),
            req(2, IoOp::Read, 10 * 16384, 16384),
        ]);
        let s = TraceStats::compute(&t);
        assert!((s.read_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.cold_read_ratio - 0.5).abs() < 1e-12);
        assert_eq!(s.requests, 3);
        assert_eq!(s.total_bytes, 3 * 16384);
        assert_eq!(s.read_bytes, 2 * 16384);
    }

    #[test]
    fn cold_requires_all_pages_unwritten() {
        // A 32-KiB read straddling one written and one unwritten page is
        // not cold.
        let t = Trace::new(vec![
            req(0, IoOp::Write, 16384, 16384), // page 1 written
            req(1, IoOp::Read, 0, 32768),      // reads pages 0 and 1
        ]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.cold_read_ratio, 0.0);
    }

    #[test]
    fn write_order_does_not_matter() {
        // A page written *after* it is read still disqualifies the read
        // from being cold (the paper's definition is over the whole trace).
        let t = Trace::new(vec![
            req(0, IoOp::Read, 0, 16384),
            req(1, IoOp::Write, 0, 16384),
        ]);
        let s = TraceStats::compute(&t);
        assert_eq!(s.cold_read_ratio, 0.0);
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.requests, 0);
        assert_eq!(s.read_ratio, 0.0);
        assert_eq!(s.cold_read_ratio, 0.0);
        assert_eq!(s.mean_request_bytes, 0.0);
    }
}
