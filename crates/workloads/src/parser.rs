//! CSV block-trace parsing.
//!
//! For users who hold the real AliCloud / Systor traces (or any other
//! block trace), this parser accepts the common CSV shape
//!
//! ```text
//! # comment
//! <timestamp_us>,<R|W>,<offset_bytes>,<length_bytes>
//! ```
//!
//! and produces a [`Trace`] interchangeable with the synthetic ones.

use std::fmt;

use rif_events::SimTime;

use crate::trace::{IoOp, IoRequest, Trace};

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// Line number of the offending record.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The category of a parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Wrong number of comma-separated fields.
    FieldCount(usize),
    /// A numeric field failed to parse.
    BadNumber(String),
    /// The op field was neither `R`/`READ` nor `W`/`WRITE`.
    BadOp(String),
    /// A zero-length request.
    EmptyRequest,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::FieldCount(n) => {
                write!(f, "line {}: expected 4 fields, found {n}", self.line)
            }
            ParseErrorKind::BadNumber(s) => {
                write!(f, "line {}: invalid number {s:?}", self.line)
            }
            ParseErrorKind::BadOp(s) => {
                write!(f, "line {}: invalid op {s:?} (expected R or W)", self.line)
            }
            ParseErrorKind::EmptyRequest => {
                write!(f, "line {}: zero-length request", self.line)
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a CSV trace from a string.
///
/// Blank lines and lines starting with `#` are skipped.
///
/// # Errors
///
/// Returns the first malformed record with its line number.
///
/// # Example
///
/// ```
/// let text = "# t_us,op,offset,len\n0,R,0,65536\n10,W,65536,16384\n";
/// let trace = rif_workloads::parser::parse_csv(text)?;
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), rif_workloads::parser::ParseTraceError>(())
/// ```
pub fn parse_csv(text: &str) -> Result<Trace, ParseTraceError> {
    let mut requests = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(ParseTraceError {
                line: line_no,
                kind: ParseErrorKind::FieldCount(fields.len()),
            });
        }
        let ts: u64 = fields[0].parse().map_err(|_| ParseTraceError {
            line: line_no,
            kind: ParseErrorKind::BadNumber(fields[0].to_string()),
        })?;
        let op = match fields[1].to_ascii_uppercase().as_str() {
            "R" | "READ" => IoOp::Read,
            "W" | "WRITE" => IoOp::Write,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    kind: ParseErrorKind::BadOp(other.to_string()),
                })
            }
        };
        let offset: u64 = fields[2].parse().map_err(|_| ParseTraceError {
            line: line_no,
            kind: ParseErrorKind::BadNumber(fields[2].to_string()),
        })?;
        let bytes: u32 = fields[3].parse().map_err(|_| ParseTraceError {
            line: line_no,
            kind: ParseErrorKind::BadNumber(fields[3].to_string()),
        })?;
        if bytes == 0 {
            return Err(ParseTraceError {
                line: line_no,
                kind: ParseErrorKind::EmptyRequest,
            });
        }
        requests.push(IoRequest {
            arrival: SimTime::from_us(ts),
            op,
            offset,
            bytes,
        });
    }
    Ok(Trace::new(requests))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_trace() {
        let t = parse_csv("0,R,0,4096\n5,W,4096,8192\n9,read,16384,4096\n").unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.requests()[0].is_read());
        assert!(!t.requests()[1].is_read());
        assert!(t.requests()[2].is_read());
        assert_eq!(t.total_bytes(), 4096 + 8192 + 4096);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let t = parse_csv("# header\n\n  \n0,R,0,4096\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn whitespace_tolerant() {
        let t = parse_csv(" 0 , R , 0 , 4096 \n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reports_field_count() {
        let e = parse_csv("0,R,0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::FieldCount(3));
    }

    #[test]
    fn reports_bad_number_with_line() {
        let e = parse_csv("0,R,0,4096\nx,R,0,4096\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ParseErrorKind::BadNumber(_)));
    }

    #[test]
    fn reports_bad_op() {
        let e = parse_csv("0,T,0,4096\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadOp(_)));
    }

    #[test]
    fn rejects_zero_length() {
        let e = parse_csv("0,R,0,0\n").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::EmptyRequest);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = parse_csv("0,T,0,4096\n").unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("line 1") && msg.contains("invalid op"),
            "{msg}"
        );
    }

    #[test]
    fn roundtrip_with_stats() {
        use crate::stats::TraceStats;
        let t = parse_csv("0,W,0,16384\n1,R,0,16384\n2,R,163840,16384\n").unwrap();
        let s = TraceStats::compute(&t);
        assert!((s.cold_read_ratio - 0.5).abs() < 1e-12);
    }
}
