//! The block-trace data model.

use rif_events::SimTime;

/// Direction of a block I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

/// One block I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Arrival time relative to trace start.
    pub arrival: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// Starting logical byte address (page-aligned by the generator; the
    /// simulator aligns down if needed).
    pub offset: u64,
    /// Request length in bytes.
    pub bytes: u32,
}

impl IoRequest {
    /// True for reads.
    pub fn is_read(&self) -> bool {
        self.op == IoOp::Read
    }

    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.offset + self.bytes as u64
    }
}

/// An ordered sequence of I/O requests.
///
/// # Example
///
/// ```
/// use rif_workloads::{IoOp, IoRequest, Trace};
/// use rif_events::SimTime;
///
/// let t = Trace::new(vec![IoRequest {
///     arrival: SimTime::ZERO,
///     op: IoOp::Read,
///     offset: 0,
///     bytes: 65536,
/// }]);
/// assert_eq!(t.len(), 1);
/// assert_eq!(t.total_bytes(), 65536);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    requests: Vec<IoRequest>,
}

impl Trace {
    /// Wraps a request list, sorting it by arrival time (stable, so
    /// equal-time requests keep their relative order).
    pub fn new(mut requests: Vec<IoRequest>) -> Self {
        requests.sort_by_key(|r| r.arrival);
        Trace { requests }
    }

    /// The requests in arrival order.
    pub fn requests(&self) -> &[IoRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterator over the requests.
    pub fn iter(&self) -> std::slice::Iter<'_, IoRequest> {
        self.requests.iter()
    }

    /// Sum of request sizes.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.bytes as u64).sum()
    }

    /// Sum of read-request sizes.
    pub fn read_bytes(&self) -> u64 {
        self.requests
            .iter()
            .filter(|r| r.is_read())
            .map(|r| r.bytes as u64)
            .sum()
    }

    /// Arrival time of the last request (zero for an empty trace).
    pub fn span(&self) -> SimTime {
        self.requests
            .last()
            .map(|r| r.arrival)
            .unwrap_or(SimTime::ZERO)
    }

    /// Highest byte address touched (exclusive), i.e. the minimum device
    /// size needed to replay this trace.
    pub fn footprint(&self) -> u64 {
        self.requests.iter().map(|r| r.end()).max().unwrap_or(0)
    }

    /// Number of requests targeting the most-requested offset — the
    /// hot-spot height that Zipfian locality produces. Zero for an empty
    /// trace (the offset histogram has no maximum to take).
    pub fn peak_offset_frequency(&self) -> usize {
        let mut counts = std::collections::HashMap::new();
        for r in &self.requests {
            *counts.entry(r.offset).or_insert(0usize) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct offsets addressed.
    pub fn distinct_offsets(&self) -> usize {
        self.requests
            .iter()
            .map(|r| r.offset)
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a IoRequest;
    type IntoIter = std::slice::Iter<'a, IoRequest>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl FromIterator<IoRequest> for Trace {
    fn from_iter<I: IntoIterator<Item = IoRequest>>(iter: I) -> Self {
        Trace::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimTime;

    fn req(us: u64, op: IoOp, offset: u64, bytes: u32) -> IoRequest {
        IoRequest {
            arrival: SimTime::from_us(us),
            op,
            offset,
            bytes,
        }
    }

    #[test]
    fn new_sorts_by_arrival() {
        let t = Trace::new(vec![
            req(30, IoOp::Read, 0, 4096),
            req(10, IoOp::Write, 4096, 4096),
            req(20, IoOp::Read, 8192, 4096),
        ]);
        let times: Vec<u64> = t.iter().map(|r| r.arrival.as_ns() / 1000).collect();
        assert_eq!(times, [10, 20, 30]);
    }

    #[test]
    fn byte_accounting() {
        let t = Trace::new(vec![
            req(0, IoOp::Read, 0, 65536),
            req(1, IoOp::Write, 65536, 16384),
            req(2, IoOp::Read, 131072, 16384),
        ]);
        assert_eq!(t.total_bytes(), 65536 + 16384 + 16384);
        assert_eq!(t.read_bytes(), 65536 + 16384);
        assert_eq!(t.footprint(), 131072 + 16384);
        assert_eq!(t.span(), SimTime::from_us(2));
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.footprint(), 0);
        assert_eq!(t.span(), SimTime::ZERO);
    }

    #[test]
    fn from_iterator_collects() {
        let t: Trace = (0..5).map(|i| req(i, IoOp::Read, i * 4096, 4096)).collect();
        assert_eq!(t.len(), 5);
    }
}
