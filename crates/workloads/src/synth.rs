//! Synthetic block-trace generation.
//!
//! The generator reproduces the workload characteristics the paper's
//! evaluation depends on (Table II): the **read ratio** (fraction of read
//! requests) and the **cold-read ratio** (fraction of reads to pages never
//! updated during the workload — the reads whose long retention age makes
//! read-retry likely, §VI-A).
//!
//! Mechanism: the logical address space is split into a *hot* region —
//! which receives all writes and the non-cold reads, with Zipfian locality
//! — and a *cold* region that is only ever read. Reads target the cold
//! region with probability `cold_read_ratio`, which pins the measured
//! ratio to the configured one by construction.

use rif_events::{SimRng, SimTime, ZipfTable};

use crate::trace::{IoOp, IoRequest, Trace};

/// Configuration of the synthetic trace generator.
///
/// # Example
///
/// ```
/// use rif_workloads::SynthConfig;
/// use rif_workloads::stats::TraceStats;
///
/// let cfg = SynthConfig {
///     read_ratio: 0.9,
///     cold_read_ratio: 0.7,
///     ..SynthConfig::default()
/// };
/// let trace = cfg.generate(2000, 42);
/// let stats = TraceStats::compute(&trace);
/// assert!((stats.read_ratio - 0.9).abs() < 0.05);
/// assert!((stats.cold_read_ratio - 0.7).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Fraction of requests that are reads.
    pub read_ratio: f64,
    /// Fraction of reads that target never-written (cold) pages.
    pub cold_read_ratio: f64,
    /// Size of the hot (written) region in bytes.
    pub hot_region_bytes: u64,
    /// Size of the cold (read-only) region in bytes.
    pub cold_region_bytes: u64,
    /// Zipf exponent for hot-region locality (0 = uniform).
    pub zipf_s: f64,
    /// Request size in bytes (must be a multiple of `align_bytes`);
    /// the paper's root-cause analysis uses 256-KiB host reads split into
    /// 64-KiB multi-plane commands, and cloud block traces are dominated
    /// by mid-size requests.
    pub request_bytes: u32,
    /// Address alignment (one flash page).
    pub align_bytes: u32,
    /// Mean request interarrival time in nanoseconds (Poisson process).
    pub mean_interarrival_ns: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            read_ratio: 0.5,
            cold_read_ratio: 0.7,
            hot_region_bytes: 4 << 30,   // 4 GiB
            cold_region_bytes: 16 << 30, // 16 GiB
            zipf_s: 0.9,
            request_bytes: 64 * 1024,
            align_bytes: 16 * 1024,
            // 64-KiB requests every 8 µs ≈ 8 GB/s offered load: enough to
            // saturate the PCIe 4.0 x4 host link of Table I.
            mean_interarrival_ns: 8_000.0,
        }
    }
}

impl SynthConfig {
    /// Generates `n_requests` requests with the configured mix.
    ///
    /// # Panics
    ///
    /// Panics if ratios are outside `[0, 1]`, regions are smaller than one
    /// request, or `request_bytes` is not aligned.
    pub fn generate(&self, n_requests: usize, seed: u64) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.read_ratio),
            "read ratio {} out of range",
            self.read_ratio
        );
        assert!(
            (0.0..=1.0).contains(&self.cold_read_ratio),
            "cold-read ratio {} out of range",
            self.cold_read_ratio
        );
        assert!(
            self.request_bytes > 0 && self.request_bytes % self.align_bytes == 0,
            "request size must be a positive multiple of the alignment"
        );
        assert!(
            self.hot_region_bytes >= self.request_bytes as u64
                && self.cold_region_bytes >= self.request_bytes as u64,
            "regions must fit at least one request"
        );

        let mut rng = SimRng::seed_from(seed);
        // Hot-region slots, Zipf-ranked for locality.
        let hot_slots = (self.hot_region_bytes / self.request_bytes as u64).max(1) as usize;
        let zipf = ZipfTable::new(hot_slots.min(65_536), self.zipf_s);
        let cold_slots = (self.cold_region_bytes / self.request_bytes as u64).max(1);
        let cold_base = self.hot_region_bytes;
        let hot_slot = |rng: &mut SimRng| -> u64 {
            let rank = rng.zipf(&zipf) as u64;
            // Spread Zipf ranks over the full slot count when the region
            // exceeds the table size.
            let stride = (hot_slots as u64 / zipf.len() as u64).max(1);
            (rank * stride + rng.int_range(0, stride)) % hot_slots as u64
        };

        // First pass: arrivals, op mix, write targets. Hot (non-cold) read
        // targets are resolved in a second pass so they can be drawn from
        // the slots the trace actually writes — a read is only "not cold"
        // if its page is updated somewhere in the workload.
        let mut now_ns = 0.0f64;
        let mut requests = Vec::with_capacity(n_requests);
        let mut pending_hot_reads = Vec::new();
        let mut written_slots = Vec::new();
        let mut written_set = std::collections::HashSet::new();
        for _ in 0..n_requests {
            now_ns += rng.exponential(1.0 / self.mean_interarrival_ns);
            let arrival = SimTime::from_ns(now_ns as u64);
            let is_read = rng.chance(self.read_ratio);
            let offset = if !is_read {
                let slot = hot_slot(&mut rng);
                if written_set.insert(slot) {
                    written_slots.push(slot);
                }
                slot * self.request_bytes as u64
            } else if rng.chance(self.cold_read_ratio) {
                // Cold read: uniform over the read-only region.
                let slot = rng.int_range(0, cold_slots);
                cold_base + slot * self.request_bytes as u64
            } else {
                pending_hot_reads.push(requests.len());
                0 // placeholder, resolved below
            };
            requests.push(IoRequest {
                arrival,
                op: if is_read { IoOp::Read } else { IoOp::Write },
                offset,
                bytes: self.request_bytes,
            });
        }

        // Second pass: point hot reads at written slots. In the degenerate
        // all-reads case there are no written slots; fall back to Zipf over
        // the hot region (every read is then cold by definition).
        for idx in pending_hot_reads {
            let slot = if written_slots.is_empty() {
                hot_slot(&mut rng)
            } else {
                written_slots[rng.index(written_slots.len())]
            };
            requests[idx].offset = slot * self.request_bytes as u64;
        }
        Trace::new(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn ratios_match_configuration() {
        for &(rr, cr) in &[(0.27, 0.50), (0.96, 0.79), (0.70, 0.82)] {
            let cfg = SynthConfig {
                read_ratio: rr,
                cold_read_ratio: cr,
                ..SynthConfig::default()
            };
            let t = cfg.generate(4000, 7);
            let s = TraceStats::compute(&t);
            assert!(
                (s.read_ratio - rr).abs() < 0.04,
                "read ratio {} vs {rr}",
                s.read_ratio
            );
            assert!(
                (s.cold_read_ratio - cr).abs() < 0.05,
                "cold ratio {} vs {cr}",
                s.cold_read_ratio
            );
        }
    }

    #[test]
    fn offered_load_matches_interarrival() {
        let cfg = SynthConfig::default();
        let t = cfg.generate(5000, 9);
        let span_s = t.span().as_secs();
        let offered = t.total_bytes() as f64 / span_s;
        // 64 KiB / 8 µs = 8.19 GB/s.
        assert!((offered - 8.19e9).abs() / 8.19e9 < 0.1, "offered {offered}");
    }

    #[test]
    fn addresses_are_aligned_and_bounded() {
        let cfg = SynthConfig::default();
        let t = cfg.generate(2000, 11);
        let bound = cfg.hot_region_bytes + cfg.cold_region_bytes;
        for r in &t {
            assert_eq!(r.offset % cfg.align_bytes as u64, 0);
            assert!(r.end() <= bound, "request beyond footprint: {r:?}");
        }
    }

    #[test]
    fn writes_stay_in_hot_region() {
        let cfg = SynthConfig {
            read_ratio: 0.3,
            ..SynthConfig::default()
        };
        let t = cfg.generate(3000, 13);
        for r in &t {
            if !r.is_read() {
                assert!(r.end() <= cfg.hot_region_bytes, "write outside hot region");
            }
        }
    }

    #[test]
    fn hot_reads_show_locality() {
        // With a strong Zipf exponent, some hot slots are read far more
        // often than the uniform expectation.
        let cfg = SynthConfig {
            read_ratio: 1.0,
            cold_read_ratio: 0.0,
            zipf_s: 1.1,
            ..SynthConfig::default()
        };
        let t = cfg.generate(5000, 17);
        // Regression: peak_offset_frequency replaces an inline
        // max().unwrap() that panicked on empty histograms.
        let max = t.peak_offset_frequency();
        let distinct = t.distinct_offsets();
        assert!(
            max > 5000 / distinct * 10,
            "no hot spot: max {max}, distinct {distinct}"
        );
    }

    #[test]
    fn peak_offset_frequency_of_empty_trace_is_zero() {
        assert_eq!(Trace::default().peak_offset_frequency(), 0);
        assert_eq!(Trace::default().distinct_offsets(), 0);
        let t = SynthConfig::default().generate(100, 1);
        assert!(t.peak_offset_frequency() >= 1);
        assert!(t.distinct_offsets() >= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::default();
        let a = cfg.generate(100, 3);
        let b = cfg.generate(100, 3);
        assert_eq!(a.requests(), b.requests());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_read_ratio() {
        let cfg = SynthConfig {
            read_ratio: 1.5,
            ..SynthConfig::default()
        };
        let _ = cfg.generate(10, 1);
    }
}
