//! Partition contract tests (satellite of the cluster-hardening PR).
//!
//! Two layers:
//!
//! * a raw wire probe of the [`PartitionSwitch`] itself — one-way
//!   blackholes eat frames in exactly one direction, connections stay
//!   up, and the proxy heals cleanly when the switch flips back;
//! * a cluster scenario combining a one-way router→node partition with
//!   a node hard-kill under a replicated map: the partition surfaces
//!   only as timeouts that fail over to a follower — the strict
//!   accounting contract PASSES, connections were really severed
//!   (`conn_losses > 0`), and no write is duplicated or lost.

use std::time::{Duration, Instant};

use rif_chaos::cluster::{run_cluster_scenario, ClusterScenarioConfig};
use rif_chaos::plan::{Direction, FaultPlan};
use rif_chaos::proxy::ChaosProxy;
use rif_server::client::Conn;
use rif_server::protocol::{decode_response, Request, Response};
use rif_server::server::{Server, ServerConfig};

/// Pumps `conn` until a frame arrives or `window` elapses.
fn try_response(conn: &mut Conn, window: Duration) -> Option<Response> {
    let deadline = Instant::now() + window;
    while Instant::now() < deadline {
        if let Ok(Some(payload)) = conn.next_frame() {
            return Some(decode_response(&payload).expect("decodable"));
        }
        conn.pump().expect("conn alive");
        std::thread::sleep(Duration::from_millis(1));
    }
    None
}

#[test]
fn one_way_partition_blackholes_one_direction_and_heals() {
    let server = Server::start(
        ServerConfig {
            shards: 2,
            time_scale: 200.0,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind server");
    // A fault-free plan: the only hostility is the partition switch.
    let proxy = ChaosProxy::start(0, server.local_addr(), FaultPlan::default()).expect("proxy");
    let mut conn = Conn::connect(&proxy.local_addr().to_string()).expect("connect via proxy");

    let read = |tag: u64| Request::Read {
        tenant: 0,
        tag,
        offset: 4096 * tag,
        bytes: 4096,
    };

    // Healthy path first.
    conn.send(&read(1)).expect("send");
    match try_response(&mut conn, Duration::from_secs(5)) {
        Some(Response::Done { tag, .. }) => assert_eq!(tag, 1),
        other => panic!("healthy read failed: {other:?}"),
    }

    // Partition the *down* direction: requests still reach the server,
    // but its replies vanish mid-path. The TCP connection stays up —
    // this is a blackhole, not a reset.
    proxy.set_partition(Direction::Down, true);
    conn.send(&read(2)).expect("send during partition");
    assert!(
        try_response(&mut conn, Duration::from_millis(300)).is_none(),
        "a down-partitioned proxy must not deliver replies"
    );

    // Heal. The eaten reply is gone forever (tag 2 was consumed while
    // the blackhole was up), but new traffic flows again on the SAME
    // connection.
    proxy.set_partition(Direction::Down, false);
    conn.send(&read(3)).expect("send after heal");
    match try_response(&mut conn, Duration::from_secs(5)) {
        Some(Response::Done { tag, .. }) => assert_eq!(tag, 3),
        other => panic!("healed read failed: {other:?}"),
    }

    let stats = proxy.stats();
    assert!(
        stats.partitioned >= 1,
        "partition never ate a frame: {stats:?}"
    );
    proxy.stop();
    server.stop();
}

#[test]
fn partition_plus_kill_keeps_the_contract_and_replicated_reads() {
    // One-way router→node partition on node 1 while the legacy kill
    // takes down the hottest node: reads must ride the replica set
    // through both faults. Three nodes keep a live unpartitioned
    // replica for every range — with R = 2 the claim "replicated reads
    // never fail" only holds when the fault set doesn't cover an entire
    // replica set, and that is exactly the grid this test pins.
    let plan = FaultPlan::parse("seed=9,part=1:up@120+250").expect("valid plan");
    let cfg = ClusterScenarioConfig {
        requests: 12_000,
        nodes: 3,
        replicas: 2,
        seed: 11,
        plan,
        kill_after: Duration::from_millis(150),
        rebalance_after: Duration::from_millis(100),
        request_deadline: Duration::from_millis(300),
        ..ClusterScenarioConfig::default()
    };
    let out = run_cluster_scenario(&cfg).expect("scenario runs");

    // The faults actually happened…
    assert_eq!(out.kills_fired, 1, "kill never fired: {:?}", out.report);
    assert!(out.partitions_fired >= 1, "partition never opened");
    assert!(!out.killed.is_empty());
    assert!(
        out.journal.conn_losses > 0,
        "a hard kill must sever connections: {:?}",
        out.report
    );
    let faults = out
        .faults
        .as_ref()
        .expect("proxied run reports fault stats");
    assert!(
        faults.partitioned > 0,
        "partition never ate a frame: {faults:?}"
    );

    // …and the contract held anyway: every request resolved exactly
    // once (no duplicate receipts, no unknown receipts, zero accounting
    // gap) and every read chain on the replicated map ended in DONE.
    assert!(out.verdict.pass, "{}", out.verdict.to_json());
    assert_eq!(
        out.failed_replicated_reads, 0,
        "replicated reads failed: {:?}",
        out.report
    );
    // Writes are never duplicated by failover: duplicate receipts only
    // ever come from tombstoned timeouts, which the checker audits, and
    // the journal shows real progress despite the outage.
    assert!(out.report.completed > out.report.busy_dropped);
}
