//! Failover × capture regression (satellite of the cluster-hardening
//! PR): when the router re-issues a read after losing a connection,
//! the re-issue must link `retry_of` on the wire so the server-side
//! TraceRecorder dedups it — the capture journals each *logical*
//! request at most once, no matter how many times the router retried
//! it. Without the link every re-issue would admit as a fresh logical
//! request and replay would inflate the workload.
//!
//! A reset-only plan keeps the audit strict (resets can't mangle or
//! duplicate frames), so the same run also proves the failover path
//! preserves exactly-once accounting end to end.

use std::time::Duration;

use rif_chaos::contract::ContractChecker;
use rif_chaos::plan::FaultPlan;
use rif_chaos::proxy::ChaosProxy;
use rif_cluster::{Directory, NodeInfo, RouterConfig, ShardMap};
use rif_server::server::{Server, ServerConfig};
use rif_workloads::Capture;

const RANGES: u32 = 4;
const CAPACITY: u64 = 8 << 30;

#[test]
fn router_failover_retries_dedup_in_the_capture() {
    let requests: u64 = 6_000;
    // Resets only: connections die mid-flight, replies get lost, and
    // the router re-issues the orphaned reads with `retry_of` links.
    let plan = FaultPlan::parse("seed=23,up.reset=0.002,down.reset=0.002").expect("valid plan");

    let server = Server::start(
        ServerConfig {
            shards: RANGES as usize,
            capacity_bytes: CAPACITY,
            cluster: true,
            capture: true,
            time_scale: 200.0,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind server");
    let proxy = ChaosProxy::start(0, server.local_addr(), plan.clone()).expect("bind proxy");
    let map = ShardMap::rebalanced(
        1,
        CAPACITY,
        RANGES,
        vec![NodeInfo {
            id: "a".into(),
            addr: proxy.local_addr().to_string(),
        }],
    )
    .expect("valid map");
    let dir = Directory::start(map, 0).expect("directory starts");

    let (report, journal) = rif_cluster::run_routed(&RouterConfig {
        directory: dir.addr().to_string(),
        requests,
        depth: 16,
        read_ratio: 1.0,
        seed: 29,
        request_deadline: Duration::from_millis(250),
        ..RouterConfig::default()
    })
    .expect("routed load");

    let faults = proxy.stats();
    let cap = server.recorder().capture();
    dir.stop();
    proxy.stop();
    server.stop();

    // The link really flapped and the router really retried.
    assert!(faults.resets > 0, "plan was supposed to reset: {faults:?}");
    assert!(journal.conn_losses > 0, "resets were not client-visible");
    let retries = journal
        .records
        .iter()
        .filter(|r| r.retry_of.is_some())
        .count();
    assert!(retries > 0, "failover path never re-issued a request");

    // Exactly-once held through the failovers (reset-only plans audit
    // strictly — nothing in this plan may duplicate or mangle).
    let verdict = ContractChecker::for_plan(&plan).check(&journal, &report, requests);
    assert!(verdict.pass, "{}", verdict.to_json());

    // THE regression: the capture holds at most one admission per
    // *logical* request (journal roots), not per wire submission. A
    // router that forgot the `retry_of` link would blow past this.
    let roots = journal
        .records
        .iter()
        .filter(|r| r.retry_of.is_none())
        .count();
    assert!(!cap.is_empty(), "a served load must journal something");
    assert!(
        cap.len() <= roots,
        "capture admitted retries as fresh requests: {} admissions > {} logical requests \
         ({} wire submissions)",
        cap.len(),
        roots,
        journal.records.len()
    );

    // And the capture still round-trips byte-identically.
    let csv = cap.to_csv();
    let parsed = Capture::parse_csv(&csv).expect("capture parses");
    assert_eq!(parsed.to_csv(), csv, "CSV round trip is byte-identical");
}
