//! End-to-end chaos scenarios against a live in-process server.
//!
//! These are the acceptance tests for the serving-layer robustness
//! contract: a transparent (fault-free) proxy changes nothing, a faulty
//! plan still yields a PASS verdict with every operation accounted for,
//! the fault schedule and verdict reproduce bit-for-bit under the same
//! seed, and a worker kill mid-load never hangs the run.

use std::time::Duration;

use rif_chaos::plan::{schedule_json, FaultPlan};
use rif_chaos::scenario::{run_scenario, ScenarioConfig};

fn quick(plan: FaultPlan, requests: usize) -> ScenarioConfig {
    ScenarioConfig {
        plan,
        requests,
        connections: 2,
        depth: 8,
        shards: 2,
        time_scale: 200.0,
        workload_seed: 11,
        read_ratio: 0.9,
        request_deadline: Duration::from_millis(250),
    }
}

#[test]
fn transparent_proxy_changes_nothing() {
    let outcome = run_scenario(&quick(FaultPlan::default(), 1_500)).unwrap();
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    assert_eq!(outcome.report.completed, 1_500);
    assert_eq!(outcome.report.protocol_errors, 0);
    assert_eq!(outcome.faults.faults(), 0);
    assert!(outcome.faults.forwarded > 0);
}

#[test]
fn faulty_plan_still_passes_contract() {
    let plan = FaultPlan::parse(
        "seed=42,up.drop=0.05,down.drop=0.05,down.delay=0.05,down.delay_us=1000,up.dup=0.02",
    )
    .unwrap();
    let outcome = run_scenario(&quick(plan, 2_000)).unwrap();
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    // The proxy really did inject faults…
    assert!(outcome.faults.dropped > 0, "{:?}", outcome.faults);
    assert!(outcome.faults.delayed > 0, "{:?}", outcome.faults);
    assert!(outcome.faults.duplicated > 0, "{:?}", outcome.faults);
    // …and the ledger still accounts for every operation.
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        2_000
    );
    // Dropped frames must surface as timeouts/retries, not silence.
    assert!(outcome.report.timed_out > 0 || outcome.report.conn_errors > 0);
}

#[test]
fn resets_force_reconnects_not_hangs() {
    let plan = FaultPlan::parse("seed=5,up.reset=0.002,down.reset=0.002").unwrap();
    let outcome = run_scenario(&quick(plan, 1_500)).unwrap();
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    assert!(outcome.faults.resets > 0, "{:?}", outcome.faults);
    assert!(outcome.report.reconnects > 0);
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        1_500
    );
}

#[test]
fn corruption_never_breaks_the_contract() {
    let plan = FaultPlan::parse("seed=13,up.corrupt=0.01,down.corrupt=0.01").unwrap();
    let outcome = run_scenario(&quick(plan, 1_500)).unwrap();
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    assert!(outcome.faults.corrupted > 0, "{:?}", outcome.faults);
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        1_500
    );
}

#[test]
fn same_seed_reproduces_schedule_and_verdict() {
    let plan =
        FaultPlan::parse("seed=777,up.drop=0.1,down.delay=0.05,down.delay_us=500,up.dup=0.02")
            .unwrap();
    // The schedule is a pure function of the plan.
    assert_eq!(schedule_json(&plan, 4, 512), schedule_json(&plan, 4, 512));
    // And both runs audit to the same (byte-identical) verdict.
    let a = run_scenario(&quick(plan.clone(), 1_200)).unwrap();
    let b = run_scenario(&quick(plan, 1_200)).unwrap();
    assert!(a.verdict.pass, "{}", a.verdict.to_json());
    assert_eq!(a.verdict.to_json(), b.verdict.to_json());
}

#[test]
fn worker_kill_mid_load_never_hangs() {
    // Kill shard 0 once 300 client frames have flowed; dead for 50ms.
    let plan = FaultPlan::parse("seed=21,kill=0@300+50").unwrap();
    let outcome = run_scenario(&quick(plan, 2_000)).unwrap();
    assert_eq!(outcome.kills_fired, 1);
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    // The run finished (we got here) and every op is accounted for.
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        2_000
    );
    // Work kept completing after the kill: with only ~300 frames before
    // the crash, most of the run happened against a wounded-then-healed
    // server.
    assert!(
        outcome.report.completed > 1_000,
        "completed={}",
        outcome.report.completed
    );
}
