//! Chaos gate for the capture→replay cycle: a server journaling its
//! load behind a lossy, duplicating proxy must still (a) satisfy the
//! client contract and (b) emit a capture that round-trips and replays
//! deterministically offline. Faults mangle *wire traffic*; the journal
//! records *admissions* — chaos on the path must never corrupt it.

use std::time::Duration;

use rif_chaos::contract::ContractChecker;
use rif_chaos::plan::FaultPlan;
use rif_chaos::proxy::ChaosProxy;
use rif_server::client::{run_load_journaled, LoadConfig};
use rif_server::server::{Server, ServerConfig};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::Capture;

#[test]
fn capture_survives_drops_and_dups() {
    let requests = 2_000;
    let plan =
        FaultPlan::parse("seed=77,up.drop=0.05,down.drop=0.05,up.dup=0.02,down.dup=0.02").unwrap();

    let server = Server::start(
        ServerConfig {
            shards: 2,
            time_scale: 200.0,
            capture: true,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind server");
    let proxy = ChaosProxy::start(0, server.local_addr(), plan.clone()).expect("bind proxy");

    let (report, journal) = run_load_journaled(&LoadConfig {
        addr: proxy.local_addr().to_string(),
        connections: 2,
        depth: 8,
        requests,
        read_ratio: 0.9,
        seed: 19,
        request_deadline: Duration::from_millis(250),
        ..LoadConfig::default()
    })
    .expect("load run");

    let faults = proxy.stats();
    let cap = server.recorder().capture();
    proxy.stop();
    server.stop();

    // The proxy really was hostile…
    assert!(faults.dropped > 0, "{faults:?}");
    assert!(faults.duplicated > 0, "{faults:?}");

    // …yet the client contract held: every op resolved exactly once.
    let verdict = ContractChecker::for_plan(&plan).check(&journal, &report, requests as u64);
    assert!(verdict.pass, "{}", verdict.to_json());

    // The capture is well-formed: it round-trips through its own CSV…
    assert!(!cap.is_empty(), "a served load must journal something");
    let csv = cap.to_csv();
    let parsed = Capture::parse_csv(&csv).expect("chaos capture parses");
    assert_eq!(parsed.to_csv(), csv, "CSV round trip is byte-identical");

    // …and replays cleanly offline, bit-for-bit across repeat runs.
    let replay = |c: &Capture| {
        Simulator::new(SsdConfig::small(RetryKind::Rif, 3000))
            .run(&c.to_trace())
            .to_json()
    };
    let first = replay(&parsed);
    assert_eq!(first, replay(&parsed), "offline replay must be bit-exact");
    assert!(first.contains("\"completed_requests\""));

    // Chaos mangles frames, not the journal: the recorder never records
    // more admissions than the client made wire submissions.
    assert!(
        cap.len() as u64 <= journal.records.len() as u64,
        "capture {} > submissions {}",
        cap.len(),
        journal.records.len()
    );
}
