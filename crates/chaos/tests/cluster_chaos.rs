//! Cluster-level chaos acceptance tests.
//!
//! The headline gate: two cluster nodes behind a shard directory, routed
//! load, one node hard-killed mid-run, its ranges rebalanced onto the
//! survivor — and the strict ContractChecker still passes over the whole
//! cluster journal. Plus the reconnect-backoff regression: a seeded
//! flapping proxy (frequent connection resets with successes in between)
//! must not snowball the client's backoff, because one success resets
//! the per-endpoint strike decay.

use std::time::Duration;

use rif_chaos::cluster::{run_cluster_scenario, ClusterScenarioConfig};
use rif_chaos::plan::FaultPlan;
use rif_chaos::scenario::{run_scenario, ScenarioConfig};

#[test]
fn kill_and_rebalance_passes_the_contract() {
    let outcome = run_cluster_scenario(&ClusterScenarioConfig {
        requests: 20_000,
        seed: 3,
        ..ClusterScenarioConfig::default()
    })
    .expect("cluster scenario runs");
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    // The kill really happened and the directory really rebalanced.
    assert!(outcome.ranges_moved > 0, "kill target owned no ranges");
    assert!(
        outcome.final_epoch >= 2,
        "rebalance must bump the epoch: {}",
        outcome.final_epoch
    );
    // The kill landed *mid-run*: the router lost its connection to the
    // dead node. (The rest of the outage can be report-silent by
    // design — refused connects to the dead endpoint are pre-admission
    // refusals — but the severed connection always shows up as a
    // journal-level connection loss.) Zero losses means the load
    // finished before the kill and the scenario proved nothing.
    assert!(
        outcome.journal.conn_losses > 0,
        "kill was not client-visible — load likely finished first: {:?}",
        outcome.report
    );
    // The outage is visible but bounded: the survivor serves a majority
    // of the load after the handover.
    assert!(
        outcome.report.completed > outcome.report.busy_dropped,
        "survivor should complete more than the outage dropped: {:?}",
        outcome.report
    );
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        20_000,
        "ledger gap: {:?}",
        outcome.report
    );
}

#[test]
fn flapping_proxy_does_not_snowball_reconnect_backoff() {
    // A flapping link: both directions reset often enough that every
    // connection dies multiple times, with working stretches in between.
    // Before backoff state was persisted per endpoint *with decay on
    // success*, each flap doubled the reconnect delay for the rest of
    // the run; the symptom was a tail of timed-out operations once
    // delays hit the cap. With the fix the run stays mostly completed.
    let plan = FaultPlan::parse("seed=77,up.reset=0.004,down.reset=0.004").unwrap();
    let outcome = run_scenario(&ScenarioConfig {
        plan,
        requests: 3_000,
        connections: 2,
        depth: 8,
        shards: 2,
        time_scale: 200.0,
        workload_seed: 7,
        read_ratio: 0.9,
        request_deadline: Duration::from_millis(250),
    })
    .expect("scenario runs");
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    assert!(
        outcome.faults.resets >= 5,
        "plan was supposed to flap: {:?}",
        outcome.faults
    );
    assert!(
        outcome.report.reconnects >= 5,
        "client must keep reconnecting through flaps: {:?}",
        outcome.report
    );
    assert!(
        outcome.report.completed > 3_000 / 2,
        "a flapping link with fresh backoff still completes a majority: {:?}",
        outcome.report
    );
}
