//! Cluster-level chaos acceptance tests.
//!
//! The headline gate: two cluster nodes behind a shard directory, routed
//! load, one node hard-killed mid-run, its ranges rebalanced onto the
//! survivor — and the strict ContractChecker still passes over the whole
//! cluster journal. Plus the reconnect-backoff regression: a seeded
//! flapping proxy (frequent connection resets with successes in between)
//! must not snowball the client's backoff, because one success resets
//! the per-endpoint strike decay.
//!
//! On top of the single-kill gate sits the durability matrix
//! ([`durability_matrix_partition_x_kills_x_migration`]): a grid of
//! partition direction × kill schedule × migration-in-flight cells over
//! a replicated 3-node cluster, every cell audited with the same
//! checker and required to keep replicated reads at 100% availability.

use std::time::Duration;

use rif_chaos::cluster::{run_cluster_scenario, ClusterScenarioConfig};
use rif_chaos::plan::{seeded_multi_kills, FaultPlan};
use rif_chaos::scenario::{run_scenario, ScenarioConfig};

#[test]
fn kill_and_rebalance_passes_the_contract() {
    let outcome = run_cluster_scenario(&ClusterScenarioConfig {
        requests: 20_000,
        seed: 3,
        ..ClusterScenarioConfig::default()
    })
    .expect("cluster scenario runs");
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    // The kill really happened and the directory really rebalanced.
    assert!(outcome.ranges_moved > 0, "kill target owned no ranges");
    assert!(
        outcome.final_epoch >= 2,
        "rebalance must bump the epoch: {}",
        outcome.final_epoch
    );
    // The kill landed *mid-run*: the router lost its connection to the
    // dead node. (The rest of the outage can be report-silent by
    // design — refused connects to the dead endpoint are pre-admission
    // refusals — but the severed connection always shows up as a
    // journal-level connection loss.) Zero losses means the load
    // finished before the kill and the scenario proved nothing.
    assert!(
        outcome.journal.conn_losses > 0,
        "kill was not client-visible — load likely finished first: {:?}",
        outcome.report
    );
    // The outage is visible but bounded: the survivor serves a majority
    // of the load after the handover.
    assert!(
        outcome.report.completed > outcome.report.busy_dropped,
        "survivor should complete more than the outage dropped: {:?}",
        outcome.report
    );
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        20_000,
        "ledger gap: {:?}",
        outcome.report
    );
}

/// The ISSUE's acceptance gate, verbatim: replication factor 2, a
/// seeded schedule that hard-kills the primary of the hottest range
/// (legacy hottest-node kill — node `b` on this map) and imposes a
/// one-way partition on a *second* node mid-20k-request-load. The
/// strict checker must PASS, no read of a replicated range may fail,
/// and a directory restart mid-run must restore the same epoch/map
/// byte-identically.
#[test]
fn replication_gate_kill_plus_partition_keeps_reads_flowing() {
    let plan = FaultPlan::parse("seed=9,part=2:up@120+250").expect("valid plan");
    let outcome = run_cluster_scenario(&ClusterScenarioConfig {
        requests: 20_000,
        nodes: 3,
        replicas: 2,
        seed: 11,
        plan,
        kill_after: Duration::from_millis(150),
        rebalance_after: Duration::from_millis(100),
        request_deadline: Duration::from_millis(300),
        dir_restart_after: Some(Duration::from_millis(350)),
        ..ClusterScenarioConfig::default()
    })
    .expect("cluster scenario runs");
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    assert_eq!(outcome.killed, "b", "hottest-range primary must die");
    assert_eq!(outcome.kills_fired, 1);
    assert!(outcome.partitions_fired >= 1, "partition never opened");
    assert!(
        outcome.journal.conn_losses > 0,
        "kill was not client-visible"
    );
    assert_eq!(
        outcome.failed_replicated_reads, 0,
        "replicated reads failed: {:?}",
        outcome.report
    );
    assert_eq!(
        outcome.dir_restart_identical,
        Some(true),
        "directory restart did not restore the map byte-identically"
    );
    assert_eq!(
        outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
        20_000,
        "ledger gap: {:?}",
        outcome.report
    );
}

/// The durability matrix: partition direction × kill schedule ×
/// migration-in-flight, every cell on a replicated map. Single-kill
/// cells run 3 nodes (the validated minimum where the fault set always
/// leaves each replica set a live member); seeded multi-kill cells run
/// 4 nodes so two kills still leave a replicated fleet. Every cell
/// must pass the strict contract AND keep replicated reads at 100%.
#[test]
fn durability_matrix_partition_x_kills_x_migration() {
    use rif_chaos::plan::Direction;

    for &dir in &[Direction::Up, Direction::Down] {
        for &multi_kill in &[false, true] {
            for &migrate in &[false, true] {
                let dir_word = match dir {
                    Direction::Up => "up",
                    Direction::Down => "down",
                };
                let cell = format!("dir={dir_word} multi_kill={multi_kill} migrate={migrate}");
                let nodes = if multi_kill { 4 } else { 3 };
                let mut plan = FaultPlan::parse(&format!("seed=9,part=1:{dir_word}@120+250"))
                    .expect("valid plan");
                let expected_kills = if multi_kill {
                    // A seeded schedule: deterministic targets and fire
                    // times, never the whole fleet.
                    plan.node_kills = seeded_multi_kills(42, nodes, 2, 500);
                    plan.node_kills.len()
                } else {
                    1 // legacy hottest-node kill
                };
                let outcome = run_cluster_scenario(&ClusterScenarioConfig {
                    requests: 12_000,
                    nodes,
                    replicas: 2,
                    seed: 11,
                    plan,
                    kill_after: Duration::from_millis(150),
                    rebalance_after: Duration::from_millis(100),
                    request_deadline: Duration::from_millis(300),
                    migrate_after: migrate.then(|| Duration::from_millis(200)),
                    dir_restart_after: migrate.then(|| Duration::from_millis(350)),
                    ..ClusterScenarioConfig::default()
                })
                .expect("cell runs");
                assert!(
                    outcome.verdict.pass,
                    "[{cell}] {}",
                    outcome.verdict.to_json()
                );
                assert_eq!(
                    outcome.kills_fired, expected_kills,
                    "[{cell}] kills missing"
                );
                assert!(
                    outcome.partitions_fired >= 1,
                    "[{cell}] partition never opened"
                );
                assert_eq!(
                    outcome.failed_replicated_reads, 0,
                    "[{cell}] replicated reads failed: {:?}",
                    outcome.report
                );
                if migrate {
                    assert_eq!(
                        outcome.dir_restart_identical,
                        Some(true),
                        "[{cell}] directory restart diverged"
                    );
                }
                assert_eq!(
                    outcome.report.completed + outcome.report.failed + outcome.report.busy_dropped,
                    12_000,
                    "[{cell}] ledger gap: {:?}",
                    outcome.report
                );
            }
        }
    }
}

#[test]
fn flapping_proxy_does_not_snowball_reconnect_backoff() {
    // A flapping link: both directions reset often enough that every
    // connection dies multiple times, with working stretches in between.
    // Before backoff state was persisted per endpoint *with decay on
    // success*, each flap doubled the reconnect delay for the rest of
    // the run; the symptom was a tail of timed-out operations once
    // delays hit the cap. With the fix the run stays mostly completed.
    let plan = FaultPlan::parse("seed=77,up.reset=0.004,down.reset=0.004").unwrap();
    let outcome = run_scenario(&ScenarioConfig {
        plan,
        requests: 3_000,
        connections: 2,
        depth: 8,
        shards: 2,
        time_scale: 200.0,
        workload_seed: 7,
        read_ratio: 0.9,
        request_deadline: Duration::from_millis(250),
    })
    .expect("scenario runs");
    assert!(outcome.verdict.pass, "{}", outcome.verdict.to_json());
    assert!(
        outcome.faults.resets >= 5,
        "plan was supposed to flap: {:?}",
        outcome.faults
    );
    assert!(
        outcome.report.reconnects >= 5,
        "client must keep reconnecting through flaps: {:?}",
        outcome.report
    );
    assert!(
        outcome.report.completed > 3_000 / 2,
        "a flapping link with fresh backoff still completes a majority: {:?}",
        outcome.report
    );
}
