//! Seeded, serializable fault plans.
//!
//! A [`FaultPlan`] is the complete description of a chaos run: per-direction
//! fault rates, fixed delay magnitude, and a list of worker-kill events.
//! The *fault schedule* — which frame index on which connection suffers
//! which fault — is a pure function of `(plan, connection id, direction)`
//! via [`SimRng::stream`], so two runs with the same plan produce
//! bit-identical schedules regardless of traffic timing, thread
//! interleaving, or how many connections actually show up.
//!
//! Plans round-trip through a compact `key=value` spec string
//! (see [`FaultPlan::parse`] / [`FaultPlan::to_spec`]) so ci scripts and
//! the `rif-chaos` binary can carry them on the command line.

use rif_events::SimRng;

/// Fault rates for one proxy direction (client→server or server→client).
///
/// Each rate is a probability in `[0, 1]` applied independently per frame;
/// the decision is exclusive (a frame suffers at most one fault), sampled
/// against the cumulative distribution in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DirRates {
    /// Probability a frame is silently discarded.
    pub drop: f64,
    /// Probability a frame is held for [`DirRates::delay_us`] before
    /// forwarding.
    pub delay: f64,
    /// Fixed hold time for delayed frames, microseconds.
    pub delay_us: u64,
    /// Probability a frame is forwarded twice back-to-back.
    pub duplicate: f64,
    /// Probability one payload bit is flipped (framing preserved).
    pub corrupt: f64,
    /// Probability the frame is cut mid-payload and the connection
    /// severed — the receiver sees a clean length prefix and then EOF.
    pub truncate: f64,
    /// Probability the connection is reset before the frame is sent.
    pub reset: f64,
}

impl DirRates {
    /// True if any fault can fire in this direction.
    pub fn any(&self) -> bool {
        self.drop > 0.0
            || self.delay > 0.0
            || self.duplicate > 0.0
            || self.corrupt > 0.0
            || self.truncate > 0.0
            || self.reset > 0.0
    }

    fn total(&self) -> f64 {
        self.drop + self.delay + self.duplicate + self.corrupt + self.truncate + self.reset
    }
}

/// One scheduled worker kill: after the proxy has forwarded
/// `after_frames` client→server frames, shard `shard`'s worker crashes
/// and stays dead for `restart_after_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// Shard index (wrapped into the server's shard count at run time).
    pub shard: usize,
    /// Client→server frame count that triggers the kill.
    pub after_frames: u64,
    /// Dead window before the worker restarts, milliseconds.
    pub restart_after_ms: u64,
}

/// One scheduled *node* hard-kill in a cluster scenario: node index
/// `node` (wrapped into the cluster size at run time) is killed
/// `after_ms` milliseconds into the load and never restarts. The
/// directory rebalances it away after the scenario's outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeKillSpec {
    /// Cluster node index.
    pub node: usize,
    /// Load runtime before the kill fires, milliseconds.
    pub after_ms: u64,
}

/// One scheduled asymmetric network partition: the named direction of
/// node `node`'s fault proxy blackholes every frame from `after_ms` for
/// `dur_ms`. One direction only — the other keeps flowing, which is the
/// nasty case: requests that arrive but whose answers vanish (or the
/// reverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionSpec {
    /// Cluster node index whose proxy partitions.
    pub node: usize,
    /// Which direction goes dark (`Up` = toward the node).
    pub dir: Direction,
    /// Load runtime before the partition starts, milliseconds.
    pub after_ms: u64,
    /// Partition duration, milliseconds.
    pub dur_ms: u64,
}

/// Stream salt for [`seeded_multi_kills`] schedules.
const KILL_SCHEDULE_SALT: u64 = 0xC4A0_5EED_4B11_0000;

/// Derives a deterministic multi-kill schedule from `seed`: up to
/// `count` distinct nodes (never all of them — at least one survivor
/// always remains) killed at seeded instants spread across
/// `window_ms`, sorted by fire time.
pub fn seeded_multi_kills(
    seed: u64,
    nodes: usize,
    count: usize,
    window_ms: u64,
) -> Vec<NodeKillSpec> {
    let mut rng = SimRng::stream(seed, KILL_SCHEDULE_SALT);
    let mut avail: Vec<usize> = (0..nodes).collect();
    let count = count.min(nodes.saturating_sub(1));
    let mut kills = Vec::with_capacity(count);
    for i in 0..count as u64 {
        let pick = (rng.next_u64() % avail.len() as u64) as usize;
        let node = avail.swap_remove(pick);
        let slot = (window_ms / (count as u64 + 1)).max(1);
        let after_ms = slot * (i + 1) + rng.next_u64() % slot;
        kills.push(NodeKillSpec { node, after_ms });
    }
    kills.sort_by_key(|k| k.after_ms);
    kills
}

/// A complete, reproducible chaos experiment description.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every fault-decision stream.
    pub seed: u64,
    /// Faults on the client→server direction.
    pub up: DirRates,
    /// Faults on the server→client direction.
    pub down: DirRates,
    /// Scheduled worker kills.
    pub kills: Vec<KillSpec>,
    /// Scheduled cluster-node hard-kills (cluster scenarios only).
    pub node_kills: Vec<NodeKillSpec>,
    /// Scheduled asymmetric partitions (cluster scenarios only).
    pub partitions: Vec<PartitionSpec>,
}

/// Parse failure for a plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError(pub String);

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault-plan spec: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// True if the plan can produce duplicated or divergent frames
    /// (duplicate, corrupt, or truncate in either direction) — the
    /// [`crate::contract::ContractChecker`] relaxes the duplicate-receipt
    /// rules only for such plans.
    pub fn can_duplicate_or_diverge(&self) -> bool {
        self.up.duplicate > 0.0
            || self.up.corrupt > 0.0
            || self.up.truncate > 0.0
            || self.down.duplicate > 0.0
            || self.down.corrupt > 0.0
            || self.down.truncate > 0.0
    }

    /// True if the plan can mangle frame contents (corrupt or truncate in
    /// either direction), which may surface as unknown-tag receipts.
    pub fn can_mangle(&self) -> bool {
        self.up.corrupt > 0.0
            || self.up.truncate > 0.0
            || self.down.corrupt > 0.0
            || self.down.truncate > 0.0
    }

    /// Parses a `key=value[,key=value…]` spec string.
    ///
    /// Keys: `seed`, `<dir>.drop`, `<dir>.delay`, `<dir>.delay_us`,
    /// `<dir>.dup`, `<dir>.corrupt`, `<dir>.trunc`, `<dir>.reset` with
    /// `<dir>` ∈ {`up`, `down`}, plus repeatable
    /// `kill=<shard>@<frames>+<restart_ms>`,
    /// `nodekill=<node>@<after_ms>`, and
    /// `part=<node>:<up|down>@<after_ms>+<dur_ms>`. Empty string → no
    /// faults.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| PlanParseError(format!("`{item}` is not key=value")))?;
            match key {
                "seed" => plan.seed = parse_u64(key, value)?,
                "kill" => plan.kills.push(parse_kill(value)?),
                "nodekill" => plan.node_kills.push(parse_node_kill(value)?),
                "part" => plan.partitions.push(parse_partition(value)?),
                _ => {
                    let (dir, field) = key
                        .split_once('.')
                        .ok_or_else(|| PlanParseError(format!("unknown key `{key}`")))?;
                    let rates = match dir {
                        "up" => &mut plan.up,
                        "down" => &mut plan.down,
                        _ => return Err(PlanParseError(format!("unknown direction `{dir}`"))),
                    };
                    match field {
                        "drop" => rates.drop = parse_rate(key, value)?,
                        "delay" => rates.delay = parse_rate(key, value)?,
                        "delay_us" => rates.delay_us = parse_u64(key, value)?,
                        "dup" => rates.duplicate = parse_rate(key, value)?,
                        "corrupt" => rates.corrupt = parse_rate(key, value)?,
                        "trunc" => rates.truncate = parse_rate(key, value)?,
                        "reset" => rates.reset = parse_rate(key, value)?,
                        _ => return Err(PlanParseError(format!("unknown field `{key}`"))),
                    }
                }
            }
        }
        if plan.up.total() > 1.0 || plan.down.total() > 1.0 {
            return Err(PlanParseError(
                "per-direction fault rates must sum to ≤ 1".into(),
            ));
        }
        Ok(plan)
    }

    /// Canonical spec-string rendering; `parse(to_spec())` round-trips.
    pub fn to_spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        for (name, r) in [("up", &self.up), ("down", &self.down)] {
            for (field, v) in [
                ("drop", r.drop),
                ("delay", r.delay),
                ("dup", r.duplicate),
                ("corrupt", r.corrupt),
                ("trunc", r.truncate),
                ("reset", r.reset),
            ] {
                if v > 0.0 {
                    parts.push(format!("{name}.{field}={v}"));
                }
            }
            if r.delay_us > 0 {
                parts.push(format!("{name}.delay_us={}", r.delay_us));
            }
        }
        for k in &self.kills {
            parts.push(format!(
                "kill={}@{}+{}",
                k.shard, k.after_frames, k.restart_after_ms
            ));
        }
        for k in &self.node_kills {
            parts.push(format!("nodekill={}@{}", k.node, k.after_ms));
        }
        for p in &self.partitions {
            let dir = match p.dir {
                Direction::Up => "up",
                Direction::Down => "down",
            };
            parts.push(format!(
                "part={}:{}@{}+{}",
                p.node, dir, p.after_ms, p.dur_ms
            ));
        }
        parts.join(",")
    }
}

fn parse_rate(key: &str, value: &str) -> Result<f64, PlanParseError> {
    let v: f64 = value
        .parse()
        .map_err(|_| PlanParseError(format!("`{key}={value}`: not a number")))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(PlanParseError(format!(
            "`{key}={value}`: rate must be in [0, 1]"
        )));
    }
    Ok(v)
}

fn parse_u64(key: &str, value: &str) -> Result<u64, PlanParseError> {
    value
        .parse()
        .map_err(|_| PlanParseError(format!("`{key}={value}`: not an integer")))
}

fn parse_node_kill(value: &str) -> Result<NodeKillSpec, PlanParseError> {
    let bad = || PlanParseError(format!("`nodekill={value}`: want <node>@<after_ms>"));
    let (node, after) = value.split_once('@').ok_or_else(bad)?;
    Ok(NodeKillSpec {
        node: node.parse().map_err(|_| bad())?,
        after_ms: after.parse().map_err(|_| bad())?,
    })
}

fn parse_partition(value: &str) -> Result<PartitionSpec, PlanParseError> {
    let bad = || {
        PlanParseError(format!(
            "`part={value}`: want <node>:<up|down>@<after_ms>+<dur_ms>"
        ))
    };
    let (node, rest) = value.split_once(':').ok_or_else(bad)?;
    let (dir, rest) = rest.split_once('@').ok_or_else(bad)?;
    let (after, dur) = rest.split_once('+').ok_or_else(bad)?;
    let dir = match dir {
        "up" => Direction::Up,
        "down" => Direction::Down,
        _ => return Err(bad()),
    };
    Ok(PartitionSpec {
        node: node.parse().map_err(|_| bad())?,
        dir,
        after_ms: after.parse().map_err(|_| bad())?,
        dur_ms: dur.parse().map_err(|_| bad())?,
    })
}

fn parse_kill(value: &str) -> Result<KillSpec, PlanParseError> {
    let bad = || {
        PlanParseError(format!(
            "`kill={value}`: want <shard>@<frames>+<restart_ms>"
        ))
    };
    let (shard, rest) = value.split_once('@').ok_or_else(bad)?;
    let (frames, restart) = rest.split_once('+').ok_or_else(bad)?;
    Ok(KillSpec {
        shard: shard.parse().map_err(|_| bad())?,
        after_frames: frames.parse().map_err(|_| bad())?,
        restart_after_ms: restart.parse().map_err(|_| bad())?,
    })
}

/// Proxy direction, used to derive independent decision streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    Up,
    /// Server → client.
    Down,
}

/// What the plan dictates for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Pass the frame through untouched.
    Forward,
    /// Discard the frame.
    Drop,
    /// Hold the frame for `us` microseconds, then forward it.
    Delay {
        /// Hold time, microseconds.
        us: u64,
    },
    /// Forward the frame twice.
    Duplicate,
    /// Flip payload bit `salt % bits` (evaluated against the actual frame
    /// at apply time; the salt itself is traffic-independent).
    Corrupt {
        /// Seeded bit selector.
        salt: u64,
    },
    /// Send the length prefix plus `keep_permille`/1000 of the payload,
    /// then sever the connection.
    Truncate {
        /// Fraction of payload kept, in thousandths.
        keep_permille: u16,
    },
    /// Reset the connection without sending the frame.
    Reset,
}

/// The deterministic per-`(connection, direction)` fault-decision stream.
///
/// Frame `k`'s decision is drawn from draws `2k` and `2k+1` of
/// `SimRng::stream(plan.seed, stream_index(conn, dir))`: one uniform for
/// the fault class, one raw value for fault parameters. Exactly two draws
/// are consumed per frame whatever the decision, so the stream never
/// depends on earlier outcomes.
#[derive(Debug, Clone)]
pub struct DecisionStream {
    rates: DirRates,
    rng: SimRng,
}

/// Domain-separation salt so chaos streams never collide with workload
/// or simulator streams derived from small indices.
const STREAM_SALT: u64 = 0xC4A0_5EED_0000_0000;

impl DecisionStream {
    /// Stream for connection `conn` in direction `dir` under `plan`.
    pub fn new(plan: &FaultPlan, conn: u64, dir: Direction) -> DecisionStream {
        let rates = match dir {
            Direction::Up => plan.up,
            Direction::Down => plan.down,
        };
        let index = STREAM_SALT | (conn << 1) | matches!(dir, Direction::Down) as u64;
        DecisionStream {
            rates,
            rng: SimRng::stream(plan.seed, index),
        }
    }

    /// Decision for the next frame in this direction.
    pub fn next_decision(&mut self) -> Decision {
        let u = self.rng.uniform();
        let aux = self.rng.next_u64();
        let r = &self.rates;
        let mut edge = r.drop;
        if u < edge {
            return Decision::Drop;
        }
        edge += r.delay;
        if u < edge {
            return Decision::Delay { us: r.delay_us };
        }
        edge += r.duplicate;
        if u < edge {
            return Decision::Duplicate;
        }
        edge += r.corrupt;
        if u < edge {
            return Decision::Corrupt { salt: aux };
        }
        edge += r.truncate;
        if u < edge {
            return Decision::Truncate {
                keep_permille: (aux % 1000) as u16,
            };
        }
        edge += r.reset;
        if u < edge {
            return Decision::Reset;
        }
        Decision::Forward
    }
}

/// Renders the first `frames` decisions for `conns` connections in both
/// directions as canonical JSON — the reproducibility artifact: two runs
/// with the same plan must produce byte-identical schedules.
pub fn schedule_json(plan: &FaultPlan, conns: u64, frames: u64) -> String {
    let mut out = String::from("{\"plan\":\"");
    out.push_str(&plan.to_spec());
    out.push_str("\",\"streams\":[");
    let mut first_stream = true;
    for conn in 0..conns {
        for dir in [Direction::Up, Direction::Down] {
            if !first_stream {
                out.push(',');
            }
            first_stream = false;
            let dir_name = match dir {
                Direction::Up => "up",
                Direction::Down => "down",
            };
            out.push_str(&format!(
                "{{\"conn\":{conn},\"dir\":\"{dir_name}\",\"decisions\":["
            ));
            let mut stream = DecisionStream::new(plan, conn, dir);
            for k in 0..frames {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&decision_label(stream.next_decision()));
            }
            out.push_str("]}");
        }
    }
    out.push_str("]}");
    out
}

fn decision_label(d: Decision) -> String {
    match d {
        Decision::Forward => "\"fwd\"".into(),
        Decision::Drop => "\"drop\"".into(),
        Decision::Delay { us } => format!("\"delay:{us}\""),
        Decision::Duplicate => "\"dup\"".into(),
        Decision::Corrupt { salt } => format!("\"corrupt:{salt}\""),
        Decision::Truncate { keep_permille } => format!("\"trunc:{keep_permille}\""),
        Decision::Reset => "\"reset\"".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let spec =
            "seed=42,up.drop=0.1,up.dup=0.02,down.delay=0.05,down.delay_us=2000,kill=0@500+50";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.up.drop, 0.1);
        assert_eq!(plan.down.delay_us, 2000);
        assert_eq!(
            plan.kills,
            vec![KillSpec {
                shard: 0,
                after_frames: 500,
                restart_after_ms: 50
            }]
        );
        let reparsed = FaultPlan::parse(&plan.to_spec()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("up.drop=2.0").is_err());
        assert!(FaultPlan::parse("sideways.drop=0.1").is_err());
        assert!(FaultPlan::parse("up.drop").is_err());
        assert!(FaultPlan::parse("kill=0@x+1").is_err());
        assert!(FaultPlan::parse("up.drop=0.6,up.delay=0.6").is_err());
        assert!(FaultPlan::parse("nodekill=1").is_err());
        assert!(FaultPlan::parse("part=1:sideways@100+200").is_err());
        assert!(FaultPlan::parse("part=1:up@100").is_err());
    }

    #[test]
    fn cluster_specs_round_trip() {
        let spec = "seed=5,nodekill=1@200,nodekill=0@450,part=1:up@150+300,part=0:down@500+100";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(
            plan.node_kills,
            vec![
                NodeKillSpec {
                    node: 1,
                    after_ms: 200
                },
                NodeKillSpec {
                    node: 0,
                    after_ms: 450
                },
            ]
        );
        assert_eq!(
            plan.partitions,
            vec![
                PartitionSpec {
                    node: 1,
                    dir: Direction::Up,
                    after_ms: 150,
                    dur_ms: 300
                },
                PartitionSpec {
                    node: 0,
                    dir: Direction::Down,
                    after_ms: 500,
                    dur_ms: 100
                },
            ]
        );
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
    }

    #[test]
    fn seeded_multi_kills_are_deterministic_and_spare_a_survivor() {
        let a = seeded_multi_kills(9, 3, 2, 600);
        let b = seeded_multi_kills(9, 3, 2, 600);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Distinct victims, ordered fire times, all inside the window.
        assert_ne!(a[0].node, a[1].node);
        assert!(a[0].after_ms <= a[1].after_ms);
        assert!(a.iter().all(|k| k.after_ms <= 600));
        // Asking for more kills than nodes still leaves one standing.
        assert_eq!(seeded_multi_kills(9, 3, 99, 600).len(), 2);
        // Different seeds give different schedules.
        assert_ne!(seeded_multi_kills(10, 3, 2, 600), a);
    }

    #[test]
    fn empty_spec_is_no_faults() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(!plan.up.any() && !plan.down.any() && plan.kills.is_empty());
        let mut s = DecisionStream::new(&plan, 0, Direction::Up);
        for _ in 0..100 {
            assert_eq!(s.next_decision(), Decision::Forward);
        }
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let plan = FaultPlan::parse("seed=7,up.drop=0.3,down.dup=0.3").unwrap();
        let take = |conn, dir| {
            let mut s = DecisionStream::new(&plan, conn, dir);
            (0..64).map(|_| s.next_decision()).collect::<Vec<_>>()
        };
        assert_eq!(take(0, Direction::Up), take(0, Direction::Up));
        assert_ne!(take(0, Direction::Up), take(1, Direction::Up));
        assert_ne!(take(0, Direction::Up), take(0, Direction::Down));
    }

    #[test]
    fn schedule_json_is_reproducible() {
        let plan = FaultPlan::parse("seed=9,up.drop=0.2,up.corrupt=0.1,down.trunc=0.05").unwrap();
        let a = schedule_json(&plan, 2, 32);
        let b = schedule_json(&plan, 2, 32);
        assert_eq!(a, b);
        assert!(a.contains("\"drop\""));
    }

    #[test]
    fn rates_partition_matches_expectation() {
        // With drop=0.5 on a long stream, roughly half the frames drop.
        let plan = FaultPlan::parse("seed=3,up.drop=0.5").unwrap();
        let mut s = DecisionStream::new(&plan, 0, Direction::Up);
        let drops = (0..10_000)
            .filter(|_| s.next_decision() == Decision::Drop)
            .count();
        assert!((4_000..6_000).contains(&drops), "drops={drops}");
    }
}
