//! Deterministic fault injection and contract checking for the RiF
//! serving layer.
//!
//! The offline crates prove the simulator's *performance* claims; the
//! serving layer ([`rif_server`]) exposes it as a live TCP service; this
//! crate proves that service keeps its *robustness* contract when the
//! network and the workers misbehave:
//!
//! - [`plan`] — seeded, serializable [`FaultPlan`]s whose fault schedule
//!   is a pure function of the seed (vendored xoshiro streams), so every
//!   chaos run reproduces bit-for-bit;
//! - [`proxy`] — a fault-injecting TCP proxy that drops, delays,
//!   duplicates, bit-corrupts, and truncates frames and resets
//!   connections between `rif-client` and `rif-server`;
//! - [`contract`] — the [`ContractChecker`], which audits the client's
//!   request journal: every submitted tag resolves to exactly one of
//!   DONE/BUSY/ERROR or a clean connection error — never silence, never
//!   duplicate completions;
//! - [`scenario`] — one-call harness (server + proxy + journaled client
//!   + worker-kill watcher + audit) used by the ci chaos gate;
//! - [`cluster`] — the multi-node harness: `N` cluster nodes behind a
//!   shard directory, optionally replicated (`replicas >= 2`) and
//!   optionally proxied through the fault plane, with a scheduled
//!   timeline of node hard-kills, asymmetric one-way partitions,
//!   migrations in flight, and directory restarts — audited with the
//!   same checker, plus a replicated-read availability count.
//!
//! Like `rif-server`, everything is plain `std`.
//!
//! # Example
//!
//! ```no_run
//! use rif_chaos::plan::FaultPlan;
//! use rif_chaos::scenario::{run_scenario, ScenarioConfig};
//!
//! let cfg = ScenarioConfig {
//!     plan: FaultPlan::parse("seed=42,up.drop=0.1,down.delay=0.05,down.delay_us=2000").unwrap(),
//!     requests: 10_000,
//!     ..ScenarioConfig::default()
//! };
//! let outcome = run_scenario(&cfg).unwrap();
//! println!("{}", outcome.verdict.to_json());
//! assert!(outcome.verdict.pass);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod contract;
pub mod plan;
pub mod proxy;
pub mod scenario;

pub use cluster::{run_cluster_scenario, ClusterOutcome, ClusterScenarioConfig};
pub use contract::{ContractChecker, ContractVerdict};
pub use plan::{
    seeded_multi_kills, Decision, DecisionStream, DirRates, Direction, FaultPlan, KillSpec,
    NodeKillSpec, PartitionSpec,
};
pub use proxy::{ChaosProxy, FaultStats, FaultStatsSnapshot, PartitionSwitch};
pub use scenario::{run_scenario, ScenarioConfig, ScenarioOutcome};
