//! The fault-injecting TCP proxy.
//!
//! [`ChaosProxy`] listens on a loopback port and forwards each accepted
//! connection to the upstream `rif-server`, pumping the two directions in
//! separate threads. Every *frame* (length-prefixed, reassembled with
//! [`FrameBuffer`] so faults never split the protocol mid-header by
//! accident) is passed through the plan's [`DecisionStream`] for its
//! connection and direction, then forwarded, dropped, delayed,
//! duplicated, bit-corrupted, truncated, or the connection reset.
//!
//! Because decisions are drawn per frame index from a seeded stream, the
//! fault *schedule* is reproducible; the *applied* faults (what traffic
//! actually flowed) are tallied separately in [`FaultStats`].
//!
//! On top of the seeded schedule the proxy supports *asymmetric
//! partitions*: each direction has a [`PartitionSwitch`] flag that, while
//! set, blackholes every complete frame in that direction only. The check
//! runs *before* the decision stream draws, so toggling a partition never
//! consumes RNG draws and never shifts the seeded schedule for the frames
//! that do get through.

use std::io;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rif_server::protocol::FrameBuffer;

use crate::plan::{Decision, DecisionStream, Direction, FaultPlan};

/// Read-timeout used by pump loops so they notice shutdown promptly.
const PUMP_POLL: Duration = Duration::from_millis(10);
/// Accept-loop poll interval.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Shared per-direction partition flags. While a direction is set, every
/// complete frame in that direction is blackholed — the connection stays
/// up, the bytes just vanish, which is exactly what a one-way network
/// partition looks like from both ends.
#[derive(Debug, Default)]
pub struct PartitionSwitch {
    up: AtomicBool,
    down: AtomicBool,
}

impl PartitionSwitch {
    fn flag(&self, dir: Direction) -> &AtomicBool {
        match dir {
            Direction::Up => &self.up,
            Direction::Down => &self.down,
        }
    }

    /// Starts (`true`) or heals (`false`) the partition in `dir`.
    pub fn set(&self, dir: Direction, on: bool) {
        self.flag(dir).store(on, Ordering::SeqCst);
    }

    /// Whether `dir` is currently partitioned.
    pub fn get(&self, dir: Direction) -> bool {
        self.flag(dir).load(Ordering::SeqCst)
    }
}

/// Live fault counters, shared across all pump threads.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Connections accepted.
    pub conns: AtomicU64,
    /// Client→server frames observed (pre-decision).
    pub frames_up: AtomicU64,
    /// Server→client frames observed (pre-decision).
    pub frames_down: AtomicU64,
    /// Frames forwarded untouched.
    pub forwarded: AtomicU64,
    /// Frames discarded.
    pub dropped: AtomicU64,
    /// Frames held before forwarding.
    pub delayed: AtomicU64,
    /// Frames sent twice.
    pub duplicated: AtomicU64,
    /// Frames with a payload bit flipped.
    pub corrupted: AtomicU64,
    /// Frames cut mid-payload (connection severed).
    pub truncated: AtomicU64,
    /// Connections reset by decision.
    pub resets: AtomicU64,
    /// Frames blackholed by an active partition.
    pub partitioned: AtomicU64,
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Connections accepted.
    pub conns: u64,
    /// Client→server frames observed.
    pub frames_up: u64,
    /// Server→client frames observed.
    pub frames_down: u64,
    /// Frames forwarded untouched.
    pub forwarded: u64,
    /// Frames discarded.
    pub dropped: u64,
    /// Frames held before forwarding.
    pub delayed: u64,
    /// Frames sent twice.
    pub duplicated: u64,
    /// Frames with a payload bit flipped.
    pub corrupted: u64,
    /// Frames cut mid-payload.
    pub truncated: u64,
    /// Connections reset by decision.
    pub resets: u64,
    /// Frames blackholed by an active partition.
    pub partitioned: u64,
}

impl FaultStatsSnapshot {
    /// Total faults applied (everything except clean forwards).
    pub fn faults(&self) -> u64 {
        self.dropped
            + self.delayed
            + self.duplicated
            + self.corrupted
            + self.truncated
            + self.resets
            + self.partitioned
    }

    /// Canonical JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"conns\":{},\"frames_up\":{},\"frames_down\":{},",
                "\"forwarded\":{},\"dropped\":{},\"delayed\":{},",
                "\"duplicated\":{},\"corrupted\":{},\"truncated\":{},",
                "\"resets\":{},\"partitioned\":{}}}"
            ),
            self.conns,
            self.frames_up,
            self.frames_down,
            self.forwarded,
            self.dropped,
            self.delayed,
            self.duplicated,
            self.corrupted,
            self.truncated,
            self.resets,
            self.partitioned,
        )
    }
}

impl FaultStats {
    fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            conns: self.conns.load(Ordering::Relaxed),
            frames_up: self.frames_up.load(Ordering::Relaxed),
            frames_down: self.frames_down.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            corrupted: self.corrupted.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            partitioned: self.partitioned.load(Ordering::Relaxed),
        }
    }
}

/// Handle to a running fault-injection proxy.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<FaultStats>,
    partition: Arc<PartitionSwitch>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy on `127.0.0.1:port` (0 = ephemeral) forwarding to
    /// `upstream`.
    pub fn start(port: u16, upstream: SocketAddr, plan: FaultPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(FaultStats::default());
        let partition = Arc::new(PartitionSwitch::default());

        let t_shutdown = Arc::clone(&shutdown);
        let t_stats = Arc::clone(&stats);
        let t_partition = Arc::clone(&partition);
        let accept_thread =
            thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || {
                    accept_loop(listener, upstream, plan, t_shutdown, t_stats, t_partition);
                })?;

        Ok(ChaosProxy {
            addr,
            shutdown,
            stats,
            partition,
            accept_thread: Some(accept_thread),
        })
    }

    /// Address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current fault counters.
    pub fn stats(&self) -> FaultStatsSnapshot {
        self.stats.snapshot()
    }

    /// Client→server frames observed so far — the clock worker-kill
    /// triggers are scheduled against.
    pub fn frames_up(&self) -> u64 {
        self.stats.frames_up.load(Ordering::Relaxed)
    }

    /// Starts (`true`) or heals (`false`) a one-direction partition.
    pub fn set_partition(&self, dir: Direction, on: bool) {
        self.partition.set(dir, on);
    }

    /// The shared partition switch, for schedulers that outlive `&self`.
    pub fn partition_switch(&self) -> Arc<PartitionSwitch> {
        Arc::clone(&self.partition)
    }

    /// Stops accepting, severs pumps, and joins the accept thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    shutdown: Arc<AtomicBool>,
    stats: Arc<FaultStats>,
    partition: Arc<PartitionSwitch>,
) {
    let mut pumps: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut conn_id: u64 = 0;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let id = conn_id;
                conn_id += 1;
                stats.conns.fetch_add(1, Ordering::Relaxed);
                match TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) {
                    Ok(server) => {
                        spawn_conn_pumps(
                            id, client, server, &plan, &shutdown, &stats, &partition, &mut pumps,
                        );
                    }
                    Err(_) => {
                        // Upstream refused: drop the client; it sees a
                        // clean connection error.
                        let _ = client.shutdown(Shutdown::Both);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
        pumps.retain(|h| !h.is_finished());
    }
    for h in pumps {
        let _ = h.join();
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_conn_pumps(
    id: u64,
    client: TcpStream,
    server: TcpStream,
    plan: &FaultPlan,
    shutdown: &Arc<AtomicBool>,
    stats: &Arc<FaultStats>,
    partition: &Arc<PartitionSwitch>,
    pumps: &mut Vec<thread::JoinHandle<()>>,
) {
    // One shared liveness flag: either direction dying severs both, so a
    // Reset decision looks like a whole-connection loss to the client.
    let alive = Arc::new(AtomicBool::new(true));
    // Without nodelay, the per-frame prefix+payload writes interact with
    // Nagle/delayed-ACK into ~40ms stalls per hop — the proxy must add
    // faults, not latency.
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    for dir in [Direction::Up, Direction::Down] {
        let (src, dst) = match dir {
            Direction::Up => (client.try_clone(), server.try_clone()),
            Direction::Down => (server.try_clone(), client.try_clone()),
        };
        let (src, dst) = match (src, dst) {
            (Ok(s), Ok(d)) => (s, d),
            _ => {
                alive.store(false, Ordering::SeqCst);
                let _ = client.shutdown(Shutdown::Both);
                let _ = server.shutdown(Shutdown::Both);
                return;
            }
        };
        let stream = DecisionStream::new(plan, id, dir);
        let t_alive = Arc::clone(&alive);
        let t_shutdown = Arc::clone(shutdown);
        let t_stats = Arc::clone(stats);
        let t_partition = Arc::clone(partition);
        let name = format!(
            "chaos-{}-{id}",
            if matches!(dir, Direction::Up) {
                "up"
            } else {
                "down"
            }
        );
        if let Ok(h) = thread::Builder::new().name(name).spawn(move || {
            pump(
                src,
                dst,
                dir,
                stream,
                t_alive,
                t_shutdown,
                &t_stats,
                &t_partition,
            );
        }) {
            pumps.push(h);
        } else {
            alive.store(false, Ordering::SeqCst);
        }
    }
}

/// Forwards frames from `src` to `dst`, applying one decision per frame.
#[allow(clippy::too_many_arguments)]
fn pump(
    src: TcpStream,
    dst: TcpStream,
    dir: Direction,
    mut decisions: DecisionStream,
    alive: Arc<AtomicBool>,
    shutdown: Arc<AtomicBool>,
    stats: &FaultStats,
    partition: &PartitionSwitch,
) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    let mut src = src;
    let mut dst = dst;
    let mut frames = FrameBuffer::new();
    let mut buf = [0u8; 16 * 1024];
    'outer: loop {
        if shutdown.load(Ordering::SeqCst) || !alive.load(Ordering::SeqCst) {
            break;
        }
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => frames.feed(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
        loop {
            let frame = match frames.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                // Oversized prefix: unrecoverable stream, sever.
                Err(_) => break 'outer,
            };
            let frame_counter = match dir {
                Direction::Up => &stats.frames_up,
                Direction::Down => &stats.frames_down,
            };
            frame_counter.fetch_add(1, Ordering::Relaxed);
            // An active partition blackholes the frame before any
            // decision is drawn: the seeded schedule stays aligned with
            // the frames that actually get a decision.
            if partition.get(dir) {
                stats.partitioned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match decisions.next_decision() {
                Decision::Forward => {
                    stats.forwarded.fetch_add(1, Ordering::Relaxed);
                    if emit(&mut dst, &frame).is_err() {
                        break 'outer;
                    }
                }
                Decision::Drop => {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
                Decision::Delay { us } => {
                    stats.delayed.fetch_add(1, Ordering::Relaxed);
                    thread::sleep(Duration::from_micros(us));
                    if emit(&mut dst, &frame).is_err() {
                        break 'outer;
                    }
                }
                Decision::Duplicate => {
                    stats.duplicated.fetch_add(1, Ordering::Relaxed);
                    if emit(&mut dst, &frame).is_err() || emit(&mut dst, &frame).is_err() {
                        break 'outer;
                    }
                }
                Decision::Corrupt { salt } => {
                    stats.corrupted.fetch_add(1, Ordering::Relaxed);
                    let mut mangled = frame.clone();
                    if !mangled.is_empty() {
                        let bit = (salt % (mangled.len() as u64 * 8)) as usize;
                        mangled[bit / 8] ^= 1 << (bit % 8);
                    }
                    if emit(&mut dst, &mangled).is_err() {
                        break 'outer;
                    }
                }
                Decision::Truncate { keep_permille } => {
                    stats.truncated.fetch_add(1, Ordering::Relaxed);
                    // Honest length prefix, partial payload, then cut: the
                    // receiver blocks on the missing tail until the close
                    // lands, which must surface as a clean conn error.
                    let keep = (frame.len() * keep_permille as usize) / 1000;
                    let mut partial = Vec::with_capacity(4 + keep);
                    partial.extend_from_slice(&(frame.len() as u32).to_le_bytes());
                    partial.extend_from_slice(&frame[..keep]);
                    let _ = dst.write_all(&partial);
                    let _ = dst.flush();
                    break 'outer;
                }
                Decision::Reset => {
                    stats.resets.fetch_add(1, Ordering::Relaxed);
                    break 'outer;
                }
            }
        }
    }
    alive.store(false, Ordering::SeqCst);
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

fn emit(dst: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    // One write per frame: a separate prefix write would hand Nagle a
    // tiny segment to sit on.
    let mut out = Vec::with_capacity(4 + frame.len());
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(frame);
    dst.write_all(&out)?;
    dst.flush()
}
