//! The cluster chaos harness: kills, partitions, and migrations under
//! routed load, audited by the contract checker.
//!
//! `N` cluster nodes serve a shared LBA space behind a shard directory,
//! optionally with per-range replication (`replicas >= 2`: each range
//! has a primary plus rendezvous-chosen followers) and optionally with a
//! fault-injecting [`ChaosProxy`] between the router and every node. A
//! routed closed-loop client drives mixed READ/WRITE traffic while a
//! timeline thread executes the scheduled chaos:
//!
//! - **node kills** — hard-kills ([`Server::kill`]) from the plan's
//!   `nodekill=` schedule (or the legacy hottest-node single kill), each
//!   followed after an outage window by [`rebalance_away`], which on a
//!   replicated map *promotes* surviving followers so the kill loses
//!   capacity but not placement;
//! - **asymmetric partitions** — the plan's `part=` schedule blackholes
//!   one proxy direction only: requests that vanish en route, or
//!   responses that never come back, while the other direction flows;
//! - **migration in flight** — an admin-triggered range migration racing
//!   the faults;
//! - **directory restart** — the directory process stops mid-run and
//!   restarts from its persisted map file, which must restore the epoch
//!   and map byte-identically.
//!
//! The run ends with the same [`ContractChecker`] audit the single-node
//! chaos gate uses, applied to the *whole cluster journal*: every tag
//! the router ever put on the wire resolves exactly once, and
//! `completed + failed + busy_dropped` accounts for every planned
//! request. On a replicated map the outcome additionally counts
//! journal-visible read chains that ended in anything but DONE —
//! [`failed_replicated_reads`], the availability headline: a kill or a
//! one-way partition may cost latency and retries, never the read.
//!
//! [`rebalance_away`]: rif_cluster::Directory::rebalance_away
//! [`failed_replicated_reads`]: ClusterOutcome::failed_replicated_reads

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use rif_cluster::{Directory, NodeInfo, RouterConfig, ShardMap};
use rif_server::client::{Journal, LoadReport, Outcome};
use rif_server::server::{Server, ServerConfig};
use rif_workloads::IoOp;

use crate::contract::{ContractChecker, ContractVerdict};
use crate::plan::{Direction, FaultPlan, NodeKillSpec};
use crate::proxy::{ChaosProxy, FaultStatsSnapshot};

/// Knobs for one cluster chaos run.
#[derive(Debug, Clone)]
pub struct ClusterScenarioConfig {
    /// Total requests through the router.
    pub requests: u64,
    /// Router's global in-flight window.
    pub depth: usize,
    /// LBA ranges in the map (each node runs this many shard workers).
    pub ranges: u32,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Workload seed.
    pub seed: u64,
    /// Virtual-time acceleration of the simulated devices.
    pub time_scale: f64,
    /// Cluster size.
    pub nodes: usize,
    /// Replication factor (1 = no replication; clamped to `nodes`).
    pub replicas: u32,
    /// Wire a [`ChaosProxy`] between the router and every node even if
    /// the plan carries no rates or partitions.
    pub proxied: bool,
    /// Fault plan: per-direction rates for the proxies, plus the
    /// `nodekill=` and `part=` schedules.
    pub plan: FaultPlan,
    /// Legacy single-kill trigger, used only when the plan has no
    /// `nodekill=` entries: the node owning the most ranges is killed
    /// this far into the load. Zero disables the kill.
    pub kill_after: Duration,
    /// Outage window between each kill and its directory rebalance.
    pub rebalance_after: Duration,
    /// Router's per-request deadline (drives read-failover latency).
    pub request_deadline: Duration,
    /// Kick one admin range migration this far into the load.
    pub migrate_after: Option<Duration>,
    /// Stop the directory this far into the load and restart it from
    /// its persisted map file.
    pub dir_restart_after: Option<Duration>,
}

impl Default for ClusterScenarioConfig {
    fn default() -> Self {
        // Sized so the load comfortably outlasts kill + rebalance at the
        // router's measured ~30k rps: the outage must land mid-run, not
        // after the last request settled.
        ClusterScenarioConfig {
            requests: 20_000,
            depth: 32,
            ranges: 4,
            read_ratio: 0.9,
            seed: 1,
            time_scale: 200.0,
            nodes: 2,
            replicas: 1,
            proxied: false,
            plan: FaultPlan::default(),
            kill_after: Duration::from_millis(150),
            rebalance_after: Duration::from_millis(100),
            request_deadline: Duration::from_secs(2),
            migrate_after: None,
            dir_restart_after: None,
        }
    }
}

/// The artifacts of one cluster chaos run.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The router's aggregate report.
    pub report: LoadReport,
    /// The full cluster-wide request journal.
    pub journal: Journal,
    /// The contract audit over that journal.
    pub verdict: ContractVerdict,
    /// Comma-joined ids of the nodes the scenario killed.
    pub killed: String,
    /// Map epoch after the run (initial map is epoch 1).
    pub final_epoch: u64,
    /// Ranges the first kill's rebalance moved off the dead node.
    pub ranges_moved: usize,
    /// Node kills that actually fired.
    pub kills_fired: usize,
    /// Partition windows that actually opened.
    pub partitions_fired: usize,
    /// Journal-visible read chains that ended in anything but DONE, on a
    /// replicated map (always 0 when `replicas < 2` — the claim only
    /// exists under replication).
    pub failed_replicated_reads: u64,
    /// Fault counters summed across all proxies, when proxied.
    pub faults: Option<FaultStatsSnapshot>,
    /// Whether the restarted directory restored its map byte-identically
    /// (set only when the restart event ran).
    pub dir_restart_identical: Option<bool>,
}

/// One scheduled chaos action on the run's timeline.
enum Event {
    Kill(usize),
    Rebalance(usize),
    PartitionOn(usize, Direction),
    PartitionOff(usize, Direction),
    Migrate,
    DirRestart,
}

/// Runs the cluster chaos scenario and audits the journal.
pub fn run_cluster_scenario(cfg: &ClusterScenarioConfig) -> io::Result<ClusterOutcome> {
    let nodes = cfg.nodes.max(1).min(26);
    let replicas = cfg.replicas.clamp(1, nodes as u32);
    let capacity: u64 = 8 << 30;
    let ids: Vec<String> = (0..nodes)
        .map(|i| ((b'a' + i as u8) as char).to_string())
        .collect();

    let mut servers: Vec<Option<Server>> = Vec::with_capacity(nodes);
    for i in 0..nodes {
        servers.push(Some(Server::start(
            ServerConfig {
                shards: cfg.ranges as usize,
                capacity_bytes: capacity,
                cluster: true,
                time_scale: cfg.time_scale,
                seed: cfg.seed + i as u64,
                ..ServerConfig::default()
            },
            0,
        )?));
    }
    let node_addrs: Vec<String> = servers
        .iter()
        .map(|s| s.as_ref().expect("just started").local_addr().to_string())
        .collect();

    // One proxy per node when faults need a wire to live on. The map
    // then advertises the *proxy* addresses, so router traffic, MAP_PUSH,
    // and primary→follower replication all flow through the fault plane.
    let proxied =
        cfg.proxied || !cfg.plan.partitions.is_empty() || cfg.plan.up.any() || cfg.plan.down.any();
    let mut proxies: Vec<ChaosProxy> = Vec::new();
    if proxied {
        for (i, addr) in node_addrs.iter().enumerate() {
            let upstream = addr
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "bad node addr"))?;
            // Per-node seed split: same plan, independent schedules.
            let plan = FaultPlan {
                seed: cfg
                    .plan
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                up: cfg.plan.up,
                down: cfg.plan.down,
                kills: Vec::new(),
                node_kills: Vec::new(),
                partitions: Vec::new(),
            };
            proxies.push(ChaosProxy::start(0, upstream, plan)?);
        }
    }
    let served_addrs: Vec<String> = if proxied {
        proxies.iter().map(|p| p.local_addr().to_string()).collect()
    } else {
        node_addrs.clone()
    };

    let infos: Vec<NodeInfo> = ids
        .iter()
        .zip(&served_addrs)
        .map(|(id, addr)| NodeInfo {
            id: id.clone(),
            addr: addr.clone(),
        })
        .collect();
    let map = ShardMap::replicated(1, capacity, cfg.ranges, infos, replicas)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

    // Kill schedule: the plan's, or the legacy hottest-node single kill.
    let kills: Vec<NodeKillSpec> = if !cfg.plan.node_kills.is_empty() {
        cfg.plan
            .node_kills
            .iter()
            .map(|k| NodeKillSpec {
                node: k.node % nodes,
                after_ms: k.after_ms,
            })
            .collect()
    } else if cfg.kill_after > Duration::ZERO && nodes > 1 {
        let hottest = (0..nodes)
            .max_by_key(|&i| (map.owned_ranges(&ids[i]).len(), nodes - i))
            .expect("at least one node");
        vec![NodeKillSpec {
            node: hottest,
            after_ms: cfg.kill_after.as_millis() as u64,
        }]
    } else {
        Vec::new()
    };
    let ranges_moved = kills
        .first()
        .map(|k| map.owned_ranges(&ids[k.node]).len())
        .unwrap_or(0);

    let dir_path: Option<PathBuf> = cfg.dir_restart_after.map(|_| {
        std::env::temp_dir().join(format!(
            "rif-dirmap-{}-{}.txt",
            std::process::id(),
            cfg.seed
        ))
    });
    let dir = match &dir_path {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            Directory::start_persistent(map.clone(), 0, path)?
        }
        None => Directory::start(map.clone(), 0)?,
    };

    let router_cfg = RouterConfig {
        directory: dir.addr().to_string(),
        requests: cfg.requests,
        depth: cfg.depth,
        read_ratio: cfg.read_ratio,
        seed: cfg.seed,
        request_bytes: 16 * 1024,
        // Budget rides out the whole outage window: a dead or partitioned
        // node's ranges bounce on refusals until failover or the
        // rebalance lands.
        max_busy_retries: 500,
        busy_backoff: Duration::from_millis(1),
        request_deadline: cfg.request_deadline,
        ..RouterConfig::default()
    };

    // Assemble the timeline.
    let mut events: Vec<(Duration, Event)> = Vec::new();
    for k in &kills {
        let at = Duration::from_millis(k.after_ms);
        events.push((at, Event::Kill(k.node)));
        events.push((at + cfg.rebalance_after, Event::Rebalance(k.node)));
    }
    if proxied {
        for p in &cfg.plan.partitions {
            let node = p.node % nodes;
            events.push((
                Duration::from_millis(p.after_ms),
                Event::PartitionOn(node, p.dir),
            ));
            events.push((
                Duration::from_millis(p.after_ms + p.dur_ms),
                Event::PartitionOff(node, p.dir),
            ));
        }
    }
    if let Some(at) = cfg.migrate_after {
        events.push((at, Event::Migrate));
    }
    if let Some(at) = cfg.dir_restart_after {
        events.push((at, Event::DirRestart));
    }
    events.sort_by_key(|(at, _)| *at);

    let mut dir = Some(dir);
    let mut killed_ids: Vec<String> = Vec::new();
    let mut kills_fired = 0usize;
    let mut partitions_fired = 0usize;
    let mut dir_restart_identical: Option<bool> = None;
    let started = Instant::now();
    let loaded = thread::scope(|s| {
        let loader = s.spawn(|| rif_cluster::run_routed(&router_cfg));
        for (at, ev) in events {
            let elapsed = started.elapsed();
            if at > elapsed {
                thread::sleep(at - elapsed);
            }
            match ev {
                Event::Kill(n) => {
                    if let Some(node) = servers[n].take() {
                        node.kill();
                        kills_fired += 1;
                        killed_ids.push(ids[n].clone());
                    }
                }
                Event::Rebalance(n) => {
                    if let Some(d) = &dir {
                        d.rebalance_away(&ids[n]).ok();
                    }
                }
                Event::PartitionOn(n, pdir) => {
                    proxies[n].set_partition(pdir, true);
                    partitions_fired += 1;
                }
                Event::PartitionOff(n, pdir) => {
                    proxies[n].set_partition(pdir, false);
                }
                Event::Migrate => {
                    // Move the lowest range owned by a live node onto a
                    // different live node: a handoff racing the faults.
                    if let Some(d) = &dir {
                        let m = d.map();
                        let live = |id: &str| {
                            servers
                                .iter()
                                .zip(&ids)
                                .any(|(srv, sid)| srv.is_some() && sid == id)
                        };
                        let pick = (0..m.ranges).find_map(|r| {
                            let owner = m.node_of(r).id.clone();
                            if !live(&owner) {
                                return None;
                            }
                            ids.iter()
                                .find(|id| **id != owner && live(id))
                                .map(|to| (r, to.clone()))
                        });
                        if let Some((r, to)) = pick {
                            d.migrate(r, &to).ok();
                        }
                    }
                }
                Event::DirRestart => {
                    if let (Some(d), Some(path)) = (dir.take(), &dir_path) {
                        let before = d.map().to_text();
                        d.stop();
                        match Directory::start_persistent(map.clone(), 0, path) {
                            Ok(fresh) => {
                                dir_restart_identical = Some(fresh.map().to_text() == before);
                                dir = Some(fresh);
                            }
                            Err(_) => dir_restart_identical = Some(false),
                        }
                    }
                }
            }
        }
        loader.join().expect("router thread")
    });

    let final_epoch = dir.as_ref().map(|d| d.map().epoch).unwrap_or(0);
    if let Some(d) = dir.take() {
        d.stop();
    }
    for node in servers.into_iter().flatten() {
        node.stop();
    }
    let faults = if proxied {
        let mut sum = FaultStatsSnapshot::default();
        for p in &proxies {
            let s = p.stats();
            sum.conns += s.conns;
            sum.frames_up += s.frames_up;
            sum.frames_down += s.frames_down;
            sum.forwarded += s.forwarded;
            sum.dropped += s.dropped;
            sum.delayed += s.delayed;
            sum.duplicated += s.duplicated;
            sum.corrupted += s.corrupted;
            sum.truncated += s.truncated;
            sum.resets += s.resets;
            sum.partitioned += s.partitioned;
        }
        Some(sum)
    } else {
        None
    };
    for p in proxies {
        p.stop();
    }
    if let Some(path) = &dir_path {
        let _ = std::fs::remove_file(path);
    }

    let (report, journal) = loaded?;
    let verdict = ContractChecker::for_plan(&cfg.plan).check(&journal, &report, cfg.requests);
    let failed_replicated_reads = if replicas >= 2 {
        failed_read_chains(&journal)
    } else {
        0
    };
    Ok(ClusterOutcome {
        report,
        journal,
        verdict,
        killed: killed_ids.join(","),
        final_epoch,
        ranges_moved,
        kills_fired,
        partitions_fired,
        failed_replicated_reads,
        faults,
        dir_restart_identical,
    })
}

/// Counts logical read chains that never resolved DONE. A chain is a
/// root submission plus every re-issue linked to it through `retry_of`
/// (links always carry the chain's root tag); the chain succeeded iff
/// any member completed. Reads the router dropped before ever
/// journaling a submission (budget exhausted on refused connects) are
/// invisible here — they surface as `busy_dropped` in the report
/// instead.
fn failed_read_chains(journal: &Journal) -> u64 {
    let mut chains: HashMap<u64, bool> = HashMap::new();
    for r in journal.records.iter().filter(|r| r.op == IoOp::Read) {
        let root = r.retry_of.unwrap_or(r.tag);
        let done = chains.entry(root).or_insert(false);
        *done |= r.outcome == Some(Outcome::Done);
    }
    chains.values().filter(|&&done| !done).count() as u64
}
