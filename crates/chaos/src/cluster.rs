//! The cluster chaos scenario: kill-and-rebalance under load.
//!
//! Two cluster nodes serve a shared LBA space behind a shard directory.
//! A routed closed-loop client drives mixed READ/WRITE traffic; mid-load
//! a watcher hard-kills one node ([`Server::kill`]), waits an outage
//! window, and asks the directory to [`rebalance_away`] the dead node —
//! rendezvous re-placement moves only the dead node's ranges onto the
//! survivor, and a cluster-wide `MAP_PUSH` bumps the epoch.
//!
//! The run ends with the same [`ContractChecker`] audit the single-node
//! chaos gate uses, applied to the *whole cluster journal*: every tag
//! the router ever put on the wire resolves exactly once, and
//! `completed + failed + busy_dropped` accounts for every planned
//! request. A killed node may cost operations (conn errors, drops) but
//! can never lose or double-execute one.
//!
//! [`rebalance_away`]: rif_cluster::Directory::rebalance_away

use std::io;
use std::thread;
use std::time::Duration;

use rif_cluster::{Directory, NodeInfo, RouterConfig, ShardMap};
use rif_server::client::{Journal, LoadReport};
use rif_server::server::{Server, ServerConfig};

use crate::contract::{ContractChecker, ContractVerdict};

/// Knobs for one kill-and-rebalance run.
#[derive(Debug, Clone)]
pub struct ClusterScenarioConfig {
    /// Total requests through the router.
    pub requests: u64,
    /// Router's global in-flight window.
    pub depth: usize,
    /// LBA ranges in the map (each node runs this many shard workers).
    pub ranges: u32,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Workload seed.
    pub seed: u64,
    /// Virtual-time acceleration of the simulated devices.
    pub time_scale: f64,
    /// Load runtime before the kill fires.
    pub kill_after: Duration,
    /// Outage window between the kill and the directory rebalance.
    pub rebalance_after: Duration,
}

impl Default for ClusterScenarioConfig {
    fn default() -> Self {
        // Sized so the load comfortably outlasts kill + rebalance at the
        // router's measured ~30k rps: the outage must land mid-run, not
        // after the last request settled.
        ClusterScenarioConfig {
            requests: 20_000,
            depth: 32,
            ranges: 4,
            read_ratio: 0.9,
            seed: 1,
            time_scale: 200.0,
            kill_after: Duration::from_millis(150),
            rebalance_after: Duration::from_millis(100),
        }
    }
}

/// The artifacts of one kill-and-rebalance run.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The router's aggregate report.
    pub report: LoadReport,
    /// The full cluster-wide request journal.
    pub journal: Journal,
    /// The contract audit over that journal.
    pub verdict: ContractVerdict,
    /// Node id the scenario killed.
    pub killed: String,
    /// Map epoch after the rebalance (initial map is epoch 1).
    pub final_epoch: u64,
    /// Ranges the rebalance moved off the dead node.
    pub ranges_moved: usize,
}

/// Runs the kill-and-rebalance scenario and audits the journal.
pub fn run_cluster_scenario(cfg: &ClusterScenarioConfig) -> io::Result<ClusterOutcome> {
    let capacity: u64 = 8 << 30;
    let node_cfg = |seed: u64| ServerConfig {
        shards: cfg.ranges as usize,
        capacity_bytes: capacity,
        cluster: true,
        time_scale: cfg.time_scale,
        seed,
        ..ServerConfig::default()
    };
    let node_a = Server::start(node_cfg(cfg.seed), 0)?;
    let node_b = Server::start(node_cfg(cfg.seed + 1), 0)?;
    let map = ShardMap::rebalanced(
        1,
        capacity,
        cfg.ranges,
        vec![
            NodeInfo {
                id: "a".into(),
                addr: node_a.local_addr().to_string(),
            },
            NodeInfo {
                id: "b".into(),
                addr: node_b.local_addr().to_string(),
            },
        ],
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;

    // Kill the node owning the most ranges: the hardest rebalance the
    // two-node map offers (ties break toward node a).
    let (killed, survivor_owned) = if map.owned_ranges("a").len() >= map.owned_ranges("b").len() {
        ("a", map.owned_ranges("b").len())
    } else {
        ("b", map.owned_ranges("a").len())
    };
    let ranges_moved = cfg.ranges as usize - survivor_owned;

    let dir = Directory::start(map, 0)?;
    let router_cfg = RouterConfig {
        directory: dir.addr().to_string(),
        requests: cfg.requests,
        depth: cfg.depth,
        read_ratio: cfg.read_ratio,
        seed: cfg.seed,
        request_bytes: 16 * 1024,
        // Budget rides out the whole outage window: the dead node's
        // ranges bounce on connect failures until the rebalance lands.
        max_busy_retries: 500,
        busy_backoff: Duration::from_millis(1),
        ..RouterConfig::default()
    };

    let (doomed, survivor) = if killed == "a" {
        (node_a, node_b)
    } else {
        (node_b, node_a)
    };
    let mut doomed = Some(doomed);
    let loaded = thread::scope(|s| {
        let loader = s.spawn(|| rif_cluster::run_routed(&router_cfg));
        thread::sleep(cfg.kill_after);
        if let Some(node) = doomed.take() {
            node.kill();
        }
        thread::sleep(cfg.rebalance_after);
        dir.rebalance_away(killed).ok();
        loader.join().expect("router thread")
    });
    let final_epoch = dir.map().epoch;
    dir.stop();
    survivor.stop();

    let (report, journal) = loaded?;
    let verdict = ContractChecker::strict().check(&journal, &report, cfg.requests);
    Ok(ClusterOutcome {
        report,
        journal,
        verdict,
        killed: killed.to_string(),
        final_epoch,
        ranges_moved,
    })
}
