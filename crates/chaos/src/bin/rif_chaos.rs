//! Chaos driver for the RiF serving layer.
//!
//! Usage:
//!
//! ```text
//! rif-chaos run [--seed N] [--plan SPEC] [--requests N] [--connections N]
//!               [--depth N] [--shards N] [--time-scale X] [--deadline-ms N]
//!               [--read-ratio X] [--workload-seed N]
//! rif-chaos proxy --upstream ADDR [--port N] [--seed N] [--plan SPEC]
//! rif-chaos schedule [--seed N] [--plan SPEC] [--conns N] [--frames N]
//! rif-chaos cluster [--requests N] [--depth N] [--ranges N] [--seed N]
//!                   [--read-ratio X] [--kill-after-ms N] [--rebalance-after-ms N]
//!                   [--nodes N] [--replicas N] [--proxied 1] [--plan SPEC]
//!                   [--deadline-ms N] [--migrate-after-ms N] [--dir-restart-ms N]
//! ```
//!
//! `run` executes a full in-process scenario (server + fault proxy +
//! journaled client + worker kills) and prints three JSON lines:
//! `report`, `faults`, and the contract `verdict`. The process exits 0
//! only on a PASS verdict.
//!
//! `proxy` runs the standalone fault-injecting proxy between an existing
//! `rif-client` and `rif-server` (`rif-chaos proxy --upstream 127.0.0.1:7878
//! --seed 42 --plan up.drop=0.1`), printing its listen address once ready.
//!
//! `schedule` prints the deterministic fault schedule for a plan — the
//! reproducibility artifact: same seed, same bytes.
//!
//! `cluster` runs the cluster chaos scenario: `--nodes` cluster nodes
//! behind a shard directory, optionally replicated (`--replicas 2`) and
//! proxied through the fault plane (`--proxied 1`, implied by any rates
//! or `part=` windows in `--plan`), with node kills (`nodekill=` in the
//! plan, or the legacy hottest-node kill at `--kill-after-ms`),
//! asymmetric partitions, an optional migration in flight, and an
//! optional directory restart from its persisted map. Prints `report`,
//! `cluster`, optional `faults`, and `verdict` JSON lines; exits 0 only
//! on PASS (and, when replicated, zero failed replicated reads).
//!
//! A `--seed` flag overrides any `seed=` inside `--plan`.

use std::time::Duration;

use rif_chaos::plan::{schedule_json, FaultPlan};
use rif_chaos::proxy::ChaosProxy;
use rif_chaos::scenario::{run_scenario, ScenarioConfig};

fn usage() -> ! {
    eprintln!(
        "usage: rif-chaos run [--seed N] [--plan SPEC] [--requests N] [--connections N]\n\
         \x20                    [--depth N] [--shards N] [--time-scale X] [--deadline-ms N]\n\
         \x20                    [--read-ratio X] [--workload-seed N]\n\
         \x20      rif-chaos proxy --upstream ADDR [--port N] [--seed N] [--plan SPEC]\n\
         \x20      rif-chaos schedule [--seed N] [--plan SPEC] [--conns N] [--frames N]\n\
         \x20      rif-chaos cluster [--requests N] [--depth N] [--ranges N] [--seed N]\n\
         \x20                        [--read-ratio X] [--kill-after-ms N] [--rebalance-after-ms N]\n\
         \x20                        [--nodes N] [--replicas N] [--proxied 1] [--plan SPEC]\n\
         \x20                        [--deadline-ms N] [--migrate-after-ms N] [--dir-restart-ms N]\n\
         plan spec: key=value[,key=value...] with keys seed, up.drop, up.delay,\n\
         up.delay_us, up.dup, up.corrupt, up.trunc, up.reset (same for down.*),\n\
         kill=<shard>@<frames>+<restart_ms>, nodekill=<node>@<after_ms>, and\n\
         part=<node>:<up|down>@<after_ms>+<dur_ms> (all repeatable)"
    );
    std::process::exit(2);
}

fn parse_plan(spec: &str, seed_override: Option<u64>) -> FaultPlan {
    let mut plan = FaultPlan::parse(spec).unwrap_or_else(|e| {
        eprintln!("rif-chaos: {e}");
        usage()
    });
    if let Some(seed) = seed_override {
        plan.seed = seed;
    }
    plan
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage());
    let rest: Vec<String> = args.collect();
    match mode.as_str() {
        "run" => run_cmd(&rest),
        "proxy" => proxy_cmd(&rest),
        "schedule" => schedule_cmd(&rest),
        "cluster" => cluster_cmd(&rest),
        _ => usage(),
    }
}

/// Pulls `--flag value` pairs out of `rest`; returns (flags, leftovers).
fn flag_map(rest: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            usage();
        }
        let value = it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        });
        out.push((flag.clone(), value.clone()));
    }
    out
}

fn get<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(f, _)| f == name)
        .map(|(_, v)| v.as_str())
}

fn parse_or_usage<T: std::str::FromStr>(v: &str, name: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("bad value for {name}: `{v}`");
        usage()
    })
}

fn run_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let seed = get(&flags, "--seed").map(|v| parse_or_usage(v, "--seed"));
    let plan = parse_plan(get(&flags, "--plan").unwrap_or(""), seed);
    let mut cfg = ScenarioConfig {
        plan,
        ..ScenarioConfig::default()
    };
    if let Some(v) = get(&flags, "--requests") {
        cfg.requests = parse_or_usage(v, "--requests");
    }
    if let Some(v) = get(&flags, "--connections") {
        cfg.connections = parse_or_usage(v, "--connections");
    }
    if let Some(v) = get(&flags, "--depth") {
        cfg.depth = parse_or_usage(v, "--depth");
    }
    if let Some(v) = get(&flags, "--shards") {
        cfg.shards = parse_or_usage(v, "--shards");
    }
    if let Some(v) = get(&flags, "--time-scale") {
        cfg.time_scale = parse_or_usage(v, "--time-scale");
    }
    if let Some(v) = get(&flags, "--deadline-ms") {
        cfg.request_deadline = Duration::from_millis(parse_or_usage(v, "--deadline-ms"));
    }
    if let Some(v) = get(&flags, "--read-ratio") {
        cfg.read_ratio = parse_or_usage(v, "--read-ratio");
    }
    if let Some(v) = get(&flags, "--workload-seed") {
        cfg.workload_seed = parse_or_usage(v, "--workload-seed");
    }

    match run_scenario(&cfg) {
        Ok(outcome) => {
            println!("{{\"report\":{}}}", outcome.report.to_json());
            println!(
                "{{\"faults\":{},\"kills_fired\":{}}}",
                outcome.faults.to_json(),
                outcome.kills_fired
            );
            println!("{}", outcome.verdict.to_json());
            std::process::exit(if outcome.verdict.pass { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("rif-chaos: scenario failed: {e}");
            std::process::exit(1);
        }
    }
}

fn proxy_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let upstream = get(&flags, "--upstream").unwrap_or_else(|| usage());
    let upstream = upstream.parse().unwrap_or_else(|_| {
        eprintln!("bad --upstream address `{upstream}`");
        usage()
    });
    let port: u16 = get(&flags, "--port")
        .map(|v| parse_or_usage(v, "--port"))
        .unwrap_or(0);
    let seed = get(&flags, "--seed").map(|v| parse_or_usage(v, "--seed"));
    let plan = parse_plan(get(&flags, "--plan").unwrap_or(""), seed);

    let proxy = match ChaosProxy::start(port, upstream, plan) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rif-chaos: cannot start proxy: {e}");
            std::process::exit(1);
        }
    };
    // The sentinel line scripts wait for.
    println!("rif-chaos proxying on {} -> {upstream}", proxy.local_addr());
    // Standalone mode runs until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn cluster_cmd(rest: &[String]) {
    use rif_chaos::cluster::{run_cluster_scenario, ClusterScenarioConfig};
    let flags = flag_map(rest);
    let mut cfg = ClusterScenarioConfig::default();
    if let Some(v) = get(&flags, "--requests") {
        cfg.requests = parse_or_usage(v, "--requests");
    }
    if let Some(v) = get(&flags, "--depth") {
        cfg.depth = parse_or_usage(v, "--depth");
    }
    if let Some(v) = get(&flags, "--ranges") {
        cfg.ranges = parse_or_usage(v, "--ranges");
    }
    if let Some(v) = get(&flags, "--seed") {
        cfg.seed = parse_or_usage(v, "--seed");
    }
    if let Some(v) = get(&flags, "--read-ratio") {
        cfg.read_ratio = parse_or_usage(v, "--read-ratio");
    }
    if let Some(v) = get(&flags, "--kill-after-ms") {
        cfg.kill_after = Duration::from_millis(parse_or_usage(v, "--kill-after-ms"));
    }
    if let Some(v) = get(&flags, "--rebalance-after-ms") {
        cfg.rebalance_after = Duration::from_millis(parse_or_usage(v, "--rebalance-after-ms"));
    }
    if let Some(v) = get(&flags, "--nodes") {
        cfg.nodes = parse_or_usage(v, "--nodes");
    }
    if let Some(v) = get(&flags, "--replicas") {
        cfg.replicas = parse_or_usage(v, "--replicas");
    }
    if let Some(v) = get(&flags, "--proxied") {
        cfg.proxied = parse_or_usage::<u32>(v, "--proxied") != 0;
    }
    if let Some(v) = get(&flags, "--deadline-ms") {
        cfg.request_deadline = Duration::from_millis(parse_or_usage(v, "--deadline-ms"));
    }
    if let Some(v) = get(&flags, "--migrate-after-ms") {
        cfg.migrate_after = Some(Duration::from_millis(parse_or_usage(
            v,
            "--migrate-after-ms",
        )));
    }
    if let Some(v) = get(&flags, "--dir-restart-ms") {
        cfg.dir_restart_after = Some(Duration::from_millis(parse_or_usage(v, "--dir-restart-ms")));
    }
    let seed = get(&flags, "--seed").map(|v| parse_or_usage(v, "--seed"));
    cfg.plan = parse_plan(get(&flags, "--plan").unwrap_or(""), seed.or(Some(cfg.seed)));

    match run_cluster_scenario(&cfg) {
        Ok(outcome) => {
            println!("{{\"report\":{}}}", outcome.report.to_json());
            println!(
                "{{\"cluster\":{{\"killed\":\"{}\",\"final_epoch\":{},\"ranges_moved\":{},\
                 \"conn_losses\":{},\"kills_fired\":{},\"partitions_fired\":{},\
                 \"failed_replicated_reads\":{},\"dir_restart_identical\":{}}}}}",
                outcome.killed,
                outcome.final_epoch,
                outcome.ranges_moved,
                outcome.journal.conn_losses,
                outcome.kills_fired,
                outcome.partitions_fired,
                outcome.failed_replicated_reads,
                match outcome.dir_restart_identical {
                    Some(b) => b.to_string(),
                    None => "null".into(),
                },
            );
            if let Some(f) = outcome.faults {
                println!("{{\"faults\":{}}}", f.to_json());
            }
            println!("{}", outcome.verdict.to_json());
            let reads_ok = cfg.replicas < 2 || outcome.failed_replicated_reads == 0;
            std::process::exit(if outcome.verdict.pass && reads_ok {
                0
            } else {
                1
            });
        }
        Err(e) => {
            eprintln!("rif-chaos: cluster scenario failed: {e}");
            std::process::exit(1);
        }
    }
}

fn schedule_cmd(rest: &[String]) {
    let flags = flag_map(rest);
    let seed = get(&flags, "--seed").map(|v| parse_or_usage(v, "--seed"));
    let plan = parse_plan(get(&flags, "--plan").unwrap_or(""), seed);
    let conns: u64 = get(&flags, "--conns")
        .map(|v| parse_or_usage(v, "--conns"))
        .unwrap_or(2);
    let frames: u64 = get(&flags, "--frames")
        .map(|v| parse_or_usage(v, "--frames"))
        .unwrap_or(256);
    println!("{}", schedule_json(&plan, conns, frames));
}
