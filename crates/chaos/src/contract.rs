//! The client-contract checker.
//!
//! The ROADMAP contract for the serving layer: **every submitted tag
//! resolves to exactly one of DONE / BUSY / ERROR or a clean connection
//! error — never silence, never duplicate completions.** The hardened
//! client records every wire submission in a [`Journal`]; this module
//! audits that journal after a run and emits a JSON verdict.
//!
//! Verdict JSON contains only *violation* counts, all zero on PASS, so
//! two runs with the same fault-plan seed render byte-identical verdicts
//! even though wall-clock timing (and hence retry/timeout tallies) may
//! differ between them.

use rif_server::client::{Journal, LoadReport};

use crate::plan::FaultPlan;

/// Audits a [`Journal`] against the serving-layer contract.
#[derive(Debug, Clone, Copy)]
pub struct ContractChecker {
    /// Accept post-resolution receipts whose payload differs from the
    /// resolving one (possible when the plan duplicates/corrupts frames).
    allow_conflicting: bool,
    /// Accept decodable responses for tags never submitted (possible when
    /// the plan mangles frames: corrupted tag bits, or the server's tag-0
    /// reply to an undecodable request).
    allow_unknown: bool,
}

impl ContractChecker {
    /// The strictest checker: any duplicate-divergence or unknown tag is
    /// a violation. Correct for fault-free runs and for plans that only
    /// drop, delay, or reset.
    pub fn strict() -> ContractChecker {
        ContractChecker {
            allow_conflicting: false,
            allow_unknown: false,
        }
    }

    /// Checker with exactly the relaxations `plan` justifies.
    pub fn for_plan(plan: &FaultPlan) -> ContractChecker {
        ContractChecker {
            allow_conflicting: plan.can_duplicate_or_diverge(),
            allow_unknown: plan.can_mangle(),
        }
    }

    /// Audits one run. `requests` is the number of operations the load
    /// generator planned; the report must account for every one of them.
    pub fn check(&self, journal: &Journal, report: &LoadReport, requests: u64) -> ContractVerdict {
        let mut v = ContractVerdict::default();

        for rec in &journal.records {
            // Silence: a submitted tag that never resolved.
            if rec.outcome.is_none() {
                v.unresolved_tags += 1;
            }
            // Duplicate completion with a *different* payload: the server
            // answered one tag two contradictory ways.
            if !self.allow_conflicting {
                v.conflicting_receipts += rec.conflicting_receipts as u64;
            }
        }

        if !self.allow_unknown {
            v.unexpected_unknown = journal.unknown_receipts;
        }

        // Every planned op must end in exactly one ledger bucket.
        let accounted = report.completed + report.failed + report.busy_dropped;
        v.accounting_gap = requests as i64 - accounted as i64;

        v.pass = v.unresolved_tags == 0
            && v.conflicting_receipts == 0
            && v.unexpected_unknown == 0
            && v.accounting_gap == 0;
        v
    }
}

/// The audit result. All violation counts are zero on PASS.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContractVerdict {
    /// True iff every contract clause held.
    pub pass: bool,
    /// Submitted tags that never resolved (contract: never silence).
    pub unresolved_tags: u64,
    /// Post-resolution receipts with divergent payloads (contract: never
    /// duplicate completions), when the plan cannot explain them.
    pub conflicting_receipts: u64,
    /// Receipts for never-submitted tags, when the plan cannot explain
    /// them.
    pub unexpected_unknown: u64,
    /// `requests − (completed + failed + busy_dropped)`; non-zero means
    /// the ledger lost or invented operations.
    pub accounting_gap: i64,
}

impl ContractVerdict {
    /// Canonical JSON rendering (deterministic for same-seed PASS runs).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"verdict\":\"{}\",\"unresolved_tags\":{},",
                "\"conflicting_receipts\":{},\"unexpected_unknown\":{},",
                "\"accounting_gap\":{}}}"
            ),
            if self.pass { "PASS" } else { "FAIL" },
            self.unresolved_tags,
            self.conflicting_receipts,
            self.unexpected_unknown,
            self.accounting_gap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_server::client::{Outcome, TagRecord};
    use rif_workloads::IoOp;

    fn record(tag: u64, outcome: Option<Outcome>) -> TagRecord {
        TagRecord {
            conn: 0,
            tag,
            op: IoOp::Read,
            offset: 0,
            bytes: 4096,
            retry_of: None,
            outcome,
            duplicate_receipts: 0,
            conflicting_receipts: 0,
        }
    }

    #[test]
    fn clean_run_passes() {
        let journal = Journal {
            records: vec![
                record(1, Some(Outcome::Done)),
                record(2, Some(Outcome::Busy)),
            ],
            ..Journal::default()
        };
        let report = LoadReport {
            completed: 1,
            busy_dropped: 1,
            ..LoadReport::default()
        };
        let v = ContractChecker::strict().check(&journal, &report, 2);
        assert!(v.pass, "{}", v.to_json());
        assert!(v.to_json().contains("\"verdict\":\"PASS\""));
    }

    #[test]
    fn silence_fails() {
        let journal = Journal {
            records: vec![record(1, None)],
            ..Journal::default()
        };
        let report = LoadReport {
            completed: 1,
            ..LoadReport::default()
        };
        let v = ContractChecker::strict().check(&journal, &report, 1);
        assert!(!v.pass);
        assert_eq!(v.unresolved_tags, 1);
    }

    #[test]
    fn conflicting_receipt_fails_strict_but_not_dup_plan() {
        let mut rec = record(1, Some(Outcome::Done));
        rec.conflicting_receipts = 1;
        let journal = Journal {
            records: vec![rec],
            ..Journal::default()
        };
        let report = LoadReport {
            completed: 1,
            ..LoadReport::default()
        };
        let strict = ContractChecker::strict().check(&journal, &report, 1);
        assert!(!strict.pass);
        let plan = FaultPlan::parse("up.dup=0.1").unwrap();
        let relaxed = ContractChecker::for_plan(&plan).check(&journal, &report, 1);
        assert!(relaxed.pass, "{}", relaxed.to_json());
    }

    #[test]
    fn accounting_gap_fails() {
        let journal = Journal::default();
        let report = LoadReport {
            completed: 9,
            ..LoadReport::default()
        };
        let v = ContractChecker::strict().check(&journal, &report, 10);
        assert!(!v.pass);
        assert_eq!(v.accounting_gap, 1);
    }

    #[test]
    fn unknown_receipts_gated_on_mangling_plans() {
        let journal = Journal {
            unknown_receipts: 3,
            ..Journal::default()
        };
        let report = LoadReport::default();
        assert!(!ContractChecker::strict().check(&journal, &report, 0).pass);
        let plan = FaultPlan::parse("down.corrupt=0.01").unwrap();
        assert!(
            ContractChecker::for_plan(&plan)
                .check(&journal, &report, 0)
                .pass
        );
    }
}
