//! End-to-end chaos scenarios: server + proxy + hardened client +
//! worker-kill injection + contract audit, in one call.
//!
//! [`run_scenario`] wires the pieces the way the ci gate and the
//! integration tests use them: an in-process [`Server`] on an ephemeral
//! loopback port, a [`ChaosProxy`] in front of it, the journaled load
//! generator pointed at the proxy, and a watcher thread that fires the
//! plan's [`KillSpec`]s when the proxy has seen the trigger frame count.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

use rif_server::client::{run_load_journaled, Journal, LoadConfig, LoadReport};
use rif_server::server::{Server, ServerConfig};

use crate::contract::{ContractChecker, ContractVerdict};
use crate::plan::{FaultPlan, KillSpec};
use crate::proxy::{ChaosProxy, FaultStatsSnapshot};

/// Kill-watcher poll interval.
const WATCH_POLL: Duration = Duration::from_micros(500);

/// Everything a chaos run needs.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The fault plan (seed, rates, kills).
    pub plan: FaultPlan,
    /// Total requests across all client connections.
    pub requests: usize,
    /// Client connections.
    pub connections: usize,
    /// Closed-loop window per connection.
    pub depth: usize,
    /// Server shard count.
    pub shards: usize,
    /// Virtual-time acceleration of the simulated device.
    pub time_scale: f64,
    /// Workload seed (independent of the fault-plan seed).
    pub workload_seed: u64,
    /// Fraction of reads in the workload.
    pub read_ratio: f64,
    /// Per-request client deadline.
    pub request_deadline: Duration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            plan: FaultPlan::default(),
            requests: 2_000,
            connections: 2,
            depth: 8,
            shards: 2,
            time_scale: 200.0,
            workload_seed: 1,
            read_ratio: 0.9,
            request_deadline: Duration::from_millis(250),
        }
    }
}

/// The artifacts of one chaos run.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// The load generator's aggregate report.
    pub report: LoadReport,
    /// The full client-side request journal.
    pub journal: Journal,
    /// The contract audit.
    pub verdict: ContractVerdict,
    /// What the proxy actually did to the traffic.
    pub faults: FaultStatsSnapshot,
    /// Worker kills that fired before the load finished.
    pub kills_fired: usize,
}

/// Runs one complete chaos scenario and audits the journal.
pub fn run_scenario(cfg: &ScenarioConfig) -> io::Result<ScenarioOutcome> {
    let server = Server::start(
        ServerConfig {
            shards: cfg.shards,
            time_scale: cfg.time_scale,
            ..ServerConfig::default()
        },
        0,
    )?;
    let proxy = ChaosProxy::start(0, server.local_addr(), cfg.plan.clone())?;

    let load_cfg = LoadConfig {
        addr: proxy.local_addr().to_string(),
        connections: cfg.connections,
        depth: cfg.depth,
        requests: cfg.requests,
        read_ratio: cfg.read_ratio,
        seed: cfg.workload_seed,
        request_deadline: cfg.request_deadline,
        ..LoadConfig::default()
    };

    let stop_watch = AtomicBool::new(false);
    let loaded = thread::scope(|s| {
        let watcher = s.spawn(|| kill_watcher(&server, &proxy, &cfg.plan.kills, &stop_watch));
        let loaded = run_load_journaled(&load_cfg);
        stop_watch.store(true, Ordering::SeqCst);
        let kills_fired = watcher.join().unwrap_or(0);
        loaded.map(|lj| (lj, kills_fired))
    });

    let faults = proxy.stats();
    proxy.stop();
    server.stop();

    let ((report, journal), kills_fired) = loaded?;
    let verdict =
        ContractChecker::for_plan(&cfg.plan).check(&journal, &report, cfg.requests as u64);
    Ok(ScenarioOutcome {
        report,
        journal,
        verdict,
        faults,
        kills_fired,
    })
}

/// Fires each [`KillSpec`] once the proxy's client→server frame count
/// crosses its trigger; returns how many fired before the run ended.
fn kill_watcher(
    server: &Server,
    proxy: &ChaosProxy,
    kills: &[KillSpec],
    stop: &AtomicBool,
) -> usize {
    let mut pending: Vec<KillSpec> = kills.to_vec();
    pending.sort_by_key(|k| k.after_frames);
    let mut fired = 0;
    for kill in pending {
        loop {
            if stop.load(Ordering::SeqCst) {
                return fired;
            }
            if proxy.frames_up() >= kill.after_frames {
                break;
            }
            thread::sleep(WATCH_POLL);
        }
        let shard = kill.shard % server.shard_count().max(1);
        if server.inject_shard_crash(shard, Duration::from_millis(kill.restart_after_ms)) {
            fired += 1;
        }
    }
    fired
}
