//! Event-loop core integration: connection limits, idle wakeups,
//! all-or-nothing batch admission, core parity, and the multiplexed
//! high-concurrency client — all over real loopback TCP.

use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rif_server::client::{run_load, LoadConfig};
use rif_server::mux::run_mux_load;
use rif_server::protocol::{
    decode_response, encode_request, read_frame, write_frame, BatchEntry, BusyReason, ErrorCode,
    Request, Response, PROTOCOL_VERSION,
};
use rif_server::server::{CoreKind, Server, ServerConfig};
use rif_workloads::IoOp;

/// A raw blocking protocol connection for surgical frame-level tests.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: &str) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        Raw {
            writer: stream.try_clone().expect("clone"),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, req: &Request) {
        write_frame(&mut self.writer, &encode_request(req)).expect("write frame");
    }

    fn recv(&mut self) -> Response {
        let payload = read_frame(&mut self.reader)
            .expect("read frame")
            .expect("peer closed before responding");
        decode_response(&payload).expect("decodable response")
    }

    /// Reads one frame, allowing EOF (`None`).
    fn recv_or_eof(&mut self) -> Option<Response> {
        read_frame(&mut self.reader)
            .expect("read frame")
            .map(|p| decode_response(&p).expect("decodable response"))
    }

    fn hello(&mut self) -> u32 {
        self.send(&Request::Hello {
            tag: 1,
            version: PROTOCOL_VERSION,
        });
        match self.recv() {
            Response::HelloAck { version, .. } => version,
            other => panic!("expected HELLO_ACK, got {other:?}"),
        }
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn connection_limit_refuses_with_conn_limit_error_then_recovers() {
    let server = Server::start(
        ServerConfig {
            max_connections: 2,
            time_scale: 200.0,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Two connections fit; prove both are live with a STATS round-trip.
    let mut a = Raw::connect(&addr);
    let mut b = Raw::connect(&addr);
    a.send(&Request::Stats { tag: 5 });
    assert!(matches!(a.recv(), Response::Stats { tag: 5, .. }));
    b.send(&Request::Stats { tag: 6 });
    assert!(matches!(b.recv(), Response::Stats { tag: 6, .. }));

    // The third gets a clean ERROR(conn_limit) frame, then EOF.
    let mut c = Raw::connect(&addr);
    match c.recv_or_eof() {
        Some(Response::Error { tag, code }) => {
            assert_eq!(tag, 0);
            assert_eq!(code, ErrorCode::ConnLimit);
        }
        other => panic!("expected ERROR(conn_limit), got {other:?}"),
    }
    assert!(c.recv_or_eof().is_none(), "refused socket must close");

    let m = server.metrics_snapshot();
    assert_eq!(m.counter("server.conn_limit_rejected"), 1);
    assert_eq!(m.gauge("server.connections_open"), Some(2.0));

    // Closing one admits the next.
    drop(a);
    wait_until("closed connection to be reaped", || {
        server.metrics_snapshot().gauge("server.connections_open") == Some(1.0)
    });
    let mut d = Raw::connect(&addr);
    d.send(&Request::Stats { tag: 7 });
    assert!(matches!(d.recv(), Response::Stats { tag: 7, .. }));

    server.stop();
}

#[test]
fn idle_event_loop_produces_near_zero_wakeups() {
    let server = Server::start(ServerConfig::default(), 0).expect("bind");
    let addr = server.local_addr().to_string();

    // One idle connection registered, then nothing happens. A readiness
    // loop blocks; the legacy acceptor's 5 ms WouldBlock spin (the bug
    // this core fixes) would clock hundreds of wakeups here.
    let mut idle = Raw::connect(&addr);
    idle.send(&Request::Stats { tag: 1 });
    let _ = idle.recv();
    std::thread::sleep(Duration::from_millis(200));

    let before = server.metrics_snapshot().counter("server.epoll_wakeups");
    std::thread::sleep(Duration::from_millis(500));
    let after = server.metrics_snapshot().counter("server.epoll_wakeups");
    assert!(
        after - before <= 2,
        "idle half-second cost {} wakeups (want ~0)",
        after - before
    );

    server.stop();
}

/// Entries for a batch of `n` reads tagged `base..base+n`.
fn batch_of(n: usize, base: u64) -> Vec<BatchEntry> {
    (0..n)
        .map(|i| BatchEntry {
            op: IoOp::Read,
            tenant: 0,
            tag: base + i as u64,
            offset: (i as u64) << 16,
            bytes: 4096,
            retry_of: 0,
        })
        .collect()
}

#[test]
fn batch_admission_is_all_or_nothing_against_the_inflight_cap() {
    // One shard, four in-flight slots, and a nearly frozen simulator
    // clock: admitted requests stay in flight for the whole test.
    let server = Server::start(
        ServerConfig {
            shards: 1,
            inflight_limit: 4,
            time_scale: 0.001,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    let mut conn = Raw::connect(&addr);
    assert_eq!(conn.hello(), PROTOCOL_VERSION);

    // Occupy two of the four slots with singles that cannot complete.
    for tag in [100u64, 101] {
        conn.send(&Request::Read {
            tenant: 0,
            tag,
            offset: tag << 20,
            bytes: 4096,
        });
    }
    wait_until("singles to occupy the window", || {
        server.metrics_snapshot().gauge("server.inflight.shard0") == Some(2.0)
    });

    // A 3-entry batch against 2 free slots: all-or-nothing means every
    // entry bounces BUSY(queue) and the window must NOT grow — a
    // partial admission would leave it at 4.
    conn.send(&Request::Batch(batch_of(3, 200)));
    for _ in 0..3 {
        match conn.recv() {
            Response::Busy { tag, reason } => {
                assert!((200..203).contains(&tag), "unexpected tag {tag}");
                assert_eq!(reason, BusyReason::Queue);
            }
            other => panic!("expected BUSY(queue), got {other:?}"),
        }
    }
    let m = server.metrics_snapshot();
    assert_eq!(
        m.gauge("server.inflight.shard0"),
        Some(2.0),
        "a refused batch must reserve nothing"
    );
    assert_eq!(m.counter("server.busy.queue"), 3);

    // A 2-entry batch fits exactly: both admitted, window full.
    conn.send(&Request::Batch(batch_of(2, 300)));
    wait_until("fitting batch to be admitted", || {
        server.metrics_snapshot().gauge("server.inflight.shard0") == Some(4.0)
    });
    assert_eq!(server.metrics_snapshot().counter("server.batches"), 2);

    server.stop();
}

#[test]
fn both_cores_serve_the_same_load() {
    for core in [CoreKind::EventLoop, CoreKind::Threaded] {
        let server = Server::start(
            ServerConfig {
                shards: 2,
                inflight_limit: 64,
                time_scale: 200.0,
                core,
                ..ServerConfig::default()
            },
            0,
        )
        .expect("bind");
        let report = run_load(&LoadConfig {
            addr: server.local_addr().to_string(),
            connections: 2,
            depth: 8,
            requests: 200,
            seed: 11,
            batch: 8,
            ..LoadConfig::default()
        })
        .expect("load");
        assert_eq!(report.completed, 200, "core {core:?}: {}", report.to_json());
        assert_eq!(report.protocol_errors, 0, "core {core:?}");
        assert_eq!(report.failed, 0, "core {core:?}");
        server.stop();
    }
}

#[test]
fn mux_client_completes_a_many_connection_load() {
    let server = Server::start(
        ServerConfig {
            shards: 2,
            inflight_limit: 256,
            time_scale: 500.0,
            ..ServerConfig::default()
        },
        0,
    )
    .expect("bind");
    let report = run_mux_load(
        &LoadConfig {
            addr: server.local_addr().to_string(),
            connections: 64,
            depth: 2,
            requests: 1000,
            seed: 21,
            max_busy_retries: 10_000,
            ..LoadConfig::default()
        },
        2,
    )
    .expect("mux load");
    assert_eq!(report.completed, 1000, "{}", report.to_json());
    assert_eq!(report.conn_errors, 0, "{}", report.to_json());
    assert_eq!(report.protocol_errors, 0, "{}", report.to_json());
    assert_eq!(report.failed, 0, "{}", report.to_json());

    let m = server.metrics_snapshot();
    assert!(m.counter("server.connections_accepted") >= 64);
    server.stop();
}

#[test]
fn batch_before_hello_is_rejected_whole() {
    let server = Server::start(ServerConfig::default(), 0).expect("bind");
    let mut conn = Raw::connect(&server.local_addr().to_string());
    // No HELLO: the connection speaks v1, where BATCH does not exist.
    conn.send(&Request::Batch(batch_of(2, 400)));
    match conn.recv() {
        Response::Error { tag, code } => {
            assert_eq!(tag, 400, "rejected by its first tag");
            assert_eq!(code, ErrorCode::BadRequest);
        }
        other => panic!("expected ERROR(bad_request), got {other:?}"),
    }
    server.stop();
}
