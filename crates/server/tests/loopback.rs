//! In-process loopback integration: a real `Server` on an OS-assigned
//! port, driven by the real closed-loop client over TCP. This is the
//! same pairing the CI smoke gate runs out-of-process.

use rif_server::client::{fetch_stats, flush, run_load, send_shutdown, LoadConfig};
use rif_server::server::{Server, ServerConfig};
use rif_ssd::RetryKind;

fn quick_server(mut cfg: ServerConfig) -> Server {
    // Time compression keeps wall time short: simulated microseconds
    // play out 200x faster than real ones.
    cfg.time_scale = 200.0;
    Server::start(cfg, 0).expect("bind loopback")
}

#[test]
fn load_completes_every_request_without_protocol_errors() {
    let server = quick_server(ServerConfig {
        shards: 2,
        inflight_limit: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = run_load(&LoadConfig {
        addr: addr.clone(),
        connections: 2,
        depth: 8,
        requests: 400,
        read_ratio: 0.9,
        seed: 7,
        ..LoadConfig::default()
    })
    .expect("load run");

    assert_eq!(report.protocol_errors, 0, "{}", report.to_json());
    assert_eq!(report.busy_dropped, 0, "{}", report.to_json());
    assert_eq!(report.completed, 400, "{}", report.to_json());
    assert!(report.throughput_rps > 0.0);
    assert!(report.p99_us >= report.p50_us);
    assert!(report.p999_us >= report.p99_us);

    // The STATS frame must render the registry: counters present and
    // consistent with what the client saw.
    let stats = fetch_stats(&addr).expect("stats");
    let completed_line = stats
        .lines()
        .find(|l| l.starts_with("counter server.completed "))
        .expect("completed counter in stats");
    let n: u64 = completed_line
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("numeric counter");
    assert_eq!(n, 400);
    assert!(stats
        .lines()
        .any(|l| l.starts_with("counter server.requests.read ")));
    assert!(stats
        .lines()
        .any(|l| l.starts_with("histogram server.latency.virtual ")));
    assert!(stats
        .lines()
        .any(|l| l.starts_with("gauge server.inflight.shard0 ")));

    server.stop();
}

#[test]
fn over_rate_burst_sees_busy_backpressure() {
    // A 2-token bucket refilled at 50/s against a depth-16 blast: the
    // client must observe BUSY(rate_limit) responses, and retries must
    // still land every request eventually.
    let server = quick_server(ServerConfig {
        shards: 1,
        rate_per_sec: 50.0,
        burst: 2.0,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = run_load(&LoadConfig {
        addr,
        connections: 1,
        depth: 16,
        requests: 30,
        busy_backoff: std::time::Duration::from_millis(5),
        max_busy_retries: 10_000,
        seed: 3,
        ..LoadConfig::default()
    })
    .expect("load run");

    assert!(
        report.busy_ratelimit > 0,
        "over-rate burst must be throttled: {}",
        report.to_json()
    );
    assert_eq!(report.completed, 30, "{}", report.to_json());
    assert_eq!(report.protocol_errors, 0);
    server.stop();
}

#[test]
fn tiny_inflight_window_sees_queue_busy() {
    let server = quick_server(ServerConfig {
        shards: 1,
        inflight_limit: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = run_load(&LoadConfig {
        addr,
        connections: 1,
        depth: 16,
        requests: 60,
        busy_backoff: std::time::Duration::from_micros(300),
        max_busy_retries: 100_000,
        seed: 5,
        ..LoadConfig::default()
    })
    .expect("load run");
    assert!(
        report.busy_queue > 0,
        "a depth-16 window against a 2-slot shard must hit queue BUSY: {}",
        report.to_json()
    );
    assert_eq!(report.completed, 60, "{}", report.to_json());
    server.stop();
}

#[test]
fn flush_then_stats_shows_nothing_in_flight() {
    let server = quick_server(ServerConfig::default());
    let addr = server.local_addr().to_string();
    run_load(&LoadConfig {
        addr: addr.clone(),
        requests: 50,
        ..LoadConfig::default()
    })
    .expect("load");
    flush(&addr).expect("flush");
    let m = server.metrics_snapshot();
    assert_eq!(m.counter("server.completed"), 50);
    server.stop();
}

#[test]
fn worker_crash_mid_load_never_hangs_and_other_shards_keep_serving() {
    let server = quick_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let requests = 600;

    // Crash shard 0 shortly after the load starts; it stays dead 50 ms.
    let outcome = std::thread::scope(|s| {
        let killer = s.spawn(|| {
            // Wait until real traffic is flowing, then pull the rug.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while server.metrics_snapshot().counter("server.completed") < 50 {
                assert!(std::time::Instant::now() < deadline, "load never started");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert!(server.inject_shard_crash(0, std::time::Duration::from_millis(50)));
        });
        let report = rif_server::client::run_load_journaled(&LoadConfig {
            addr: addr.clone(),
            connections: 2,
            depth: 8,
            requests,
            seed: 9,
            request_deadline: std::time::Duration::from_millis(500),
            ..LoadConfig::default()
        })
        .expect("load run");
        killer.join().expect("killer thread");
        report
    });
    let (report, journal) = outcome;

    // Nothing hangs: every planned op lands in exactly one bucket…
    assert_eq!(
        report.completed + report.failed + report.busy_dropped,
        requests as u64,
        "{}",
        report.to_json()
    );
    // …no submitted tag is left unresolved…
    assert!(
        journal.records.iter().all(|r| r.outcome.is_some()),
        "silent tags after worker crash"
    );
    // …and the healthy shard plus the restarted one still complete the
    // bulk of the run.
    assert!(
        report.completed > (requests as u64) / 2,
        "{}",
        report.to_json()
    );
    // The crash actually happened and was observed by the server.
    let m = server.metrics_snapshot();
    assert_eq!(m.counter("server.shard_crashes"), 1);

    server.stop();
}

#[test]
fn shutdown_frame_stops_the_server() {
    let server = quick_server(ServerConfig {
        retry: RetryKind::Sentinel,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    assert!(!server.shutdown_requested());
    send_shutdown(&addr).expect("shutdown handshake");
    // The flag is set by the connection thread right after GOODBYE.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !server.shutdown_requested() {
        assert!(
            std::time::Instant::now() < deadline,
            "shutdown flag never set"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    server.stop();
}
