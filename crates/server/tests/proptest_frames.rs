//! Property-based tests for the wire protocol (run with
//! `--features proptest`).
//!
//! Three families:
//! - round-trip: encode → decode is the identity for every request and
//!   response the encoders can produce;
//! - rejection: every strict prefix of a valid payload is refused, and a
//!   frame header announcing more than `MAX_FRAME_BYTES` is refused
//!   before any payload is read;
//! - framing: a stream of many frames survives concatenation — each
//!   payload comes back whole and in order.

use proptest::prelude::*;
use rif_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BusyReason, ErrorCode, Request, Response, WireError, MAX_FRAME_BYTES,
};
use std::io::Cursor;

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0u8..5,
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(|(kind, tenant, tag, offset, bytes)| match kind {
            0 => Request::Read {
                tenant,
                tag,
                offset,
                bytes,
            },
            1 => Request::Write {
                tenant,
                tag,
                offset,
                bytes,
            },
            2 => Request::Stats { tag },
            3 => Request::Flush { tag },
            _ => Request::Shutdown { tag },
        })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        0u8..6,
        any::<u64>(),
        any::<u64>(),
        // Printable-ASCII stats text (the shim has no regex strategies).
        prop::collection::vec(0x20u8..0x7F, 0..120)
            .prop_map(|b| String::from_utf8(b).expect("printable ascii")),
    )
        .prop_map(|(kind, tag, latency, text)| match kind {
            0 => Response::Done {
                tag,
                latency_ns: latency,
            },
            1 => Response::Busy {
                tag,
                reason: if latency % 2 == 0 {
                    BusyReason::Queue
                } else {
                    BusyReason::RateLimit
                },
            },
            2 => Response::Error {
                tag,
                code: match latency % 3 {
                    0 => ErrorCode::BadRequest,
                    1 => ErrorCode::BadLength,
                    _ => ErrorCode::ShuttingDown,
                },
            },
            3 => Response::Stats { tag, text },
            4 => Response::Flushed { tag },
            _ => Response::Goodbye { tag },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_decode_roundtrips(req in request_strategy()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc), Ok(req));
    }

    #[test]
    fn response_encode_decode_roundtrips(resp in response_strategy()) {
        let enc = encode_response(&resp);
        prop_assert_eq!(decode_response(&enc), Ok(resp.clone()));
    }

    #[test]
    fn truncated_requests_are_rejected(req in request_strategy(), cut_seed in any::<u64>()) {
        let enc = encode_request(&req);
        // Every strict prefix must fail to decode; none may panic.
        let cut = (cut_seed as usize) % enc.len();
        let e = decode_request(&enc[..cut]).expect_err("prefix must be rejected");
        prop_assert!(
            matches!(e, WireError::Truncated { .. } | WireError::Empty),
            "cut {}: {:?}", cut, e
        );
    }

    #[test]
    fn truncated_responses_are_rejected(resp in response_strategy(), cut_seed in any::<u64>()) {
        let enc = encode_response(&resp);
        let cut = (cut_seed as usize) % enc.len();
        let got = decode_response(&enc[..cut]);
        // STATS prefixes that still cover the tag decode as shorter
        // (still-valid) stats text; everything else must be refused.
        match got {
            Err(WireError::Truncated { .. }) | Err(WireError::Empty) => {}
            Ok(Response::Stats { .. }) if matches!(resp, Response::Stats { .. }) && cut >= 9 => {}
            other => prop_assert!(false, "cut {}: {:?}", cut, other),
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_payload_io(extra in 1u32..1_000_000) {
        let len = MAX_FRAME_BYTES.saturating_add(extra);
        let mut buf = len.to_le_bytes().to_vec();
        // No payload behind the header at all: the reader must refuse on
        // the header alone instead of trying to allocate and read.
        let e = read_frame(&mut Cursor::new(&mut buf)).expect_err("oversized must fail");
        prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_streams_concatenate_losslessly(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20)
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).expect("write");
        }
        let mut cur = Cursor::new(wire);
        for p in &payloads {
            let got = read_frame(&mut cur).expect("read").expect("frame present");
            prop_assert_eq!(&got, p);
        }
        prop_assert_eq!(read_frame(&mut cur).expect("eof read"), None);
    }

    #[test]
    fn corrupt_opcodes_never_panic(payload in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes: decoding may fail but must never panic, and a
        // success must re-encode to the exact same bytes (canonicality),
        // except for requests only — responses include STATS whose text
        // re-encodes identically too.
        if let Ok(req) = decode_request(&payload) {
            prop_assert_eq!(encode_request(&req), payload.clone());
        }
        if let Ok(resp) = decode_response(&payload) {
            prop_assert_eq!(encode_response(&resp), payload);
        }
    }
}
