//! Property-based tests for the wire protocol (run with
//! `--features proptest`).
//!
//! Three families:
//! - round-trip: encode → decode is the identity for every request and
//!   response the encoders can produce;
//! - rejection: every strict prefix of a valid payload is refused, and a
//!   frame header announcing more than `MAX_FRAME_BYTES` is refused
//!   before any payload is read;
//! - framing: a stream of many frames survives concatenation — each
//!   payload comes back whole and in order.

use proptest::prelude::*;
use rif_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    BatchEntry, BusyReason, ErrorCode, Request, Response, WireError, MAX_FRAME_BYTES,
};
use rif_workloads::IoOp;
use std::io::Cursor;

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        0u8..5,
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(|(kind, tenant, tag, offset, bytes)| match kind {
            0 => Request::Read {
                tenant,
                tag,
                offset,
                bytes,
            },
            1 => Request::Write {
                tenant,
                tag,
                offset,
                bytes,
            },
            2 => Request::Stats { tag },
            3 => Request::Flush { tag },
            _ => Request::Shutdown { tag },
        })
}

fn batch_entry_strategy() -> impl Strategy<Value = BatchEntry> {
    (
        0u8..2,
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(|(op, tenant, tag, offset, bytes, retry_of)| BatchEntry {
            op: if op == 0 { IoOp::Read } else { IoOp::Write },
            tenant,
            tag,
            offset,
            bytes,
            retry_of,
        })
}

fn batch_strategy() -> impl Strategy<Value = Request> {
    prop::collection::vec(batch_entry_strategy(), 1..24).prop_map(Request::Batch)
}

fn hello_strategy() -> impl Strategy<Value = Request> {
    (any::<u64>(), any::<u32>()).prop_map(|(tag, version)| Request::Hello { tag, version })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        0u8..7,
        any::<u64>(),
        any::<u64>(),
        // Printable-ASCII stats text (the shim has no regex strategies).
        prop::collection::vec(0x20u8..0x7F, 0..120)
            .prop_map(|b| String::from_utf8(b).expect("printable ascii")),
    )
        .prop_map(|(kind, tag, latency, text)| match kind {
            0 => Response::Done {
                tag,
                latency_ns: latency,
            },
            1 => Response::Busy {
                tag,
                reason: match latency % 3 {
                    0 => BusyReason::Queue,
                    1 => BusyReason::RateLimit,
                    _ => BusyReason::Unavailable,
                },
            },
            2 => Response::Error {
                tag,
                code: match latency % 4 {
                    0 => ErrorCode::BadRequest,
                    1 => ErrorCode::BadLength,
                    2 => ErrorCode::Internal,
                    _ => ErrorCode::ShuttingDown,
                },
            },
            3 => Response::Stats { tag, text },
            4 => Response::Flushed { tag },
            5 => Response::HelloAck {
                tag,
                version: latency as u32,
            },
            _ => Response::Goodbye { tag },
        })
}

/// Applies one chaos-proxy-style mutation to an encoded buffer:
/// `0` flips a single bit, `1` overwrites one byte, `2` truncates.
fn mutate(buf: &mut Vec<u8>, kind: u8, pos_seed: u64, byte: u8) {
    if buf.is_empty() {
        return;
    }
    let pos = (pos_seed as usize) % buf.len();
    match kind {
        0 => buf[pos] ^= 1 << (pos_seed % 8),
        1 => buf[pos] = byte,
        _ => buf.truncate(pos),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_decode_roundtrips(req in request_strategy()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc), Ok(req));
    }

    #[test]
    fn response_encode_decode_roundtrips(resp in response_strategy()) {
        let enc = encode_response(&resp);
        prop_assert_eq!(decode_response(&enc), Ok(resp.clone()));
    }

    #[test]
    fn truncated_requests_are_rejected(req in request_strategy(), cut_seed in any::<u64>()) {
        let enc = encode_request(&req);
        // Every strict prefix must fail to decode; none may panic.
        let cut = (cut_seed as usize) % enc.len();
        let e = decode_request(&enc[..cut]).expect_err("prefix must be rejected");
        prop_assert!(
            matches!(e, WireError::Truncated { .. } | WireError::Empty),
            "cut {}: {:?}", cut, e
        );
    }

    #[test]
    fn truncated_responses_are_rejected(resp in response_strategy(), cut_seed in any::<u64>()) {
        let enc = encode_response(&resp);
        let cut = (cut_seed as usize) % enc.len();
        let got = decode_response(&enc[..cut]);
        // STATS prefixes that still cover the tag decode as shorter
        // (still-valid) stats text; everything else must be refused.
        match got {
            Err(WireError::Truncated { .. }) | Err(WireError::Empty) => {}
            Ok(Response::Stats { .. }) if matches!(resp, Response::Stats { .. }) && cut >= 9 => {}
            other => prop_assert!(false, "cut {}: {:?}", cut, other),
        }
    }

    #[test]
    fn oversized_lengths_are_rejected_before_payload_io(extra in 1u32..1_000_000) {
        let len = MAX_FRAME_BYTES.saturating_add(extra);
        let mut buf = len.to_le_bytes().to_vec();
        // No payload behind the header at all: the reader must refuse on
        // the header alone instead of trying to allocate and read.
        let e = read_frame(&mut Cursor::new(&mut buf)).expect_err("oversized must fail");
        prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_streams_concatenate_losslessly(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20)
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).expect("write");
        }
        let mut cur = Cursor::new(wire);
        for p in &payloads {
            let got = read_frame(&mut cur).expect("read").expect("frame present");
            prop_assert_eq!(&got, p);
        }
        prop_assert_eq!(read_frame(&mut cur).expect("eof read"), None);
    }

    #[test]
    fn mutated_requests_never_panic_the_decoder(
        req in request_strategy(),
        kind in 0u8..3,
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        // Start from a *valid* encoding, then vandalize it the way the
        // chaos proxy does: flip a bit, splice a byte, or truncate.
        let mut enc = encode_request(&req);
        mutate(&mut enc, kind, pos_seed, byte);
        // Decode must return cleanly — Ok (the mutation landed on a
        // don't-care bit pattern that is still canonical) or a typed Err —
        // and must never panic.
        let _ = decode_request(&enc);
    }

    #[test]
    fn mutated_responses_never_panic_the_decoder(
        resp in response_strategy(),
        kind in 0u8..3,
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let mut enc = encode_response(&resp);
        mutate(&mut enc, kind, pos_seed, byte);
        let _ = decode_response(&enc);
    }

    #[test]
    fn mutated_frame_streams_never_panic_the_frame_buffer(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
        kind in 0u8..3,
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
        chunk in 1usize..17,
    ) {
        use rif_server::protocol::FrameBuffer;
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p).expect("write");
        }
        mutate(&mut wire, kind, pos_seed, byte);
        // Feed the vandalized stream in odd-sized chunks; the buffer must
        // hand back frames or a clean error, never panic, and an error
        // must be sticky (the stream is poisoned, not mis-framed).
        let mut fb = FrameBuffer::new();
        let mut poisoned = false;
        for piece in wire.chunks(chunk) {
            fb.feed(piece);
            loop {
                match fb.next_frame() {
                    Ok(Some(frame)) => {
                        prop_assert!(!poisoned, "frame after poison");
                        let _ = decode_request(&frame);
                        let _ = decode_response(&frame);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn batch_requests_roundtrip(req in batch_strategy()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc), Ok(req));
    }

    #[test]
    fn hello_requests_roundtrip(req in hello_strategy()) {
        let enc = encode_request(&req);
        prop_assert_eq!(decode_request(&enc), Ok(req));
    }

    #[test]
    fn truncated_batches_are_rejected(req in batch_strategy(), cut_seed in any::<u64>()) {
        let enc = encode_request(&req);
        let cut = (cut_seed as usize) % enc.len();
        let e = decode_request(&enc[..cut]).expect_err("prefix must be rejected");
        prop_assert!(
            matches!(e, WireError::Truncated { .. } | WireError::Empty),
            "cut {}: {:?}", cut, e
        );
    }

    #[test]
    fn batch_count_lies_never_panic_or_misparse(
        req in batch_strategy(),
        lie in any::<u16>(),
    ) {
        // The nested length prefix: overwrite the entry count with an
        // arbitrary lie. Decode must refuse any count that disagrees
        // with the payload it frames — without panicking.
        let true_count = match &req {
            Request::Batch(entries) => entries.len() as u16,
            _ => unreachable!(),
        };
        let mut enc = encode_request(&req);
        enc[1..3].copy_from_slice(&lie.to_le_bytes());
        match decode_request(&enc) {
            Ok(got) => {
                prop_assert_eq!(lie, true_count, "a lying count must not decode");
                prop_assert_eq!(got, req);
            }
            Err(_) => prop_assert!(lie != true_count, "the honest count must decode"),
        }
    }

    #[test]
    fn mutated_batch_frames_never_panic_the_frame_buffer(
        batches in prop::collection::vec(batch_strategy(), 1..6),
        kind in 0u8..3,
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
        chunk in 1usize..17,
    ) {
        use rif_server::protocol::FrameBuffer;
        // A stream of valid BATCH frames, vandalized once (bit flip,
        // byte splice, or truncation — including mid-count and mid-entry
        // positions), fed in odd-sized chunks. The framing layer and the
        // batch decoder must return frames/typed errors, never panic.
        let mut wire = Vec::new();
        for b in &batches {
            write_frame(&mut wire, &encode_request(b)).expect("write");
        }
        mutate(&mut wire, kind, pos_seed, byte);
        let mut fb = FrameBuffer::new();
        let mut poisoned = false;
        for piece in wire.chunks(chunk) {
            fb.feed(piece);
            loop {
                match fb.next_frame() {
                    Ok(Some(frame)) => {
                        prop_assert!(!poisoned, "frame after poison");
                        let _ = decode_request(&frame);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_opcodes_never_panic(payload in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes: decoding may fail but must never panic, and a
        // success must re-encode to the exact same bytes (canonicality),
        // except for requests only — responses include STATS whose text
        // re-encodes identically too.
        if let Ok(req) = decode_request(&payload) {
            prop_assert_eq!(encode_request(&req), payload.clone());
        }
        if let Ok(resp) = decode_response(&payload) {
            prop_assert_eq!(encode_response(&resp), payload);
        }
    }
}

// ----- zero-copy path equivalence ----------------------------------------
//
// The event-loop core decodes frames in place (`decode_request_view`,
// `RecvBuffer`) instead of copying (`decode_request`, `FrameBuffer`).
// These properties pin the two paths byte-for-byte equal on valid,
// vandalized, and arbitrary inputs, at every possible read boundary.

/// Any request the encoders can produce: singles, batches, or HELLO.
fn any_request_strategy() -> impl Strategy<Value = Request> {
    (
        0u8..3,
        request_strategy(),
        batch_strategy(),
        hello_strategy(),
    )
        .prop_map(|(kind, single, batch, hello)| match kind {
            0 => single,
            1 => batch,
            _ => hello,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn view_decoder_matches_decode_request_on_vandalized_encodings(
        req in any_request_strategy(),
        vandalize in any::<bool>(),
        kind in 0u8..3,
        pos_seed in any::<u64>(),
        byte in any::<u8>(),
    ) {
        use rif_server::ring::decode_request_view;
        let mut enc = encode_request(&req);
        if vandalize {
            mutate(&mut enc, kind, pos_seed, byte);
        }
        match (decode_request(&enc), decode_request_view(&enc)) {
            (Ok(owned), Ok(view)) => prop_assert_eq!(owned, view.to_request()),
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (owned, view) => prop_assert!(
                false,
                "decoders disagree: owned={owned:?} view={view:?}"
            ),
        }
    }

    #[test]
    fn view_decoder_matches_decode_request_on_arbitrary_bytes(
        payload in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        use rif_server::ring::decode_request_view;
        match (decode_request(&payload), decode_request_view(&payload)) {
            (Ok(owned), Ok(view)) => prop_assert_eq!(owned, view.to_request()),
            (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
            (owned, view) => prop_assert!(
                false,
                "decoders disagree: owned={owned:?} view={view:?}"
            ),
        }
    }

    #[test]
    fn recv_buffer_matches_frame_buffer_at_every_read_boundary(
        reqs in prop::collection::vec(any_request_strategy(), 0..6),
        tail_kind in 0u8..3,
        tail_seed in any::<u64>(),
        chunk_seeds in prop::collection::vec(any::<u16>(), 1..12),
    ) {
        use rif_server::protocol::FrameBuffer;
        use rif_server::ring::RecvBuffer;

        // Build one contiguous stream of length-prefixed frames...
        let mut stream = Vec::new();
        for r in &reqs {
            let payload = encode_request(r);
            stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            stream.extend_from_slice(&payload);
        }
        // ...optionally ending in hostility: an oversized header that
        // must poison both buffers identically, or a truncated frame
        // that must leave both waiting forever.
        match tail_kind {
            1 => {
                let len = MAX_FRAME_BYTES + 1 + (tail_seed as u32 % 1024);
                stream.extend_from_slice(&len.to_le_bytes());
                stream.extend_from_slice(&[0xAB; 7]);
            }
            2 => {
                let payload = encode_request(&Request::Stats { tag: tail_seed });
                stream.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                let keep = (tail_seed as usize) % (payload.len().max(1));
                stream.extend_from_slice(&payload[..keep]);
            }
            _ => {}
        }

        // Feed both buffers the same chunks, popping everything after
        // every chunk: equivalence must hold at every read boundary,
        // not just at end of stream.
        let mut fb = FrameBuffer::new();
        let mut rb = RecvBuffer::new();
        let mut off = 0usize;
        let mut fb_err: Option<WireError> = None;
        for seed in chunk_seeds.iter().chain(std::iter::once(&u16::MAX)) {
            let remaining = stream.len() - off;
            if remaining == 0 {
                break;
            }
            let n = if *seed == u16::MAX {
                remaining // final chunk: flush the rest
            } else {
                1 + (*seed as usize) % remaining
            };
            fb.feed(&stream[off..off + n]);
            rb.feed(&stream[off..off + n]);
            off += n;
            loop {
                // FrameBuffer's Err is sticky by construction (the bad
                // header is never consumed); RecvBuffer poisons
                // explicitly. Model both as terminal.
                let want = match &fb_err {
                    Some(e) => Err(e.clone()),
                    None => fb.next_frame(),
                };
                if let Err(e) = &want {
                    fb_err = Some(e.clone());
                }
                let got = rb.next_frame();
                match (want, got) {
                    (Ok(Some(a)), Ok(Some(b))) => prop_assert_eq!(a, b.to_vec()),
                    (Ok(None), Ok(None)) => break,
                    (Err(e1), Err(e2)) => {
                        prop_assert_eq!(e1, e2);
                        break;
                    }
                    (want, got) => prop_assert!(
                        false,
                        "buffers disagree: frame={want:?} ring={got:?}"
                    ),
                }
            }
        }
    }

    #[test]
    fn response_frame_encoder_matches_write_frame(resp in response_strategy()) {
        use rif_server::protocol::encode_response_frame_into;
        let mut got = Vec::new();
        encode_response_frame_into(&resp, &mut got);
        let mut want = Vec::new();
        write_frame(&mut want, &encode_response(&resp)).expect("vec write");
        prop_assert_eq!(got, want);
    }
}
