//! Capture → replay end to end: a live server journals the load it
//! serves, and the capture replays bit-for-bit through the offline
//! simulator, identically across repeat runs and thread counts. This is
//! the determinism contract the recorder exists for.

use std::time::Duration;

use rif_events::parallel_trials;
use rif_server::client::{run_load, run_load_journaled, LoadConfig};
use rif_server::replay::{diff_against_capture, run_replay_journaled, ReplayConfig};
use rif_server::server::{Server, ServerConfig};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::Capture;

fn capture_server(mut cfg: ServerConfig) -> Server {
    cfg.capture = true;
    cfg.time_scale = 200.0;
    Server::start(cfg, 0).expect("bind loopback")
}

/// One offline replay of a capture: the deterministic SimReport JSON.
fn offline_replay(cap: &Capture) -> String {
    let sim = Simulator::new(SsdConfig::small(RetryKind::Rif, 3000));
    sim.run(&cap.to_trace()).to_json()
}

#[test]
fn golden_capture_replays_bit_exact_offline() {
    // Serve a 10k-request synthetic load with capture enabled…
    let requests = 10_000;
    let server = capture_server(ServerConfig {
        shards: 2,
        inflight_limit: 256,
        ..ServerConfig::default()
    });
    let report = run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        connections: 4,
        depth: 16,
        requests,
        read_ratio: 0.9,
        seed: 11,
        ..LoadConfig::default()
    })
    .expect("load run");
    assert_eq!(report.completed, requests as u64, "{}", report.to_json());

    let cap = server.recorder().capture();
    server.stop();
    assert_eq!(cap.len(), requests, "one journal row per logical request");

    // …survive the CSV round trip the way the `--capture FILE` /
    // `--replay-offline FILE` pair does…
    let csv = cap.to_csv();
    let parsed = Capture::parse_csv(&csv).expect("own capture parses");
    assert_eq!(parsed.to_csv(), csv, "CSV round trip is byte-identical");

    // …and replay deterministically: two offline runs render the exact
    // same report bytes.
    let first = offline_replay(&parsed);
    let second = offline_replay(&parsed);
    assert_eq!(first, second, "offline replay must be bit-exact");
    assert!(
        first.contains("\"completed_requests\": 10000"),
        "replay must complete the full capture: {first}"
    );

    // Thread counts must not leak into the result: every trial on 1
    // worker matches every trial on 8.
    let solo = parallel_trials(1, 2, |_| offline_replay(&parsed));
    let wide = parallel_trials(8, 2, |_| offline_replay(&parsed));
    for r in solo.iter().chain(wide.iter()) {
        assert_eq!(*r, first, "thread-count-dependent replay");
    }
}

#[test]
fn recorder_journals_logical_requests_once_despite_retries() {
    // Crash a shard mid-load: dead-window bounces force BUSY retries and
    // the crash drain forces errors, so the journal holds re-issued
    // submissions (`retry_of` set). The recorder must still journal each
    // *logical* request at most once — resolved requests exactly once.
    let requests = 600;
    let server = capture_server(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let (report, journal) = std::thread::scope(|s| {
        let killer = s.spawn(|| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while server.metrics_snapshot().counter("server.completed") < 50 {
                assert!(std::time::Instant::now() < deadline, "load never started");
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(server.inject_shard_crash(0, Duration::from_millis(50)));
        });
        let out = run_load_journaled(&LoadConfig {
            addr: addr.clone(),
            connections: 2,
            depth: 8,
            requests,
            seed: 9,
            busy_backoff: Duration::from_millis(2),
            request_deadline: Duration::from_millis(500),
            ..LoadConfig::default()
        })
        .expect("load run");
        killer.join().expect("killer thread");
        out
    });

    let cap = server.recorder().capture();
    server.stop();

    assert!(
        journal.records.iter().any(|r| r.retry_of.is_some()),
        "the crash window must have forced at least one re-issue"
    );
    // Every resolved logical request appears exactly once; requests the
    // client abandoned (all admissions bounced) may drop out, so the
    // capture can never exceed the logical count.
    assert!(
        cap.len() as u64 >= report.completed + report.failed,
        "capture lost resolved requests: {} < {} + {}",
        cap.len(),
        report.completed,
        report.failed
    );
    assert!(
        cap.len() <= requests,
        "retry re-issues were journaled as new logical requests: {} > {requests}",
        cap.len()
    );
    // And the capture still replays cleanly offline.
    let parsed = Capture::parse_csv(&cap.to_csv()).expect("capture parses");
    assert_eq!(offline_replay(&parsed), offline_replay(&parsed));
}

#[test]
fn batched_load_is_clean_and_journals_per_entry() {
    // BATCH(8) frames through HELLO negotiation: the run must stay
    // error-free, actually batch, and journal one capture row per
    // request (admission is per entry, not per frame).
    let requests = 800;
    let server = capture_server(ServerConfig {
        shards: 2,
        inflight_limit: 128,
        ..ServerConfig::default()
    });
    let report = run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        connections: 2,
        depth: 16,
        requests,
        batch: 8,
        seed: 21,
        ..LoadConfig::default()
    })
    .expect("batched load");
    assert_eq!(report.completed, requests as u64, "{}", report.to_json());
    assert_eq!(report.protocol_errors, 0, "{}", report.to_json());
    assert!(
        report.batches_sent > 0,
        "HELLO must have negotiated v2 batching: {}",
        report.to_json()
    );
    let m = server.metrics_snapshot();
    assert!(m.counter("server.batches") > 0, "server saw no BATCH frame");

    let cap = server.recorder().capture();
    server.stop();
    assert_eq!(cap.len(), requests, "one capture row per batched request");
}

#[test]
fn live_replay_matches_its_capture() {
    // Capture a load, then drive the capture back through a fresh server
    // at 20x recorded pacing — batched — and diff the replay journal
    // against the capture: every captured request back on the wire
    // exactly once.
    let requests = 300;
    let server = capture_server(ServerConfig::default());
    run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        connections: 2,
        depth: 8,
        requests,
        seed: 33,
        ..LoadConfig::default()
    })
    .expect("capture load");
    let cap = server.recorder().capture();
    server.stop();
    assert_eq!(cap.len(), requests);

    let target = capture_server(ServerConfig::default());
    let rcfg = ReplayConfig {
        addr: target.local_addr().to_string(),
        connections: 2,
        depth: 8,
        speed: 20.0,
        batch: 4,
        ..ReplayConfig::default()
    };
    let (report, journal) = run_replay_journaled(&rcfg, &cap).expect("replay run");
    assert_eq!(report.completed, requests as u64, "{}", report.to_json());

    let diff = diff_against_capture(&journal, &cap);
    assert!(diff.pass(), "{}", diff.to_json());
    assert_eq!(diff.matched, requests as u64);

    // The replayed traffic was itself captured — and is the same
    // multiset of requests, so its offline replay costs the same.
    let recap = target.recorder().capture();
    target.stop();
    assert_eq!(recap.len(), requests);
}
