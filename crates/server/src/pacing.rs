//! The virtual-time ↔ wall-clock pacing bridge.
//!
//! The simulator's clock is pure virtual nanoseconds; the service runs in
//! wall time. A [`VirtualClock`] maps the wall-clock interval since server
//! start onto the simulation timeline with a configurable scale factor:
//! `scale` simulated nanoseconds elapse per wall nanosecond. Requests are
//! submitted at the virtual *now*, and each shard repeatedly advances its
//! simulator up to the virtual now — so a simulated 55-µs read completes
//! roughly `55 µs / scale` of wall time after it was admitted.
//!
//! `scale > 1` is time compression (useful in tests and CI: simulated
//! latencies play out faster than real time); `scale < 1` stretches the
//! simulation out; `scale = 1` is real-time pacing.

use std::time::Instant;

use rif_events::SimTime;

/// Maps wall-clock nanoseconds to virtual nanoseconds: the pure core of
/// the bridge, separated out so tests need no real clock.
pub fn map_elapsed(wall_ns: u64, scale: f64) -> SimTime {
    assert!(
        scale.is_finite() && scale > 0.0,
        "time scale must be positive and finite, got {scale}"
    );
    SimTime::from_ns((wall_ns as f64 * scale) as u64)
}

/// The inverse map: how many wall nanoseconds until virtual time `t`.
/// Returns zero when `t` is already in the virtual past.
pub fn wall_ns_until(now_wall_ns: u64, t: SimTime, scale: f64) -> u64 {
    let target_wall = (t.as_ns() as f64 / scale) as u64;
    target_wall.saturating_sub(now_wall_ns)
}

/// A wall-clock-anchored virtual clock.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    start: Instant,
    scale: f64,
}

impl VirtualClock {
    /// Starts the virtual clock now, at virtual time zero.
    pub fn start(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be positive and finite, got {scale}"
        );
        VirtualClock {
            start: Instant::now(),
            scale,
        }
    }

    /// The configured virtual-ns-per-wall-ns factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        map_elapsed(self.start.elapsed().as_nanos() as u64, self.scale)
    }

    /// Wall time remaining until virtual time `t`, as a `Duration`
    /// suitable for `recv_timeout`. Zero if `t` has already passed.
    pub fn wall_until(&self, t: SimTime) -> std::time::Duration {
        let wall_ns = wall_ns_until(self.start.elapsed().as_nanos() as u64, t, self.scale);
        std::time::Duration::from_nanos(wall_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_scale_maps_one_to_one() {
        assert_eq!(map_elapsed(0, 1.0), SimTime::ZERO);
        assert_eq!(map_elapsed(12_345, 1.0), SimTime::from_ns(12_345));
    }

    #[test]
    fn compression_and_stretch() {
        // 50× compression: 1 wall µs is 50 virtual µs.
        assert_eq!(map_elapsed(1_000, 50.0), SimTime::from_us(50));
        // 0.5× stretch: 1 wall µs is 500 virtual ns.
        assert_eq!(map_elapsed(1_000, 0.5), SimTime::from_ns(500));
    }

    #[test]
    fn inverse_map_round_trips() {
        for scale in [0.25, 1.0, 8.0] {
            let t = SimTime::from_us(400);
            let wall = wall_ns_until(0, t, scale);
            let back = map_elapsed(wall, scale);
            let err = back.as_ns().abs_diff(t.as_ns());
            assert!(err <= 2, "scale {scale}: {back:?} vs {t:?}");
        }
    }

    #[test]
    fn past_targets_need_no_wait() {
        assert_eq!(wall_ns_until(1_000_000, SimTime::from_ns(10), 1.0), 0);
    }

    #[test]
    fn real_clock_is_monotonic_and_scaled() {
        let c = VirtualClock::start(100.0);
        let a = c.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "virtual time must advance with wall time");
        // 2 ms wall at 100× is at least 200 ms virtual.
        assert!(b.since(a) >= rif_events::SimDuration::from_ms(200));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_is_rejected() {
        let _ = VirtualClock::start(0.0);
    }
}
