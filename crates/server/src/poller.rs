//! Readiness polling behind a trait: a vendored `epoll` shim on Linux
//! with a portable `poll(2)` fallback, keeping the std-only stance.
//!
//! The event-loop server core (see [`crate::event_loop`]) multiplexes
//! every connection socket on one thread. It needs exactly four
//! readiness operations — register, re-register, deregister, wait — so
//! that is the whole [`Poller`] trait. Two implementations exist:
//!
//! - [`Epoll`]: raw `epoll_create1`/`epoll_ctl`/`epoll_wait` syscalls
//!   declared directly against libc (which every Rust binary on Linux
//!   already links), O(ready) per wakeup. Linux only.
//! - [`PollFallback`]: POSIX `poll(2)` over a maintained fd table,
//!   O(registered) per wakeup. Portable to every Unix (macOS included),
//!   and the reference implementation the tests compare `Epoll` against.
//!
//! Both are **level-triggered**: an event keeps firing while the
//! condition holds, so a handler that drains partially is woken again —
//! no starvation bookkeeping needed in the loop.
//!
//! A [`Waker`] lets other threads (shard workers, `Server::stop`) pull
//! the loop out of a blocking wait: a nonblocking loopback socket pair
//! whose read end is registered like any connection. Writes are
//! deduplicated with an atomic flag so a storm of completions costs one
//! pipe byte, not thousands.

use std::io;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only (rare: a connection being back-pressured on read).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions — a connection with queued responses.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: usize,
    /// The fd is readable (includes EOF/hangup — a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The fd is in an error or hangup state; the owner should read to
    /// observe the error and close.
    pub error: bool,
}

/// The readiness-multiplexing surface the event loop runs on.
pub trait Poller: Send {
    /// Starts watching `fd` under `token` with the given interest.
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Changes the interest set of an already-registered fd.
    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()>;
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Blocks until at least one registered fd is ready (or `timeout`
    /// expires; `None` blocks indefinitely), appending events to `out`.
    /// Returns the number of events delivered.
    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<usize>;
    /// A short name for logs and STATS ("epoll" or "poll").
    fn name(&self) -> &'static str;
}

/// The best poller for this platform: `epoll` on Linux, `poll(2)`
/// elsewhere. `RIF_POLLER=poll` forces the fallback (useful for testing
/// the portable path on Linux).
pub fn best_poller() -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        if std::env::var_os("RIF_POLLER").map_or(true, |v| v != "poll") {
            return Ok(Box::new(Epoll::new()?));
        }
    }
    Ok(Box::new(PollFallback::new()))
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round up so a 100µs timeout polls at 1ms, not busily at 0ms.
        Some(t) => t
            .as_millis()
            .max(if t.is_zero() { 0 } else { 1 })
            .min(i32::MAX as u128) as i32,
        None => -1,
    }
}

// ----- epoll (Linux) -----------------------------------------------------

/// `epoll_event.data`: a union in C; the loop only ever stores the token.
/// On x86 the struct is `__attribute__((packed))`; elsewhere it has
/// natural alignment — mirror glibc exactly or the kernel scribbles over
/// the wrong bytes.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_os = "linux")]
mod epoll_sys {
    use super::EpollEvent;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// The Linux `epoll` poller: O(ready) wakeups, which is what makes a
/// 10k-connection loop cheap when only a handful are active.
#[cfg(target_os = "linux")]
pub struct Epoll {
    epfd: RawFd,
    /// Scratch buffer reused across waits (no per-wait allocation).
    events: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 takes a flag word and returns an fd or -1.
        let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            events: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: {
                let mut e = epoll_sys::EPOLLRDHUP;
                if interest.readable {
                    e |= epoll_sys::EPOLLIN;
                }
                if interest.writable {
                    e |= epoll_sys::EPOLLOUT;
                }
                e
            },
            data: token as u64,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the call;
        // DEL ignores the event pointer on modern kernels but passing one
        // is always allowed.
        let rc = unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller for Epoll {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(epoll_sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.ctl(epoll_sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.ctl(epoll_sys::EPOLL_CTL_DEL, fd, 0, Interest::READ)
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<usize> {
        let n = loop {
            // SAFETY: the events buffer outlives the call and maxevents
            // matches its length.
            let rc = unsafe {
                epoll_sys::epoll_wait(
                    self.epfd,
                    self.events.as_mut_ptr(),
                    self.events.len() as i32,
                    timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &self.events[..n] {
            let bits = ev.events;
            out.push(PollEvent {
                token: ev.data as usize,
                readable: bits & (epoll_sys::EPOLLIN | epoll_sys::EPOLLRDHUP | epoll_sys::EPOLLHUP)
                    != 0,
                writable: bits & epoll_sys::EPOLLOUT != 0,
                error: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed exactly once.
        unsafe { epoll_sys::close(self.epfd) };
    }
}

// ----- poll(2) fallback --------------------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

mod poll_sys {
    use super::PollFd;
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    extern "C" {
        // nfds_t is `unsigned long` on every Unix this builds for.
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }
}

/// Portable `poll(2)` poller: the whole fd table is handed to the kernel
/// on every wait, so it is O(registered) — fine for tests and moderate
/// fan-in, and the semantic reference for [`Epoll`].
pub struct PollFallback {
    fds: Vec<PollFd>,
    tokens: Vec<usize>,
}

impl PollFallback {
    /// An empty table.
    pub fn new() -> PollFallback {
        PollFallback {
            fds: Vec::new(),
            tokens: Vec::new(),
        }
    }

    fn events_bits(interest: Interest) -> i16 {
        let mut e = 0i16;
        if interest.readable {
            e |= poll_sys::POLLIN;
        }
        if interest.writable {
            e |= poll_sys::POLLOUT;
        }
        e
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }
}

impl Default for PollFallback {
    fn default() -> Self {
        PollFallback::new()
    }
}

impl Poller for PollFallback {
    fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.fds.push(PollFd {
            fd,
            events: Self::events_bits(interest),
            revents: 0,
        });
        self.tokens.push(token);
        Ok(())
    }

    fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i].events = Self::events_bits(interest);
        self.tokens[i] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<usize> {
        let n = loop {
            // SAFETY: the fd table is a valid, initialized slice of
            // repr(C) pollfd structs for the duration of the call.
            let rc = unsafe {
                poll_sys::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as u64,
                    timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        let mut delivered = 0;
        for (p, &token) in self.fds.iter_mut().zip(&self.tokens) {
            if p.revents == 0 {
                continue;
            }
            let r = p.revents;
            p.revents = 0;
            out.push(PollEvent {
                token,
                readable: r & (poll_sys::POLLIN | poll_sys::POLLHUP) != 0,
                writable: r & poll_sys::POLLOUT != 0,
                error: r & (poll_sys::POLLERR | poll_sys::POLLHUP) != 0,
            });
            delivered += 1;
            if delivered == n {
                break;
            }
        }
        Ok(delivered)
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

// ----- waker -------------------------------------------------------------

/// Cross-thread wakeup for a blocked [`Poller::wait`].
///
/// The read half lives in the event loop (registered like a connection);
/// [`Waker::wake`] writes one byte to the write half. An atomic
/// `pending` flag coalesces wakes: between two loop iterations at most
/// one byte crosses the pipe no matter how many completions arrive.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

struct WakerInner {
    write: UnixStream,
    pending: AtomicBool,
}

impl Waker {
    /// Builds the pair. Returns `(waker, read_end)`; the caller registers
    /// `read_end` with its poller and calls [`Waker::drain`] on wakeup.
    pub fn new() -> io::Result<(Waker, UnixStream)> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok((
            Waker {
                inner: Arc::new(WakerInner {
                    write,
                    pending: AtomicBool::new(false),
                }),
            },
            read,
        ))
    }

    /// Wakes the loop (idempotent until the loop calls [`Waker::drain`]).
    pub fn wake(&self) {
        if self.inner.pending.swap(true, Ordering::AcqRel) {
            return; // a byte is already in flight
        }
        // A full pipe still wakes the reader; WouldBlock is success here.
        use std::io::Write;
        let _ = (&self.inner.write).write(&[1u8]);
    }

    /// Clears the pending flag and drains queued wake bytes. The loop
    /// must call this *before* re-checking its work queues, so a wake
    /// racing the drain either lands in the drained bytes or writes a
    /// fresh byte that re-triggers the poller.
    pub fn drain(&self, read_end: &UnixStream) {
        self.inner.pending.store(false, Ordering::Release);
        use std::io::Read;
        let mut buf = [0u8; 64];
        let mut r = read_end;
        while matches!(r.read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    fn pollers() -> Vec<Box<dyn Poller>> {
        let mut v: Vec<Box<dyn Poller>> = vec![Box::new(PollFallback::new())];
        #[cfg(target_os = "linux")]
        v.push(Box::new(Epoll::new().expect("epoll_create1")));
        v
    }

    #[test]
    fn readable_event_fires_and_clears() {
        for mut p in pollers() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            p.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            // Nothing to read yet: a zero-timeout wait delivers nothing.
            let mut evs = Vec::new();
            let n = p.wait(&mut evs, Some(Duration::ZERO)).unwrap();
            assert_eq!(n, 0, "{}: spurious event", p.name());

            a.write_all(b"x").unwrap();
            let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{}", p.name());
            assert_eq!(evs[0].token, 7);
            assert!(evs[0].readable);

            // Level-triggered: the event repeats until the byte is read.
            evs.clear();
            p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(evs.len(), 1, "{}: level-trigger lost", p.name());
            let mut buf = [0u8; 8];
            let mut br = &b;
            assert_eq!(br.read(&mut buf).unwrap(), 1);
            evs.clear();
            let n = p.wait(&mut evs, Some(Duration::ZERO)).unwrap();
            assert_eq!(n, 0, "{}: event after drain", p.name());

            p.deregister(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn writable_interest_is_togglable() {
        for mut p in pollers() {
            let (a, b) = UnixStream::pair().unwrap();
            let _keep = a;
            b.set_nonblocking(true).unwrap();
            p.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
            let mut evs = Vec::new();
            // Read-only interest: an idle writable socket stays silent.
            assert_eq!(p.wait(&mut evs, Some(Duration::ZERO)).unwrap(), 0);
            // Flip to read+write: writable fires immediately.
            p.reregister(b.as_raw_fd(), 3, Interest::READ_WRITE)
                .unwrap();
            let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{}", p.name());
            assert!(evs[0].writable, "{}", p.name());
            assert!(!evs[0].readable, "{}", p.name());
            p.deregister(b.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn hangup_reports_readable() {
        for mut p in pollers() {
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            p.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
            drop(a); // peer closes
            let mut evs = Vec::new();
            let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
            assert!(n >= 1, "{}: hangup not delivered", p.name());
            assert!(
                evs[0].readable,
                "{}: hangup must read as readable (EOF)",
                p.name()
            );
        }
    }

    #[test]
    fn waker_wakes_and_coalesces() {
        for mut p in pollers() {
            let (waker, read_end) = Waker::new().unwrap();
            p.register(read_end.as_raw_fd(), 0, Interest::READ).unwrap();

            // Many wakes, one byte: all coalesce while pending.
            for _ in 0..1000 {
                waker.wake();
            }
            let mut evs = Vec::new();
            let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{}", p.name());
            waker.drain(&read_end);
            evs.clear();
            assert_eq!(p.wait(&mut evs, Some(Duration::ZERO)).unwrap(), 0);

            // A wake after the drain re-fires.
            waker.wake();
            let n = p.wait(&mut evs, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1, "{}: wake after drain lost", p.name());
            waker.drain(&read_end);
        }
    }

    #[test]
    fn cross_thread_wake_unblocks_an_indefinite_wait() {
        let mut p = best_poller().unwrap();
        let (waker, read_end) = Waker::new().unwrap();
        p.register(read_end.as_raw_fd(), 0, Interest::READ).unwrap();
        let w2 = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake();
        });
        let mut evs = Vec::new();
        // Blocks until the other thread wakes us (a hang here = failure
        // by test timeout).
        let n = p.wait(&mut evs, None).unwrap();
        assert_eq!(n, 1);
        t.join().unwrap();
    }
}
