//! Per-tenant token-bucket rate limiting.
//!
//! The bucket is deliberately clock-agnostic: every operation takes the
//! caller's monotonic time in seconds. The server feeds it wall-clock
//! time from one `Instant`; the unit tests feed it hand-picked numbers,
//! so the refill arithmetic is testable without sleeping.

use std::collections::HashMap;

/// A classic token bucket: `rate_per_sec` tokens accrue continuously up
/// to a cap of `burst`; admitting a request costs one token.
///
/// A non-positive `rate_per_sec` disables limiting — every `admit` call
/// succeeds. This is the configuration default: rate limiting is an
/// opt-in protection.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `burst` is not at least 1 while the rate is positive —
    /// such a bucket could never admit anything.
    pub fn new(rate_per_sec: f64, burst: f64, now: f64) -> Self {
        if rate_per_sec > 0.0 {
            assert!(burst >= 1.0, "burst {burst} can never admit a request");
        }
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: now,
        }
    }

    /// True when limiting is disabled (non-positive rate).
    pub fn unlimited(&self) -> bool {
        self.rate_per_sec <= 0.0
    }

    fn refill(&mut self, now: f64) {
        // A non-monotonic caller clock must not mint tokens.
        let dt = (now - self.last).max(0.0);
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
    }

    /// Tries to admit one request at time `now` (seconds on the caller's
    /// monotonic clock). Returns false when the bucket is empty.
    pub fn admit(&mut self, now: f64) -> bool {
        self.admit_n(now, 1)
    }

    /// Tries to admit `n` requests as one unit: all `n` tokens are taken
    /// or none are. This is what makes BATCH admission all-or-nothing —
    /// a batch is never left half-charged against the rate limit.
    pub fn admit_n(&mut self, now: f64, n: u32) -> bool {
        if self.unlimited() || n == 0 {
            return true;
        }
        self.refill(now);
        let need = f64::from(n);
        if self.tokens >= need {
            self.tokens -= need;
            true
        } else {
            false
        }
    }

    /// Returns `n` tokens to the bucket (capped at `burst`). Used to roll
    /// back tenants already charged when a multi-tenant batch admission
    /// fails partway: with an unchanged `now` the refund is exact.
    pub fn refund(&mut self, n: u32) {
        if self.unlimited() {
            return;
        }
        self.tokens = (self.tokens + f64::from(n)).min(self.burst);
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// One bucket per tenant id, created on first use from a shared template
/// rate. All tenants get the same limit; the map exists so one noisy
/// tenant cannot drain another's tokens.
#[derive(Debug)]
pub struct TenantBuckets {
    rate_per_sec: f64,
    burst: f64,
    buckets: HashMap<u32, TokenBucket>,
}

impl TenantBuckets {
    /// Creates the tenant map with a shared per-tenant rate.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        TenantBuckets {
            rate_per_sec,
            burst,
            buckets: HashMap::new(),
        }
    }

    /// True when limiting is globally disabled.
    pub fn unlimited(&self) -> bool {
        self.rate_per_sec <= 0.0
    }

    /// Admits one request for `tenant` at time `now`, creating the
    /// tenant's bucket (full) on first sight.
    pub fn admit(&mut self, tenant: u32, now: f64) -> bool {
        self.admit_n(tenant, now, 1)
    }

    /// Admits `n` requests for `tenant` atomically (all tokens or none),
    /// creating the tenant's bucket (full) on first sight.
    pub fn admit_n(&mut self, tenant: u32, now: f64, n: u32) -> bool {
        if self.unlimited() {
            return true;
        }
        let (rate, burst) = (self.rate_per_sec, self.burst);
        self.buckets
            .entry(tenant)
            .or_insert_with(|| TokenBucket::new(rate, burst, now))
            .admit_n(now, n)
    }

    /// Returns `n` tokens to `tenant`'s bucket (no-op for an unseen
    /// tenant — it was never charged).
    pub fn refund(&mut self, tenant: u32, n: u32) {
        if let Some(b) = self.buckets.get_mut(&tenant) {
            b.refund(n);
        }
    }

    /// Number of tenants seen so far.
    pub fn tenants(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starve_then_refill() {
        let mut b = TokenBucket::new(10.0, 3.0, 0.0);
        // The full burst is admitted instantly.
        assert!(b.admit(0.0));
        assert!(b.admit(0.0));
        assert!(b.admit(0.0));
        // Then the bucket is dry.
        assert!(!b.admit(0.0));
        assert!(!b.admit(0.05)); // 0.5 tokens accrued: still short
                                 // 10 tokens/s: one token back after 100 ms.
        assert!(b.admit(0.1 + 1e-9));
        assert!(!b.admit(0.1 + 1e-9));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(100.0, 5.0, 0.0);
        for _ in 0..5 {
            assert!(b.admit(0.0));
        }
        // An hour of idle time still refills to only `burst` tokens.
        assert!((b.available(3600.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn clock_going_backwards_does_not_mint_tokens() {
        let mut b = TokenBucket::new(10.0, 1.0, 100.0);
        assert!(b.admit(100.0));
        // now < last: no refill, and `last` must not move backwards
        // (otherwise the next call would double-count the interval).
        assert!(!b.admit(50.0));
        assert!(!b.admit(100.05));
        assert!(b.admit(100.11));
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::new(0.0, 0.0, 0.0);
        assert!(b.unlimited());
        for _ in 0..10_000 {
            assert!(b.admit(0.0));
        }
    }

    #[test]
    fn negative_rate_is_unlimited_too() {
        // A config that computes a nonsense negative rate must fail open
        // (unlimited), not underflow the token count.
        let mut b = TokenBucket::new(-5.0, 0.0, 0.0);
        assert!(b.unlimited());
        for _ in 0..1_000 {
            assert!(b.admit(0.0));
        }
    }

    #[test]
    fn burst_exactly_at_capacity_admits_exactly_burst() {
        // burst = 1: the smallest legal bucket admits exactly one request
        // per refill period, never two.
        let mut b = TokenBucket::new(1.0, 1.0, 0.0);
        assert!(b.admit(0.0));
        assert!(!b.admit(0.0));
        // Exactly one second later: exactly one token, not 1 + ε.
        assert!(b.admit(1.0));
        assert!(!b.admit(1.0));
        // Ten idle seconds refill to the 1-token cap, not 10 tokens.
        assert!(b.admit(11.0));
        assert!(!b.admit(11.0));

        // Integral burst N admits exactly N back-to-back, and the N+1'th
        // is refused even though floating-point refill ran N times.
        let mut b = TokenBucket::new(100.0, 7.0, 0.0);
        for i in 0..7 {
            assert!(b.admit(0.0), "request {i} within burst must pass");
        }
        assert!(!b.admit(0.0), "burst + 1 must be refused");
    }

    #[test]
    fn zigzag_clock_never_mints_extra_tokens() {
        // An injected non-monotonic clock oscillating ±dt around a slowly
        // advancing mean must refill no faster than the forward component
        // alone: backwards jumps are clamped to zero elapsed time and
        // `last` holds the high-water mark, so re-traversing the same
        // interval cannot double-count it.
        let mut b = TokenBucket::new(10.0, 5.0, 0.0);
        for _ in 0..5 {
            assert!(b.admit(0.0));
        }
        assert!(!b.admit(0.0));
        // Zigzag: 0.05 → 0.01 → 0.06 → 0.02 → 0.07 … forward progress is
        // only the envelope maximum (0.08 s → 0.8 tokens), so no token
        // has fully accrued, even though naively summing every positive
        // delta (0.05 s × 5 legs = 0.25 s) would have minted two.
        let mut high = 0.05;
        for step in 0..4 {
            assert!(!b.admit(high), "zigzag high {step} must not admit");
            assert!(!b.admit(high - 0.04), "zigzag low {step} must not admit");
            high += 0.01;
        }
        // By 0.201 s exactly two tokens have accrued on the envelope
        // clock; the naive double-counting clock would have four.
        assert!(b.admit(0.201));
        assert!(b.admit(0.201));
        assert!(!b.admit(0.201));
    }

    #[test]
    fn admit_n_is_all_or_nothing() {
        let mut b = TokenBucket::new(10.0, 5.0, 0.0);
        // 5 tokens: a 6-request batch is refused *without* draining any.
        assert!(!b.admit_n(0.0, 6));
        assert!((b.available(0.0) - 5.0).abs() < 1e-9);
        // A 5-request batch takes exactly the burst.
        assert!(b.admit_n(0.0, 5));
        assert!(!b.admit(0.0));
        // n = 0 is vacuously admitted even when dry.
        assert!(b.admit_n(0.0, 0));
    }

    #[test]
    fn refund_rolls_back_a_failed_group_charge() {
        let mut t = TenantBuckets::new(10.0, 4.0);
        // Tenant 1 charged for 3, tenant 2 refuses its 5 → roll back 1.
        assert!(t.admit_n(1, 0.0, 3));
        assert!(!t.admit_n(2, 0.0, 5));
        t.refund(1, 3);
        // Tenant 1's full burst is intact again.
        assert!(t.admit_n(1, 0.0, 4));
        assert!(!t.admit(1, 0.0));
        // Refunds cap at burst and unseen tenants are a no-op.
        t.refund(1, 100);
        assert!(t.admit_n(1, 0.0, 4));
        assert!(!t.admit(1, 0.0));
        t.refund(99, 7);
    }

    #[test]
    fn tenants_are_isolated() {
        let mut t = TenantBuckets::new(10.0, 2.0);
        // Tenant 1 burns its burst; tenant 2 is unaffected.
        assert!(t.admit(1, 0.0));
        assert!(t.admit(1, 0.0));
        assert!(!t.admit(1, 0.0));
        assert!(t.admit(2, 0.0));
        assert!(t.admit(2, 0.0));
        assert!(!t.admit(2, 0.0));
        assert_eq!(t.tenants(), 2);
    }
}
