//! Live replay: driving a captured trace back through a running server.
//!
//! A [`rif_workloads::Capture`] journaled by the server's
//! [`crate::recorder::TraceRecorder`] can be replayed two ways:
//!
//! - **offline**, by feeding [`Capture::to_trace`] to the
//!   `rif_ssd::Simulator` — deterministic and bit-exact, the golden-test
//!   path;
//! - **live**, through this module — the captured requests are sent back
//!   at their recorded arrival spacing (optionally scaled by `speed`)
//!   over real connections, and the resulting client journal is diffed
//!   against the capture.
//!
//! The live diff is necessarily *multiset* equality over the request
//! bodies `(op, offset, bytes)` of logical submissions: a live server
//! re-times completions and may interleave shards differently, but every
//! captured request must go back on the wire exactly once.

use std::io;

use rif_workloads::Capture;

use crate::client::{run_plans, Journal, LoadConfig, LoadReport, PlannedIo};

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Connections the capture is striped across (round-robin).
    pub connections: usize,
    /// Outstanding-request window per connection.
    pub depth: usize,
    /// Pacing multiplier: `2.0` replays at twice the recorded speed,
    /// `0.5` at half. Must be positive.
    pub speed: f64,
    /// Requests per BATCH frame (`<= 1` = single-request frames).
    pub batch: usize,
    /// The underlying load-client knobs (deadlines, retries, reconnects)
    /// reused verbatim.
    pub base: LoadConfig,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            addr: String::new(),
            connections: 2,
            depth: 16,
            speed: 1.0,
            batch: 1,
            base: LoadConfig::default(),
        }
    }
}

/// The result of diffing a replay journal against its source capture.
#[derive(Debug, Clone, Default)]
pub struct ReplayDiff {
    /// Logical requests the capture holds that the replay never sent.
    pub missing: u64,
    /// Logical requests the replay sent that the capture does not hold.
    pub unexpected: u64,
    /// Logical requests present on both sides.
    pub matched: u64,
}

impl ReplayDiff {
    /// True when the replay put exactly the captured requests on the
    /// wire — nothing missing, nothing invented.
    pub fn pass(&self) -> bool {
        self.missing == 0 && self.unexpected == 0
    }

    /// Canonical JSON rendering.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"matched\":{},\"missing\":{},\"unexpected\":{},\"pass\":{}}}",
            self.matched,
            self.missing,
            self.unexpected,
            self.pass()
        )
    }
}

/// Builds per-connection request plans from a capture: record `i` goes
/// to connection `i % connections`, due at `t_us / speed` wall
/// microseconds after the replay starts. Striping preserves per-
/// connection arrival order, so the pacing gate at each queue head
/// never reorders the capture.
pub fn plans_from_capture(cfg: &ReplayConfig, cap: &Capture) -> Vec<Vec<PlannedIo>> {
    assert!(cfg.speed > 0.0, "replay speed must be positive");
    assert!(cfg.connections > 0, "need at least one connection");
    let mut plans: Vec<Vec<PlannedIo>> = vec![Vec::new(); cfg.connections];
    for (i, r) in cap.records.iter().enumerate() {
        plans[i % cfg.connections].push(PlannedIo {
            op: r.op,
            offset: r.offset,
            bytes: r.bytes,
            tenant: r.tenant,
            due_us: Some((r.t_us as f64 / cfg.speed) as u64),
        });
    }
    plans
}

/// Replays `cap` against the live server in `cfg` and returns the load
/// report plus the journal (diff it with [`diff_against_capture`]).
pub fn run_replay_journaled(
    cfg: &ReplayConfig,
    cap: &Capture,
) -> io::Result<(LoadReport, Journal)> {
    let load = LoadConfig {
        addr: cfg.addr.clone(),
        connections: cfg.connections,
        depth: cfg.depth,
        requests: cap.len(),
        batch: cfg.batch,
        ..cfg.base.clone()
    };
    run_plans(&load, plans_from_capture(cfg, cap))
}

/// Diffs a replay's journal against the capture it was built from:
/// multiset equality over `(op, offset, bytes)` of *logical* requests
/// (journal records with `retry_of == None` — re-issues are the same
/// logical request under a fresh tag).
pub fn diff_against_capture(journal: &Journal, cap: &Capture) -> ReplayDiff {
    use std::collections::HashMap;
    let key = |op: rif_workloads::IoOp, offset: u64, bytes: u32| {
        (op == rif_workloads::IoOp::Read, offset, bytes)
    };
    let mut want: HashMap<(bool, u64, u32), i64> = HashMap::new();
    for r in &cap.records {
        *want.entry(key(r.op, r.offset, r.bytes)).or_insert(0) += 1;
    }
    let mut diff = ReplayDiff::default();
    for rec in journal.records.iter().filter(|r| r.retry_of.is_none()) {
        let k = key(rec.op, rec.offset, rec.bytes);
        match want.get_mut(&k) {
            Some(n) if *n > 0 => {
                *n -= 1;
                diff.matched += 1;
            }
            _ => diff.unexpected += 1,
        }
    }
    diff.missing = want.values().map(|&n| n.max(0) as u64).sum();
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TagRecord;
    use rif_workloads::{CaptureOutcome, CapturedRequest, IoOp};

    fn cap_rec(t_us: u64, op: IoOp, offset: u64, bytes: u32) -> CapturedRequest {
        CapturedRequest {
            t_us,
            op,
            offset,
            bytes,
            tenant: 0,
            shard: 0,
            outcome: CaptureOutcome::Done,
        }
    }

    fn journal_rec(
        tag: u64,
        op: IoOp,
        offset: u64,
        bytes: u32,
        retry_of: Option<u64>,
    ) -> TagRecord {
        TagRecord {
            conn: 0,
            tag,
            op,
            offset,
            bytes,
            retry_of,
            outcome: Some(crate::client::Outcome::Done),
            duplicate_receipts: 0,
            conflicting_receipts: 0,
        }
    }

    #[test]
    fn plans_stripe_and_scale_pacing() {
        let cap = Capture::new(vec![
            cap_rec(0, IoOp::Read, 0, 4096),
            cap_rec(100, IoOp::Write, 4096, 4096),
            cap_rec(200, IoOp::Read, 8192, 4096),
        ]);
        let cfg = ReplayConfig {
            connections: 2,
            speed: 2.0,
            ..ReplayConfig::default()
        };
        let plans = plans_from_capture(&cfg, &cap);
        assert_eq!(plans[0].len(), 2);
        assert_eq!(plans[1].len(), 1);
        assert_eq!(plans[0][1].due_us, Some(100), "200us at 2x speed");
        assert_eq!(plans[1][0].due_us, Some(50));
    }

    #[test]
    fn diff_passes_on_exact_multiset_match() {
        let cap = Capture::new(vec![
            cap_rec(0, IoOp::Read, 0, 4096),
            cap_rec(1, IoOp::Read, 0, 4096), // duplicate body is fine
            cap_rec(2, IoOp::Write, 8192, 4096),
        ]);
        let journal = Journal {
            records: vec![
                journal_rec(1, IoOp::Write, 8192, 4096, None),
                journal_rec(2, IoOp::Read, 0, 4096, None),
                journal_rec(3, IoOp::Read, 0, 4096, None),
                // A retry of tag 3: same logical request, not counted.
                journal_rec(4, IoOp::Read, 0, 4096, Some(3)),
            ],
            ..Journal::default()
        };
        let d = diff_against_capture(&journal, &cap);
        assert!(d.pass(), "{}", d.to_json());
        assert_eq!(d.matched, 3);
    }

    #[test]
    fn diff_flags_missing_and_unexpected() {
        let cap = Capture::new(vec![
            cap_rec(0, IoOp::Read, 0, 4096),
            cap_rec(1, IoOp::Write, 4096, 4096),
        ]);
        let journal = Journal {
            records: vec![
                journal_rec(1, IoOp::Read, 0, 4096, None),
                journal_rec(2, IoOp::Read, 12345, 4096, None),
            ],
            ..Journal::default()
        };
        let d = diff_against_capture(&journal, &cap);
        assert!(!d.pass());
        assert_eq!(d.missing, 1, "the write never replayed");
        assert_eq!(d.unexpected, 1, "offset 12345 was never captured");
        assert!(d.to_json().contains("\"pass\":false"));
    }
}
