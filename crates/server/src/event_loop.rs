//! Readiness-based single-thread server core.
//!
//! One thread owns every connection socket plus the listener: a
//! [`Poller`](crate::poller::Poller) (epoll on Linux, `poll(2)`
//! elsewhere) reports readiness, nonblocking reads land in each
//! connection's [`RecvBuffer`], frames decode in place via
//! [`decode_request_view`] (no per-frame allocation), and responses
//! queue in per-connection [`WriteQueue`]s flushed with vectored
//! writes. Writable interest is registered only while a queue holds
//! unflushed bytes, so an idle server produces near-zero wakeups.
//!
//! Every response — synchronous (HELLO ack, STATS, admission refusals)
//! and asynchronous (shard completions) — travels the same path: a
//! `(key, Response)` completion channel plus a [`Waker`]. The key packs
//! `slot | generation << 32`; a completion that outlives its connection
//! (the slot was closed and recycled) fails the generation check and is
//! dropped instead of landing on a stranger's socket.
//!
//! Backpressure is layered per connection: once the write queue exceeds
//! [`ServerConfig::write_queue_limit`](crate::server::ServerConfig),
//! new IO requests are shed with `BUSY(queue)` instead of admitted, and
//! past twice the limit the loop stops reading from the socket entirely
//! until the peer drains what it already owes.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::poller::{best_poller, Interest, PollEvent, Poller, Waker};
use crate::protocol::{BusyReason, ErrorCode, Response, PROTOCOL_VERSION};
use crate::ring::{decode_request_view, RecvBuffer, RequestView, WriteQueue};
use crate::server::{
    admit_batch, admit_io, at_conn_limit, handle_map_push, handle_migrate_in, handle_migrate_out,
    handle_replicate, refuse_over_limit, reject_unnegotiated_batch, render_stats, RangeStatus,
    Shared,
};
use crate::shard::{ReplyTo, ShardMsg};
use rif_workloads::IoOp;

/// Poller token of the listening socket.
const TOK_LISTENER: usize = 0;
/// Poller token of the waker pipe's read end.
const TOK_WAKER: usize = 1;
/// First token available for connections (`token = slot + TOK_CONN0`).
const TOK_CONN0: usize = 2;

/// How long the drain phase waits for queued responses (the GOODBYE
/// among them) to reach their sockets before tearing down anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(1);
/// Poll granularity while draining (the only time the loop uses a
/// timeout at all — steady state blocks indefinitely).
const DRAIN_TICK: Duration = Duration::from_millis(20);

/// Per-connection state, owned exclusively by the loop thread.
struct Conn {
    stream: TcpStream,
    ring: RecvBuffer,
    wq: WriteQueue,
    /// Protocol version negotiated by HELLO (v1 baseline until then).
    negotiated: u32,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// `wq.len()` as last accounted into the aggregate gauge.
    last_wq: usize,
    /// Close once the write queue drains (EOF seen or GOODBYE queued).
    close_after_flush: bool,
    /// Close in the next sweep regardless of queued bytes.
    close_now: bool,
    /// Already on this iteration's touched list.
    dirty: bool,
}

/// Connection slab: slot indices are stable for a connection's life and
/// become poller tokens; `gens[slot]` bumps on every reuse so stale
/// completion keys can be told apart from the slot's new tenant.
struct Slab {
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Slab {
        Slab {
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.conns[slot] = Some(conn);
                slot
            }
            None => {
                self.conns.push(Some(conn));
                self.gens.push(0);
                self.conns.len() - 1
            }
        }
    }

    fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.conns.get_mut(slot).and_then(Option::as_mut)
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.conns.get_mut(slot)?.take();
        if conn.is_some() {
            // Recycled slots get a new generation so in-flight
            // completions keyed to the old tenant miss.
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.free.push(slot);
        }
        conn
    }

    fn open(&self) -> usize {
        self.conns.len() - self.free.len()
    }
}

/// Packs a completion key for `slot` at generation `generation`.
fn comp_key(slot: usize, generation: u32) -> u64 {
    (slot as u64) | (u64::from(generation) << 32)
}

/// Builds the reply route for `slot`: completions land on the channel
/// and the waker kicks the loop out of its blocking wait.
fn reply_for(comp_tx: &Sender<(u64, Response)>, waker: &Waker, slot: usize, gen: u32) -> ReplyTo {
    ReplyTo::Event {
        tx: comp_tx.clone(),
        key: comp_key(slot, gen),
        waker: waker.clone(),
    }
}

/// Entry point spawned by [`Server::start`](crate::server::Server):
/// runs until shutdown, logging (not panicking) on a fatal loop error
/// so the owning process can still drain shards and exit.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>, waker: Waker, waker_rx: UnixStream) {
    if let Err(e) = run_inner(&listener, &shared, &waker, &waker_rx) {
        eprintln!("rif-server: event loop failed: {e}");
        shared.shutdown.store(true, Ordering::Release);
    }
}

fn run_inner(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    waker: &Waker,
    waker_rx: &UnixStream,
) -> io::Result<()> {
    let mut poller = best_poller()?;
    poller.register(listener.as_raw_fd(), TOK_LISTENER, Interest::READ)?;
    poller.register(waker_rx.as_raw_fd(), TOK_WAKER, Interest::READ)?;
    shared.metrics().set_gauge(
        "server.poller_is_epoll",
        f64::from(u8::from(poller.name() == "epoll")),
    );

    // Every response funnels through here; the waker kicks the loop out
    // of `wait` when a completion arrives from a shard thread.
    let (comp_tx, comp_rx) = mpsc::channel::<(u64, Response)>();

    let mut slab = Slab::new();
    let mut events: Vec<PollEvent> = Vec::new();
    // Slots touched this iteration (new bytes, new responses, state
    // flags) that the sweep phase must flush / re-register / close.
    let mut touched: Vec<usize> = Vec::new();
    let mut draining: Option<Instant> = None;

    loop {
        events.clear();
        let timeout = draining.map(|_| DRAIN_TICK);
        poller.wait(&mut events, timeout)?;
        shared
            .front_door
            .epoll_wakeups
            .fetch_add(1, Ordering::Relaxed);

        for i in 0..events.len() {
            let ev = events[i];
            match ev.token {
                TOK_LISTENER => {
                    if draining.is_none() {
                        accept_ready(
                            listener,
                            shared,
                            poller.as_mut(),
                            &mut slab,
                            &mut touched,
                            &comp_tx,
                            waker,
                        )?;
                    }
                }
                TOK_WAKER => {} // drained below, every iteration
                tok => {
                    let slot = tok - TOK_CONN0;
                    let gen = slab.gens[slot];
                    let Some(conn) = slab.get_mut(slot) else {
                        continue; // closed earlier this iteration
                    };
                    touch(conn, slot, &mut touched);
                    if ev.error {
                        conn.close_now = true;
                        continue;
                    }
                    if ev.readable && !conn.close_now && !conn.close_after_flush {
                        let reply = reply_for(&comp_tx, waker, slot, gen);
                        read_ready(conn, shared, &reply);
                    }
                    // Writability is consumed by the sweep's flush.
                }
            }
        }

        // Drain the waker *before* the completion queue: a completion
        // racing this drain either lands in the queue we are about to
        // empty or re-arms the pipe for the next `wait`.
        waker.drain(waker_rx);
        while let Ok((key, resp)) = comp_rx.try_recv() {
            let slot = (key & u64::from(u32::MAX)) as usize;
            let gen = (key >> 32) as u32;
            if slab.gens.get(slot).copied() != Some(gen) {
                continue; // late completion for a recycled slot: drop
            }
            if let Some(conn) = slab.get_mut(slot) {
                conn.wq.push_response(&resp);
                shared
                    .front_door
                    .write_queue_max_bytes
                    .fetch_max(conn.wq.len(), Ordering::Relaxed);
                touch(conn, slot, &mut touched);
            }
        }

        // A SHUTDOWN frame (or an external `request_shutdown`) starts
        // the drain: stop accepting, flush what every socket is owed,
        // close as queues empty, and give up at the deadline.
        if draining.is_none() && shared.shutdown.load(Ordering::Acquire) {
            draining = Some(Instant::now());
            poller.deregister(listener.as_raw_fd())?;
            for slot in 0..slab.conns.len() {
                if let Some(conn) = slab.conns[slot].as_mut() {
                    conn.close_after_flush = true;
                    touch(conn, slot, &mut touched);
                }
            }
        }

        // Sweep: flush touched queues, close finished connections, and
        // reconcile poller interest with what each connection now needs.
        for slot in touched.drain(..) {
            let Some(conn) = slab.get_mut(slot) else {
                continue;
            };
            conn.dirty = false;
            if !conn.close_now && !conn.wq.is_empty() {
                let mut dst = &conn.stream;
                if conn.wq.flush(&mut dst).is_err() {
                    conn.close_now = true;
                }
            }
            account_wq(shared, conn);
            if conn.close_now || (conn.close_after_flush && conn.wq.is_empty()) {
                let fd = conn.stream.as_raw_fd();
                poller.deregister(fd)?;
                let gone = slab.remove(slot).expect("slot occupied");
                // Gauge bookkeeping before the socket drops.
                shared
                    .front_door
                    .write_queue_bytes
                    .fetch_sub(gone.last_wq, Ordering::AcqRel);
                shared
                    .front_door
                    .connections_open
                    .fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let desired = desired_interest(shared, conn);
            if desired != conn.interest {
                poller.reregister(conn.stream.as_raw_fd(), TOK_CONN0 + slot, desired)?;
                conn.interest = desired;
            }
        }

        if let Some(started) = draining {
            if slab.open() == 0 || started.elapsed() >= DRAIN_DEADLINE {
                return Ok(());
            }
        }
    }
}

/// Marks `conn` for the sweep phase, once per iteration.
fn touch(conn: &mut Conn, slot: usize, touched: &mut Vec<usize>) {
    if !conn.dirty {
        conn.dirty = true;
        touched.push(slot);
    }
}

/// Folds a connection's write-queue delta into the aggregate gauge.
fn account_wq(shared: &Shared, conn: &mut Conn) {
    let now = conn.wq.len();
    if now != conn.last_wq {
        let gauge = &shared.front_door.write_queue_bytes;
        if now > conn.last_wq {
            gauge.fetch_add(now - conn.last_wq, Ordering::AcqRel);
        } else {
            gauge.fetch_sub(conn.last_wq - now, Ordering::AcqRel);
        }
        conn.last_wq = now;
    }
}

/// The interest a connection should be registered with right now:
/// writable only while bytes are queued, readable unless the peer owes
/// us a drain (queue past twice the shed limit) or the connection is on
/// its way out.
fn desired_interest(shared: &Shared, conn: &Conn) -> Interest {
    let limit = shared.cfg.write_queue_limit;
    let read_paused = limit > 0 && conn.wq.len() >= limit.saturating_mul(2);
    Interest {
        readable: !conn.close_after_flush && !read_paused,
        writable: !conn.wq.is_empty(),
    }
}

/// Accepts until the listener would block, enforcing the connection
/// limit and registering each new socket read-only. Bytes that arrived
/// with the connection are served immediately instead of waiting for
/// the next readiness round.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    poller: &mut dyn Poller,
    slab: &mut Slab,
    touched: &mut Vec<usize>,
    comp_tx: &Sender<(u64, Response)>,
    waker: &Waker,
) -> io::Result<()> {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection failures (ConnectionAborted, fd
            // exhaustion, ...) must not kill the loop.
            Err(_) => return Ok(()),
        };
        if at_conn_limit(shared) {
            refuse_over_limit(stream, shared);
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        stream.set_nodelay(true).ok();
        shared
            .front_door
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .front_door
            .connections_open
            .fetch_add(1, Ordering::AcqRel);
        let slot = slab.insert(Conn {
            stream,
            ring: RecvBuffer::new(),
            wq: WriteQueue::new(),
            negotiated: 1,
            interest: Interest::READ,
            last_wq: 0,
            close_after_flush: false,
            close_now: false,
            dirty: false,
        });
        let gen = slab.gens[slot];
        let conn = slab.get_mut(slot).expect("just inserted");
        if let Err(e) = poller.register(conn.stream.as_raw_fd(), TOK_CONN0 + slot, Interest::READ) {
            slab.remove(slot);
            shared
                .front_door
                .connections_open
                .fetch_sub(1, Ordering::AcqRel);
            return Err(e);
        }
        touch(conn, slot, touched);
        let reply = reply_for(comp_tx, waker, slot, gen);
        read_ready(conn, shared, &reply);
    }
}

/// Reads until the socket would block (or EOF), decoding and
/// dispatching every complete frame in the ring.
fn read_ready(conn: &mut Conn, shared: &Arc<Shared>, reply: &ReplyTo) {
    loop {
        let mut src = &conn.stream;
        match conn.ring.read_from(&mut src) {
            Ok(0) => {
                // EOF: serve what is buffered, flush what is owed, then
                // close. No more bytes will ever arrive.
                drain_frames(conn, shared, reply);
                conn.close_after_flush = true;
                return;
            }
            Ok(_) => {
                if !drain_frames(conn, shared, reply) {
                    return; // poisoned or closing: stop reading
                }
                // Stop pulling once the peer has pushed us past the
                // hard backpressure line; readable interest drops in
                // the sweep and resumes after the queue drains.
                let limit = shared.cfg.write_queue_limit;
                if limit > 0 && conn.wq.len() >= limit.saturating_mul(2) {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.close_now = true;
                return;
            }
        }
    }
}

/// Decodes and dispatches every complete frame currently buffered.
/// Returns false when the connection should not be read further (the
/// ring is poisoned, or SHUTDOWN started the goodbye handshake).
fn drain_frames(conn: &mut Conn, shared: &Arc<Shared>, reply: &ReplyTo) -> bool {
    loop {
        let payload = match conn.ring.next_frame() {
            Ok(Some(p)) => p,
            Ok(None) => return true,
            Err(_) => {
                // The length prefix lied: frame sync is gone for good.
                shared.metrics().inc("server.protocol_errors", 1);
                conn.close_now = true;
                return false;
            }
        };
        let view = match decode_request_view(payload) {
            Ok(view) => view,
            Err(_) => {
                shared.metrics().inc("server.protocol_errors", 1);
                // Frame boundaries survived; the stream stays usable.
                reply.send(Response::Error {
                    tag: 0,
                    code: ErrorCode::BadRequest,
                });
                continue;
            }
        };

        // Shed IO once the peer's write queue is past the limit: a
        // small BUSY beats queueing an admission it will not drain.
        let limit = shared.cfg.write_queue_limit;
        let overloaded = limit > 0 && conn.wq.len() >= limit;
        match view {
            RequestView::Read {
                tenant,
                tag,
                offset,
                bytes,
            } => {
                if overloaded {
                    shed(shared, reply, tag, 1);
                } else {
                    admit_io(
                        shared,
                        reply,
                        tenant,
                        tag,
                        offset,
                        bytes,
                        IoOp::Read,
                        0,
                        conn.negotiated,
                    );
                }
            }
            RequestView::Write {
                tenant,
                tag,
                offset,
                bytes,
            } => {
                if overloaded {
                    shed(shared, reply, tag, 1);
                } else {
                    admit_io(
                        shared,
                        reply,
                        tenant,
                        tag,
                        offset,
                        bytes,
                        IoOp::Write,
                        0,
                        conn.negotiated,
                    );
                }
            }
            RequestView::Batch(batch) => {
                if conn.negotiated < 2 {
                    let tag = if batch.count() == 0 {
                        0
                    } else {
                        batch.entry(0).tag
                    };
                    reject_unnegotiated_batch(shared, reply, tag);
                } else if overloaded {
                    shared.metrics().inc("server.batches", 1);
                    for e in batch.iter() {
                        shed(shared, reply, e.tag, 0);
                    }
                    shared
                        .metrics()
                        .inc("server.busy.writeq", batch.count() as u64);
                } else {
                    admit_batch(shared, reply, batch.iter(), conn.negotiated);
                }
            }
            RequestView::MapGet { tag } => {
                let (epoch, text) = match &shared.cluster {
                    Some(_) => {
                        let cl = shared.cluster_state();
                        (cl.epoch, cl.map_text.clone())
                    }
                    None => (0, String::new()),
                };
                reply.send(Response::MapResp { tag, epoch, text });
            }
            RequestView::MapPush {
                tag,
                epoch,
                capacity_bytes,
                ranges,
                owned,
                followed,
                replicas,
                map_text,
            } => {
                let owned: Vec<u32> = owned.iter().collect();
                let followed: Vec<u32> = followed.iter().collect();
                let replicas: Vec<(u32, String)> =
                    replicas.iter().map(|(r, a)| (r, a.to_string())).collect();
                handle_map_push(
                    shared,
                    reply,
                    tag,
                    epoch,
                    capacity_bytes,
                    ranges,
                    &owned,
                    &followed,
                    &replicas,
                    map_text.to_string(),
                );
            }
            RequestView::MigrateOut { tag, range } => {
                migrate_out_async(shared, reply, tag, range);
            }
            RequestView::MigrateIn { tag, range, state } => {
                handle_migrate_in(shared, reply, tag, range, state.to_string());
            }
            RequestView::Migrate { tag, .. } => {
                // Directory-only operation; a node refuses it.
                shared.metrics().inc("server.protocol_errors", 1);
                reply.send(Response::Error {
                    tag,
                    code: ErrorCode::BadRequest,
                });
            }
            RequestView::Replicate {
                tag,
                range,
                epoch,
                seq,
                tenant,
                offset,
                bytes,
            } => {
                // Internal primary→follower traffic: never shed (the
                // primary's watermark would stall on a transient queue),
                // admitted through its own slot-reserving gate.
                handle_replicate(shared, reply, tag, range, epoch, seq, tenant, offset, bytes);
            }
            RequestView::Hello { tag, version } => {
                conn.negotiated = version.min(PROTOCOL_VERSION).max(1);
                reply.send(Response::HelloAck {
                    tag,
                    version: conn.negotiated,
                });
            }
            RequestView::Stats { tag } => {
                let text = render_stats(shared);
                reply.send(Response::Stats { tag, text });
            }
            RequestView::Flush { tag } => {
                flush_async(shared, reply, tag);
            }
            RequestView::Shutdown { tag } => {
                reply.send(Response::Goodbye { tag });
                conn.close_after_flush = true;
                shared.shutdown.store(true, Ordering::Release);
                // Anything pipelined behind SHUTDOWN is intentionally
                // not served, matching the threaded core.
                return false;
            }
        }
    }
}

/// Answers one shed request with `BUSY(queue)`; `count_metric` requests
/// are charged to the shed counter (0 lets batch paths bulk-charge).
fn shed(shared: &Shared, reply: &ReplyTo, tag: u64, count_metric: u64) {
    if count_metric > 0 {
        shared.metrics().inc("server.busy.writeq", count_metric);
    }
    reply.send(Response::Busy {
        tag,
        reason: BusyReason::Queue,
    });
}

/// FLUSH without stalling the loop: an ephemeral thread waits for every
/// shard's drain ack, then routes `Flushed` back through the completion
/// channel like any other response.
fn flush_async(shared: &Arc<Shared>, reply: &ReplyTo, tag: u64) {
    let sh = Arc::clone(shared);
    let thread_reply = reply.clone();
    let spawned = std::thread::Builder::new()
        .name("rif-flush".into())
        .spawn(move || {
            wait_shards_flushed(&sh);
            thread_reply.send(Response::Flushed { tag });
        });
    if let Err(e) = spawned {
        // Thread exhaustion: fall back to flushing inline. Slow, but
        // the barrier semantics hold.
        eprintln!("rif-server: flush thread spawn failed ({e}); flushing inline");
        wait_shards_flushed(shared);
        reply.send(Response::Flushed { tag });
    }
}

/// MIGRATE_OUT without stalling the loop: the range is sealed inline
/// (so the bounce takes effect before the next frame is read), then an
/// ephemeral thread waits out the shard drain and sends the `Migrated`
/// reply through the completion channel.
fn migrate_out_async(shared: &Arc<Shared>, reply: &ReplyTo, tag: u64, range: u32) {
    if shared.cluster.is_none() || range as usize >= shared.cfg.shards {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadRequest,
        });
        return;
    }
    // Seal before the loop reads the next frame, so no request pipelined
    // behind the MIGRATE_OUT can slip into the shard after the drain
    // starts (the handler's own seal is then a harmless re-set).
    shared.cluster_state().status[range as usize] = RangeStatus::Moving;
    let sh = Arc::clone(shared);
    let thread_reply = reply.clone();
    let spawned = std::thread::Builder::new()
        .name("rif-migrate".into())
        .spawn(move || {
            handle_migrate_out(&sh, &thread_reply, tag, range);
        });
    if let Err(e) = spawned {
        eprintln!("rif-server: migrate thread spawn failed ({e}); draining inline");
        handle_migrate_out(shared, reply, tag, range);
    }
}

fn wait_shards_flushed(shared: &Shared) {
    let (done_tx, done_rx) = mpsc::channel();
    for s in &shared.shards {
        let _ = s.tx.send(ShardMsg::Flush(done_tx.clone()));
    }
    drop(done_tx);
    // Workers ack after force-draining; a crashed worker shows up as a
    // disconnect, which also ends the wait.
    while done_rx.recv().is_ok() {}
}
