//! The storage-service daemon: serves the simulated SSD over loopback TCP.
//!
//! Usage:
//!
//! ```text
//! rif-server [--port N] [--shards N] [--scheme LABEL] [--pe-cycles N]
//!            [--inflight-limit N] [--rate N] [--burst N]
//!            [--time-scale X] [--capacity-gib N] [--queue-depth N]
//!            [--seed N] [--capture FILE] [--core epoll|legacy]
//!            [--max-connections N] [--write-queue-kib N]
//!            [--learn] [--drift-days-per-sec X] [--hybrid] [--cluster]
//! ```
//!
//! `--core epoll` (default) serves every connection from one
//! readiness-driven event-loop thread; `--core legacy` restores the
//! thread-per-connection core. `--max-connections 0` lifts the accept
//! limit; over-limit connects get one `ERROR(conn_limit)` frame and a
//! close. `--write-queue-kib` bounds each connection's response queue
//! (shed `BUSY` past the limit, stop reading past twice it; 0 =
//! unbounded).
//!
//! Prints `rif-server listening on ADDR` once ready, then runs until a
//! SHUTDOWN frame arrives. `--rate 0` (default) disables rate limiting;
//! `--time-scale 20` (default) plays simulated time 20× faster than wall
//! time. With `--capture FILE` every admitted request is journaled and
//! written as a captured-trace CSV on shutdown, replayable offline
//! (`rif-client --replay-offline FILE`) or live (`--replay FILE`).
//! `--learn` switches the shard simulators from the oracle threshold
//! tables to online per-block threshold learning (progress appears under
//! `server.learner.*` in STATS); `--drift-days-per-sec` ages the flash
//! while serving. `--hybrid` runs each shard as a hybrid SLC/QLC device:
//! writes land in the SLC cache and destage to QLC capacity through the
//! background scheduler, whose live counters appear under `server.bg.*`
//! in STATS. `--cluster` runs the server as one node of a
//! multi-node cluster: it starts owning no LBA ranges (everything
//! bounces with `WRONG_SHARD` until the `rif-cluster` directory's first
//! MAP_PUSH) and `--shards` becomes the cluster's total range count.

use rif_server::server::{CoreKind, Server, ServerConfig};
use rif_ssd::RetryKind;

fn usage() -> ! {
    eprintln!(
        "usage: rif-server [--port N] [--shards N] [--scheme LABEL] [--pe-cycles N]\n\
         \x20                 [--inflight-limit N] [--rate N] [--burst N] [--time-scale X]\n\
         \x20                 [--capacity-gib N] [--queue-depth N] [--seed N] [--capture FILE]\n\
         \x20                 [--core epoll|legacy] [--max-connections N] [--write-queue-kib N]\n\
         \x20                 [--learn] [--drift-days-per-sec X] [--hybrid] [--cluster]\n\
         schemes: SENC SWR SWR+ RPSSD RiFSSD SSDone SSDzero"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut port = 0u16;
    let mut capture_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--port" => port = val("--port").parse().unwrap_or_else(|_| usage()),
            "--shards" => cfg.shards = val("--shards").parse().unwrap_or_else(|_| usage()),
            "--scheme" => {
                cfg.retry = RetryKind::by_label(&val("--scheme")).unwrap_or_else(|| usage())
            }
            "--pe-cycles" => cfg.pe_cycles = val("--pe-cycles").parse().unwrap_or_else(|_| usage()),
            "--inflight-limit" => {
                cfg.inflight_limit = val("--inflight-limit").parse().unwrap_or_else(|_| usage())
            }
            "--rate" => cfg.rate_per_sec = val("--rate").parse().unwrap_or_else(|_| usage()),
            "--burst" => cfg.burst = val("--burst").parse().unwrap_or_else(|_| usage()),
            "--time-scale" => {
                cfg.time_scale = val("--time-scale").parse().unwrap_or_else(|_| usage())
            }
            "--capacity-gib" => {
                let gib: u64 = val("--capacity-gib").parse().unwrap_or_else(|_| usage());
                cfg.capacity_bytes = gib << 30;
            }
            "--queue-depth" => {
                cfg.queue_depth = val("--queue-depth").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--capture" => {
                capture_path = Some(val("--capture"));
                cfg.capture = true;
            }
            "--core" => {
                cfg.core = val("--core")
                    .parse::<CoreKind>()
                    .unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                cfg.max_connections = val("--max-connections").parse().unwrap_or_else(|_| usage())
            }
            "--write-queue-kib" => {
                let kib: usize = val("--write-queue-kib").parse().unwrap_or_else(|_| usage());
                cfg.write_queue_limit = kib * 1024;
            }
            "--learn" => cfg.learn = true,
            "--hybrid" => cfg.hybrid = true,
            "--cluster" => cfg.cluster = true,
            "--drift-days-per-sec" => {
                cfg.drift_days_per_sec = val("--drift-days-per-sec")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }

    let server = match Server::start(cfg, port) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rif-server: cannot start: {e}");
            std::process::exit(1);
        }
    };
    // The sentinel line CI and scripts wait for; flushed immediately.
    println!("rif-server listening on {}", server.local_addr());
    server.wait_for_shutdown();
    let recorder = server.recorder();
    server.stop();
    if let Some(path) = capture_path {
        // Snapshot after stop(): every shard has drained, so outcomes
        // are final.
        let cap = recorder.capture();
        match std::fs::write(&path, cap.to_csv()) {
            Ok(()) => println!("rif-server: captured {} requests to {path}", cap.len()),
            Err(e) => {
                eprintln!("rif-server: cannot write capture {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("rif-server: shut down cleanly");
}
