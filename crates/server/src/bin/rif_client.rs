//! The closed-loop load generator / control client for `rif-server`.
//!
//! Load mode (default) prints one JSON report to stdout:
//!
//! ```text
//! rif-client --addr 127.0.0.1:PORT [--requests N] [--connections N]
//!            [--depth N] [--read-ratio X] [--zipf X] [--request-kib N]
//!            [--tenant N] [--seed N] [--max-busy-retries N]
//! ```
//!
//! Control modes:
//!
//! ```text
//! rif-client --addr ADDR --stats      # print the server's metrics lines
//! rif-client --addr ADDR --flush     # drain all shards, then return
//! rif-client --addr ADDR --shutdown  # stop the server
//! ```

use rif_server::client::{fetch_stats, flush, run_load, send_shutdown, LoadConfig};

fn usage() -> ! {
    eprintln!(
        "usage: rif-client --addr HOST:PORT [--stats|--flush|--shutdown]\n\
         \x20                 [--requests N] [--connections N] [--depth N]\n\
         \x20                 [--read-ratio X] [--zipf X] [--request-kib N]\n\
         \x20                 [--tenant N] [--seed N] [--max-busy-retries N]"
    );
    std::process::exit(2);
}

enum Mode {
    Load,
    Stats,
    Flush,
    Shutdown,
}

fn main() {
    let mut cfg = LoadConfig::default();
    let mut mode = Mode::Load;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--stats" => mode = Mode::Stats,
            "--flush" => mode = Mode::Flush,
            "--shutdown" => mode = Mode::Shutdown,
            "--requests" => cfg.requests = val("--requests").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                cfg.connections = val("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--depth" => cfg.depth = val("--depth").parse().unwrap_or_else(|_| usage()),
            "--read-ratio" => {
                cfg.read_ratio = val("--read-ratio").parse().unwrap_or_else(|_| usage())
            }
            "--zipf" => cfg.zipf_s = val("--zipf").parse().unwrap_or_else(|_| usage()),
            "--request-kib" => {
                let kib: u32 = val("--request-kib").parse().unwrap_or_else(|_| usage());
                cfg.request_bytes = kib * 1024;
            }
            "--tenant" => cfg.tenant = val("--tenant").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-busy-retries" => {
                cfg.max_busy_retries = val("--max-busy-retries")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            _ => usage(),
        }
    }
    if cfg.addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }

    let result = match mode {
        Mode::Stats => fetch_stats(&cfg.addr).map(|text| println!("{text}")),
        Mode::Flush => flush(&cfg.addr).map(|()| println!("flushed")),
        Mode::Shutdown => send_shutdown(&cfg.addr).map(|()| println!("shutdown acknowledged")),
        Mode::Load => run_load(&cfg).map(|report| println!("{}", report.to_json())),
    };
    if let Err(e) = result {
        eprintln!("rif-client: {e}");
        std::process::exit(1);
    }
}
