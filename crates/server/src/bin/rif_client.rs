//! The closed-loop load generator / control client for `rif-server`.
//!
//! Load mode (default) prints one JSON report to stdout:
//!
//! ```text
//! rif-client --addr 127.0.0.1:PORT [--requests N] [--connections N]
//!            [--depth N] [--read-ratio X] [--zipf X] [--request-kib N]
//!            [--tenant N] [--seed N] [--max-busy-retries N] [--batch N]
//!            [--deadline-ms N]
//! ```
//!
//! `--batch N` packs up to N requests per BATCH frame (protocol v2,
//! negotiated by HELLO; falls back to single frames on a v1 server).
//!
//! High-concurrency mode:
//!
//! ```text
//! rif-client --addr ADDR --mux [--connections N] [--threads N] ...
//! ```
//!
//! `--mux` multiplexes all connections over a few poller-driven worker
//! threads instead of one thread per connection, making ≥10k concurrent
//! connections practical (v1 single frames only — no batching).
//!
//! Replay modes:
//!
//! ```text
//! rif-client --addr ADDR --replay FILE [--speed X] [--batch N]
//!     # drive a captured trace back through the live server at recorded
//!     # (or X-scaled) pacing; prints the load report and the
//!     # capture-vs-journal diff, exits 1 unless the diff passes
//! rif-client --replay-offline FILE [--scheme LABEL] [--pe-cycles N]
//!     # replay a capture through the offline simulator (no server);
//!     # prints the deterministic SimReport JSON
//! ```
//!
//! Control modes:
//!
//! ```text
//! rif-client --addr ADDR --stats      # print the server's metrics lines
//! rif-client --addr ADDR --flush     # drain all shards, then return
//! rif-client --addr ADDR --shutdown  # stop the server
//! ```

use rif_server::client::{fetch_stats, flush, run_load, send_shutdown, LoadConfig};
use rif_server::mux::run_mux_load;
use rif_server::replay::{diff_against_capture, run_replay_journaled, ReplayConfig};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::Capture;

fn usage() -> ! {
    eprintln!(
        "usage: rif-client --addr HOST:PORT [--stats|--flush|--shutdown]\n\
         \x20                 [--requests N] [--connections N] [--depth N]\n\
         \x20                 [--read-ratio X] [--zipf X] [--request-kib N]\n\
         \x20                 [--tenant N] [--seed N] [--max-busy-retries N]\n\
         \x20                 [--batch N] [--deadline-ms N] [--replay FILE] [--speed X]\n\
         \x20                 [--mux] [--threads N]\n\
         \x20      rif-client --replay-offline FILE [--scheme LABEL] [--pe-cycles N]"
    );
    std::process::exit(2);
}

enum Mode {
    Load,
    Mux,
    Stats,
    Flush,
    Shutdown,
    Replay(String),
    ReplayOffline(String),
}

fn load_capture(path: &str) -> Capture {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("rif-client: cannot read capture {path}: {e}");
        std::process::exit(1);
    });
    Capture::parse_csv(&text).unwrap_or_else(|e| {
        eprintln!("rif-client: malformed capture {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mut cfg = LoadConfig::default();
    let mut mode = Mode::Load;
    let mut threads = 4usize;
    let mut speed = 1.0f64;
    let mut scheme = RetryKind::Rif;
    let mut pe_cycles = 3000u32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--mux" => mode = Mode::Mux,
            "--threads" => threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--stats" => mode = Mode::Stats,
            "--flush" => mode = Mode::Flush,
            "--shutdown" => mode = Mode::Shutdown,
            "--requests" => cfg.requests = val("--requests").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                cfg.connections = val("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--depth" => cfg.depth = val("--depth").parse().unwrap_or_else(|_| usage()),
            "--read-ratio" => {
                cfg.read_ratio = val("--read-ratio").parse().unwrap_or_else(|_| usage())
            }
            "--zipf" => cfg.zipf_s = val("--zipf").parse().unwrap_or_else(|_| usage()),
            "--request-kib" => {
                let kib: u32 = val("--request-kib").parse().unwrap_or_else(|_| usage());
                cfg.request_bytes = kib * 1024;
            }
            "--tenant" => cfg.tenant = val("--tenant").parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--max-busy-retries" => {
                cfg.max_busy_retries = val("--max-busy-retries")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                let ms: u64 = val("--deadline-ms").parse().unwrap_or_else(|_| usage());
                cfg.request_deadline = std::time::Duration::from_millis(ms);
            }
            "--batch" => cfg.batch = val("--batch").parse().unwrap_or_else(|_| usage()),
            "--speed" => speed = val("--speed").parse().unwrap_or_else(|_| usage()),
            "--replay" => mode = Mode::Replay(val("--replay")),
            "--replay-offline" => mode = Mode::ReplayOffline(val("--replay-offline")),
            "--scheme" => scheme = RetryKind::by_label(&val("--scheme")).unwrap_or_else(|| usage()),
            "--pe-cycles" => pe_cycles = val("--pe-cycles").parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if speed <= 0.0 {
        eprintln!("--speed must be positive");
        usage();
    }
    if cfg.addr.is_empty() && !matches!(mode, Mode::ReplayOffline(_)) {
        eprintln!("--addr is required");
        usage();
    }

    let result = match mode {
        Mode::Stats => fetch_stats(&cfg.addr).map(|text| println!("{text}")),
        Mode::Flush => flush(&cfg.addr).map(|()| println!("flushed")),
        Mode::Shutdown => send_shutdown(&cfg.addr).map(|()| println!("shutdown acknowledged")),
        Mode::Load => run_load(&cfg).map(|report| println!("{}", report.to_json())),
        Mode::Mux => run_mux_load(&cfg, threads).map(|report| println!("{}", report.to_json())),
        Mode::Replay(path) => {
            let cap = load_capture(&path);
            let rcfg = ReplayConfig {
                addr: cfg.addr.clone(),
                connections: cfg.connections,
                depth: cfg.depth,
                speed,
                batch: cfg.batch,
                base: cfg.clone(),
            };
            run_replay_journaled(&rcfg, &cap).map(|(report, journal)| {
                println!("{}", report.to_json());
                let diff = diff_against_capture(&journal, &cap);
                println!("{}", diff.to_json());
                if !diff.pass() {
                    std::process::exit(1);
                }
            })
        }
        Mode::ReplayOffline(path) => {
            let cap = load_capture(&path);
            let report = Simulator::new(SsdConfig::small(scheme, pe_cycles)).run(&cap.to_trace());
            println!("{}", report.to_json());
            Ok(())
        }
    };
    if let Err(e) = result {
        eprintln!("rif-client: {e}");
        std::process::exit(1);
    }
}
