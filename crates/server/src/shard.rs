//! Shard workers: one simulator per LBA range, each on its own thread.
//!
//! The server partitions the logical address space into `n` equal spans;
//! shard `i` owns `[i * span, (i + 1) * span)` and runs a private
//! [`Simulator`] for it. Requests arrive over an mpsc channel, are
//! submitted at the current virtual time, and the worker repeatedly
//! advances its simulator up to the [`VirtualClock`]'s *now* — which is
//! what turns the discrete-event core into a live, wall-clock-paced
//! service. Completions are answered directly to each request's
//! originating connection through the reply sender carried in the
//! [`Submission`].
//!
//! # Crash injection
//!
//! A worker can be *killed* mid-load through [`ShardMsg::Crash`] (the
//! hook the `rif-chaos` fault-injection harness drives). A crash models
//! the abrupt death of the worker's simulator state:
//!
//! - every in-flight request is answered `ERROR(Internal)` — the I/O may
//!   or may not have executed, so the client must decide whether a retry
//!   is safe (reads: yes, writes: no);
//! - for the configured restart window the shard is *dead*: submissions
//!   are bounced immediately with `BUSY(Unavailable)` (never admitted,
//!   always safe to retry) instead of hanging;
//! - after the window the worker builds a fresh simulator (seed salted
//!   by the crash generation so replays stay deterministic) and resumes.
//!
//! The worker thread itself never exits on a crash — that keeps the mpsc
//! channel alive, so the server's routing table needs no swap and no
//! request can race into a closed channel during the restart.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rif_events::trace::MetricsRegistry;
use rif_events::SimTime;
use rif_ssd::{Simulator, SsdConfig};
use rif_workloads::{IoOp, IoRequest};

use crate::pacing::VirtualClock;
use crate::poller::Waker;
use crate::protocol::{BusyReason, ErrorCode, Response};
use crate::recorder::TraceRecorder;

/// Where a completion goes. The threaded core hands each connection's
/// writer channel to the shard; the event-loop core funnels every
/// completion through one queue and pulls the loop out of its poll wait.
#[derive(Clone)]
pub enum ReplyTo {
    /// A connection writer thread's private channel (threaded core).
    Channel(Sender<Response>),
    /// The event loop's shared completion queue (event-loop core).
    Event {
        /// The loop's single completion queue.
        tx: Sender<(u64, Response)>,
        /// Generation-tagged connection key the loop routes by; a late
        /// completion for a recycled slot is dropped by the generation
        /// check, exactly like a send to a dead connection's channel.
        key: u64,
        /// Wakes the loop out of a blocking poll wait.
        waker: Waker,
    },
    /// A follower applying a REPLICATE shipment: the shard's `Done`
    /// becomes the `REPL_ACK` the primary's watermark waits on, while
    /// refusals (`Busy`, `Error`) pass through unchanged so the primary
    /// sees the shipment did not land.
    Replication {
        /// The underlying destination (connection channel or loop queue).
        inner: Box<ReplyTo>,
        /// The range the shipment belongs to, echoed in the ack.
        range: u32,
        /// The primary's per-range sequence number, echoed in the ack.
        seq: u64,
    },
}

impl ReplyTo {
    /// Delivers `resp`. A closed receiver means the connection (or the
    /// whole loop) is gone; the response is dropped, as with a dead
    /// connection's channel in the threaded core.
    pub fn send(&self, resp: Response) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(resp);
            }
            ReplyTo::Event { tx, key, waker } => {
                if tx.send((*key, resp)).is_ok() {
                    waker.wake();
                }
            }
            ReplyTo::Replication { inner, range, seq } => {
                let resp = match resp {
                    Response::Done { tag, .. } => Response::ReplAck {
                        tag,
                        range: *range,
                        seq: *seq,
                    },
                    other => other,
                };
                inner.send(resp);
            }
        }
    }
}

/// The LBA range a shard owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `[0, n)`.
    pub index: usize,
    /// First logical byte owned by this shard.
    pub base_offset: u64,
    /// Bytes in the shard's span.
    pub span_bytes: u64,
}

impl ShardSpec {
    /// Splits `capacity_bytes` into `n` equal spans (the last shard
    /// absorbs the remainder).
    pub fn partition(capacity_bytes: u64, n: usize) -> Vec<ShardSpec> {
        assert!(n > 0, "at least one shard");
        assert!(capacity_bytes >= n as u64, "capacity too small to shard");
        let span = capacity_bytes / n as u64;
        (0..n)
            .map(|i| ShardSpec {
                index: i,
                base_offset: i as u64 * span,
                span_bytes: if i == n - 1 {
                    capacity_bytes - i as u64 * span
                } else {
                    span
                },
            })
            .collect()
    }

    /// The shard index owning `offset` (already wrapped into capacity).
    pub fn route(capacity_bytes: u64, n: usize, offset: u64) -> usize {
        let span = capacity_bytes / n as u64;
        ((offset / span) as usize).min(n - 1)
    }
}

/// One admitted I/O on its way to a shard.
pub struct Submission {
    /// Client correlation tag, echoed in the response.
    pub tag: u64,
    /// Read or write.
    pub op: IoOp,
    /// Offset *rebased* into the shard's local dense LBA space.
    pub offset: u64,
    /// Transfer size.
    pub bytes: u32,
    /// Where the completion goes (the originating connection's writer).
    pub reply: ReplyTo,
}

/// Messages a shard worker consumes.
pub enum ShardMsg {
    /// Simulate one I/O.
    Submit(Submission),
    /// Simulate a group of I/Os admitted as one unit (one BATCH × this
    /// shard): all entries enter the simulator at the same virtual time,
    /// one channel send instead of one per entry.
    SubmitMany(Vec<Submission>),
    /// Fast-forward the simulator until nothing is in flight, then ack.
    Flush(Sender<()>),
    /// Kill the worker's simulator state: fail everything in flight with
    /// `ERROR(Internal)`, bounce submissions with `BUSY(Unavailable)` for
    /// the given window, then restart with a fresh simulator.
    Crash {
        /// How long the shard stays dead before restarting.
        restart_after: Duration,
    },
    /// Drain everything in flight, then reply with the shard's
    /// serialized [`rif_ssd::LearnerState`] text (empty in oracle mode).
    /// The worker stays alive and keeps serving afterwards — the cluster
    /// layer uses this to snapshot a migrating shard without killing it.
    Yield(Sender<String>),
    /// Preseed the shard's threshold learner from serialized state
    /// received during a migration, then ack. Malformed or empty state
    /// is ignored (the learner is a performance hint, not correctness).
    Adopt {
        /// Serialized learner state, as produced by [`ShardMsg::Yield`].
        state: String,
        /// Acked once the state is installed.
        ack: Sender<()>,
    },
    /// Drain and exit.
    Stop,
}

/// Handle to a running shard worker.
pub struct ShardHandle {
    /// The worker's inbox.
    pub tx: Sender<ShardMsg>,
    /// In-flight count, shared with the admission check in the server.
    pub inflight: Arc<AtomicUsize>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// Asks the worker to drain and exit, then joins it.
    pub fn stop(self) {
        let _ = self.tx.send(ShardMsg::Stop);
        let _ = self.join.join();
    }
}

/// Longest the worker sleeps between polls even with nothing scheduled,
/// so Stop/Flush messages are always picked up promptly.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// Salt mixed into the simulator seed on each crash generation, so a
/// restarted shard gets a fresh but still seed-deterministic stream.
const GENERATION_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Spawns the worker thread for one shard. Fails if the OS refuses the
/// thread — the caller propagates the error instead of panicking.
pub fn spawn_shard(
    spec: ShardSpec,
    cfg: SsdConfig,
    clock: VirtualClock,
    metrics: Arc<Mutex<MetricsRegistry>>,
    recorder: Arc<TraceRecorder>,
    rx: Receiver<ShardMsg>,
    tx: Sender<ShardMsg>,
) -> io::Result<ShardHandle> {
    let inflight = Arc::new(AtomicUsize::new(0));
    let inflight_worker = Arc::clone(&inflight);
    let join = std::thread::Builder::new()
        .name(format!("rif-shard-{}", spec.index))
        .spawn(move || run_worker(spec, cfg, clock, inflight_worker, metrics, recorder, rx))?;
    Ok(ShardHandle { tx, inflight, join })
}

/// The worker's mutable state, factored out so message handling and the
/// main loop can share it without borrow gymnastics.
struct Worker {
    cfg: SsdConfig,
    clock: VirtualClock,
    inflight: Arc<AtomicUsize>,
    metrics: Arc<Mutex<MetricsRegistry>>,
    recorder: Arc<TraceRecorder>,
    sim: Simulator,
    /// sim request id -> (client tag, reply destination)
    pending: HashMap<u64, (u64, ReplyTo)>,
    flush_waiters: Vec<Sender<()>>,
    /// Migration snapshots waiting for the in-flight set to drain.
    yield_waiters: Vec<Sender<String>>,
    stopping: bool,
    /// `Some(t)` while the shard is dead; it restarts once `Instant::now() >= t`.
    dead_until: Option<Instant>,
    /// Crash count; salts the restarted simulator's seed.
    generation: u64,
    shard_label: String,
}

impl Worker {
    fn sim_for_generation(cfg: &SsdConfig, generation: u64) -> Simulator {
        let mut c = cfg.clone();
        c.seed = c
            .seed
            .wrapping_add(generation.wrapping_mul(GENERATION_SALT));
        Simulator::new(c)
    }

    fn metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        // A panicking holder must not wedge the worker: recover the data.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn submit_one(&mut self, s: Submission) {
        if self.dead_until.is_some() {
            // Dead shard: never admit, never hang. The slot the
            // server reserved is released here, and the recorder
            // retracts the admission — this I/O never ran.
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.recorder.reject(s.tag);
            self.metrics().inc("server.busy.unavailable", 1);
            s.reply.send(Response::Busy {
                tag: s.tag,
                reason: BusyReason::Unavailable,
            });
            return;
        }
        let id = self.sim.submit(IoRequest {
            arrival: self.clock.now(),
            op: s.op,
            offset: s.offset,
            bytes: s.bytes,
        });
        self.pending.insert(id, (s.tag, s.reply));
    }

    fn handle(&mut self, msg: ShardMsg) {
        match msg {
            ShardMsg::Submit(s) => self.submit_one(s),
            ShardMsg::SubmitMany(batch) => {
                for s in batch {
                    self.submit_one(s);
                }
            }
            ShardMsg::Flush(done) => self.flush_waiters.push(done),
            ShardMsg::Yield(out) => self.yield_waiters.push(out),
            ShardMsg::Adopt { state, ack } => {
                if let Ok(s) = rif_ssd::LearnerState::parse_text(&state) {
                    self.sim.preseed_learner(&s);
                }
                let _ = ack.send(());
            }
            ShardMsg::Crash { restart_after } => self.crash(restart_after),
            ShardMsg::Stop => self.stopping = true,
        }
    }

    /// The learner snapshot handed over during a migration, bounded so
    /// it always fits in one wire frame (lowest-numbered blocks win).
    fn learner_snapshot_text(&self) -> String {
        let cap = crate::protocol::MAX_FRAME_BYTES as usize - 64;
        self.sim
            .learner_state()
            .map(|s| s.to_text_capped(cap))
            .unwrap_or_default()
    }

    /// Kills the simulator state: fails every pending request and enters
    /// the dead window.
    fn crash(&mut self, restart_after: Duration) {
        {
            let mut m = self.metrics();
            m.inc("server.shard_crashes", 1);
            m.inc(&format!("server.shard_crashes.{}", self.shard_label), 1);
        }
        for (_, (tag, reply)) in self.pending.drain() {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.recorder.complete(tag, false);
            reply.send(Response::Error {
                tag,
                code: ErrorCode::Internal,
            });
        }
        // Replace the simulator now so crashed state is gone immediately;
        // it is rebuilt again (fresh) at restart anyway.
        self.generation += 1;
        self.sim = Self::sim_for_generation(&self.cfg, self.generation);
        let deadline = Instant::now() + restart_after;
        // A crash during the dead window extends it.
        self.dead_until = Some(match self.dead_until {
            Some(t) => t.max(deadline),
            None => deadline,
        });
    }

    /// Leaves the dead window if its deadline has passed.
    fn maybe_restart(&mut self) {
        if let Some(t) = self.dead_until {
            if Instant::now() >= t {
                self.dead_until = None;
                self.metrics().inc("server.shard_restarts", 1);
            }
        }
    }

    /// Advances the simulator and answers completions.
    fn advance_and_complete(&mut self) {
        // Flush and shutdown fast-forward past wall-clock pacing: the
        // simulator is advanced until nothing is left in flight. Later
        // submissions clamp their arrival to the simulator clock, so time
        // stays monotonic.
        let horizon =
            if self.stopping || !self.flush_waiters.is_empty() || !self.yield_waiters.is_empty() {
                SimTime::MAX
            } else {
                self.clock.now()
            };
        self.sim.advance_until(horizon);

        let done = self.sim.drain_completions();
        if !done.is_empty() {
            let learner = self.sim.learner_summary();
            let bg = self.sim.bg_summary();
            let mut m = self.metrics();
            for c in &done {
                m.inc("server.completed", 1);
                m.inc(&format!("server.completed.{}", self.shard_label), 1);
                m.observe("server.latency.virtual", c.latency());
            }
            // Learned mode: export the shard's live learner state so STATS
            // shows threshold-learning progress while the server runs.
            if let Some(l) = learner {
                let tag = &self.shard_label;
                m.set_gauge(&format!("server.learner.{tag}.updates"), l.updates as f64);
                m.set_gauge(
                    &format!("server.learner.{tag}.recalibrations"),
                    l.recalibrations as f64,
                );
                m.set_gauge(
                    &format!("server.learner.{tag}.blocks_tracked"),
                    l.blocks_tracked as f64,
                );
                m.set_gauge(
                    &format!("server.learner.{tag}.mean_abs_error"),
                    l.mean_abs_error,
                );
            }
            // Hybrid mode: export the shard's live background-traffic
            // state so STATS shows cache destaging and refresh progress
            // while the server runs.
            if let Some(h) = bg {
                let tag = &self.shard_label;
                m.set_gauge(
                    &format!("server.bg.{tag}.cache_occupancy"),
                    h.cache_occupancy,
                );
                m.set_gauge(
                    &format!("server.bg.{tag}.migrated_slots"),
                    h.migrated_slots as f64,
                );
                m.set_gauge(
                    &format!("server.bg.{tag}.refreshed_slots"),
                    h.refreshed_slots as f64,
                );
                m.set_gauge(&format!("server.bg.{tag}.bg_ops"), h.bg_ops as f64);
            }
        }
        for c in done {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            if let Some((tag, reply)) = self.pending.remove(&c.id) {
                self.recorder.complete(tag, true);
                // A dead connection just drops its completions.
                reply.send(Response::Done {
                    tag,
                    latency_ns: c.latency().as_ns(),
                });
            }
        }
    }
}

fn run_worker(
    spec: ShardSpec,
    cfg: SsdConfig,
    clock: VirtualClock,
    inflight: Arc<AtomicUsize>,
    metrics: Arc<Mutex<MetricsRegistry>>,
    recorder: Arc<TraceRecorder>,
    rx: Receiver<ShardMsg>,
) {
    let mut w = Worker {
        shard_label: format!("shard{}", spec.index),
        sim: Worker::sim_for_generation(&cfg, 0),
        cfg,
        clock,
        inflight,
        metrics,
        recorder,
        pending: HashMap::new(),
        flush_waiters: Vec::new(),
        yield_waiters: Vec::new(),
        stopping: false,
        dead_until: None,
        generation: 0,
    };

    loop {
        // Ingest everything queued without blocking.
        loop {
            match rx.try_recv() {
                Ok(msg) => w.handle(msg),
                Err(_) => break,
            }
        }

        w.maybe_restart();
        if w.dead_until.is_none() {
            w.advance_and_complete();
        }

        // A crash clears `pending`, so flushes ack immediately while dead.
        if w.pending.is_empty() && !w.flush_waiters.is_empty() {
            for waiter in w.flush_waiters.drain(..) {
                let _ = waiter.send(());
            }
        }
        // Same drain condition for migration snapshots: everything that
        // was admitted before the Yield has completed, so the learner
        // state captures all of it.
        if w.pending.is_empty() && !w.yield_waiters.is_empty() {
            let snapshot = w.learner_snapshot_text();
            for waiter in w.yield_waiters.drain(..) {
                let _ = waiter.send(snapshot.clone());
            }
        }
        if w.stopping && w.pending.is_empty() {
            return;
        }

        // Sleep until the next simulated event is due on the wall clock,
        // waking early for new messages. A dead shard just polls its
        // inbox until the restart deadline.
        let nap = if w.dead_until.is_some() {
            IDLE_POLL
        } else {
            match w.sim.next_event_time() {
                Some(t) => w.clock.wall_until(t).min(IDLE_POLL),
                None => IDLE_POLL,
            }
        };
        match rx.recv_timeout(nap) {
            Ok(msg) => w.handle(msg),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => w.stopping = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_capacity_exactly() {
        let shards = ShardSpec::partition(1000, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].base_offset, 0);
        assert_eq!(shards[1].base_offset, 333);
        assert_eq!(shards[2].base_offset, 666);
        let total: u64 = shards.iter().map(|s| s.span_bytes).sum();
        assert_eq!(total, 1000, "last shard absorbs the remainder");
        assert_eq!(shards[2].span_bytes, 334);
    }

    #[test]
    fn routing_matches_partition() {
        let cap = 1 << 30;
        let n = 4;
        let shards = ShardSpec::partition(cap, n);
        for offset in [0u64, 1, (cap / 4) - 1, cap / 4, cap / 2, cap - 1] {
            let idx = ShardSpec::route(cap, n, offset);
            let s = shards[idx];
            assert!(
                offset >= s.base_offset && offset < s.base_offset + s.span_bytes,
                "offset {offset} routed to shard {idx} [{}, {})",
                s.base_offset,
                s.base_offset + s.span_bytes
            );
        }
    }

    #[test]
    fn top_offset_routes_to_last_shard() {
        // span division truncates, so the highest offsets must clamp to
        // the last shard instead of indexing out of bounds.
        assert_eq!(ShardSpec::route(1000, 3, 999), 2);
    }

    #[test]
    fn crashed_worker_fails_pending_and_bounces_then_restarts() {
        use rif_ssd::RetryKind;
        use std::sync::mpsc;

        let clock = VirtualClock::start(1000.0);
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let (tx, rx) = mpsc::channel();
        let spec = ShardSpec {
            index: 0,
            base_offset: 0,
            span_bytes: 1 << 30,
        };
        let cfg = SsdConfig::small(RetryKind::Rif, 2000);
        let recorder = Arc::new(TraceRecorder::new(false));
        let handle = spawn_shard(
            spec,
            cfg,
            clock,
            Arc::clone(&metrics),
            recorder,
            rx,
            tx.clone(),
        )
        .expect("spawn shard");

        let (reply_tx, reply_rx) = mpsc::channel();
        // Submit one request, then crash before it can complete. The
        // reserved in-flight slot is what the worker must release.
        handle.inflight.fetch_add(1, Ordering::AcqRel);
        tx.send(ShardMsg::Submit(Submission {
            tag: 7,
            op: IoOp::Read,
            offset: 0,
            bytes: 4096,
            reply: ReplyTo::Channel(reply_tx.clone()),
        }))
        .unwrap();
        tx.send(ShardMsg::Crash {
            restart_after: Duration::from_millis(30),
        })
        .unwrap();

        let first = reply_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("crash must resolve the in-flight request");
        // Either the request completed before the crash landed (DONE) or
        // the crash failed it (ERROR Internal) — silence is the only
        // forbidden outcome.
        assert!(
            matches!(
                first,
                Response::Done { tag: 7, .. }
                    | Response::Error {
                        tag: 7,
                        code: ErrorCode::Internal
                    }
            ),
            "unexpected: {first:?}"
        );
        assert_eq!(handle.inflight.load(Ordering::Acquire), 0);

        // While dead, submissions bounce with BUSY(Unavailable).
        handle.inflight.fetch_add(1, Ordering::AcqRel);
        tx.send(ShardMsg::Submit(Submission {
            tag: 8,
            op: IoOp::Read,
            offset: 0,
            bytes: 4096,
            reply: ReplyTo::Channel(reply_tx.clone()),
        }))
        .unwrap();
        let bounced = reply_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("dead shard must answer, not hang");
        assert_eq!(
            bounced,
            Response::Busy {
                tag: 8,
                reason: BusyReason::Unavailable
            }
        );
        assert_eq!(handle.inflight.load(Ordering::Acquire), 0);

        // After the restart window the shard serves again.
        std::thread::sleep(Duration::from_millis(60));
        handle.inflight.fetch_add(1, Ordering::AcqRel);
        tx.send(ShardMsg::Submit(Submission {
            tag: 9,
            op: IoOp::Write,
            offset: 4096,
            bytes: 4096,
            reply: ReplyTo::Channel(reply_tx),
        }))
        .unwrap();
        let served = reply_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("restarted shard must serve");
        assert!(
            matches!(served, Response::Done { tag: 9, .. }),
            "unexpected: {served:?}"
        );

        let m = metrics.lock().unwrap().clone();
        assert_eq!(m.counter("server.shard_crashes"), 1);
        handle.stop();
    }

    #[test]
    fn learned_shard_exports_learner_gauges() {
        use rif_ssd::{LearnerConfig, LearningMode, RetryKind};
        use std::sync::mpsc;

        let clock = VirtualClock::start(10_000.0);
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let (tx, rx) = mpsc::channel();
        let spec = ShardSpec {
            index: 0,
            base_offset: 0,
            span_bytes: 1 << 30,
        };
        let mut cfg = SsdConfig::small(RetryKind::Rif, 2000);
        cfg.learning = LearningMode::Learned(LearnerConfig::default_paper());
        let recorder = Arc::new(TraceRecorder::new(false));
        let handle = spawn_shard(
            spec,
            cfg,
            clock,
            Arc::clone(&metrics),
            recorder,
            rx,
            tx.clone(),
        )
        .expect("spawn shard");

        let (reply_tx, reply_rx) = mpsc::channel();
        for i in 0..8u64 {
            handle.inflight.fetch_add(1, Ordering::AcqRel);
            tx.send(ShardMsg::Submit(Submission {
                tag: i,
                op: IoOp::Read,
                offset: i * 65536,
                bytes: 65536,
                reply: ReplyTo::Channel(reply_tx.clone()),
            }))
            .unwrap();
        }
        for _ in 0..8 {
            let r = reply_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("learned shard must serve");
            assert!(matches!(r, Response::Done { .. }), "unexpected: {r:?}");
        }
        let m = metrics.lock().unwrap().clone();
        assert!(
            m.gauge("server.learner.shard0.updates").unwrap_or(0.0) > 0.0,
            "learner update gauge missing from STATS metrics"
        );
        let err = m
            .gauge("server.learner.shard0.mean_abs_error")
            .expect("error gauge present");
        assert!(err.is_finite() && err >= 0.0);
        handle.stop();
    }

    #[test]
    fn hybrid_shard_exports_bg_gauges() {
        use rif_ssd::{HybridConfig, MigrationPolicy, RetryKind};
        use std::sync::mpsc;

        let clock = VirtualClock::start(10_000.0);
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let (tx, rx) = mpsc::channel();
        let spec = ShardSpec {
            index: 0,
            base_offset: 0,
            span_bytes: 1 << 30,
        };
        let mut cfg = SsdConfig::small(RetryKind::Rif, 2000);
        // The server's --hybrid wiring: eager unconditional destage.
        let mut h = HybridConfig::slc_qlc();
        h.migration = MigrationPolicy::Fifo;
        h.bg.high_watermark = 0.0;
        h.bg.low_watermark = 0.0;
        h.bg.refresh_scan_batch = 8;
        cfg.hybrid = Some(h);
        let recorder = Arc::new(TraceRecorder::new(false));
        let handle = spawn_shard(
            spec,
            cfg,
            clock,
            Arc::clone(&metrics),
            recorder,
            rx,
            tx.clone(),
        )
        .expect("spawn shard");

        let (reply_tx, reply_rx) = mpsc::channel();
        let mut submit = |tag: u64, op: IoOp| {
            handle.inflight.fetch_add(1, Ordering::AcqRel);
            tx.send(ShardMsg::Submit(Submission {
                tag,
                op,
                offset: tag * 65536,
                bytes: 65536,
                reply: ReplyTo::Channel(reply_tx.clone()),
            }))
            .unwrap();
        };
        // Writes land in the SLC cache; the eager drain migrates them as
        // soon as the scheduler ticks.
        for i in 0..8u64 {
            submit(i, IoOp::Write);
        }
        for _ in 0..8 {
            let r = reply_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("hybrid shard must serve writes");
            assert!(matches!(r, Response::Done { .. }), "unexpected: {r:?}");
        }
        // Give the virtual clock room for several scheduler ticks, then
        // read: the completion drain re-exports the bg gauges.
        std::thread::sleep(Duration::from_millis(20));
        for i in 8..16u64 {
            submit(i, IoOp::Read);
        }
        for _ in 0..8 {
            let r = reply_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("hybrid shard must serve reads");
            assert!(matches!(r, Response::Done { .. }), "unexpected: {r:?}");
        }
        let m = metrics.lock().unwrap().clone();
        assert!(
            m.gauge("server.bg.shard0.migrated_slots").unwrap_or(0.0) > 0.0,
            "eager destage must have migrated the cached writes"
        );
        assert!(m.gauge("server.bg.shard0.bg_ops").unwrap_or(0.0) > 0.0);
        let occ = m
            .gauge("server.bg.shard0.cache_occupancy")
            .expect("occupancy gauge present");
        assert!((0.0..=1.0).contains(&occ));
        handle.stop();
    }

    #[test]
    fn yield_then_adopt_carries_learner_state_across_workers() {
        use rif_ssd::{LearnerConfig, LearnerState, LearningMode, RetryKind};
        use std::sync::mpsc;

        let clock = VirtualClock::start(10_000.0);
        let mut cfg = SsdConfig::small(RetryKind::Rif, 2000);
        cfg.learning = LearningMode::Learned(LearnerConfig::default_paper());
        let spawn = |index: usize| {
            let (tx, rx) = mpsc::channel();
            let spec = ShardSpec {
                index,
                base_offset: 0,
                span_bytes: 1 << 30,
            };
            let h = spawn_shard(
                spec,
                cfg.clone(),
                clock.clone(),
                Arc::new(Mutex::new(MetricsRegistry::new())),
                Arc::new(TraceRecorder::new(false)),
                rx,
                tx.clone(),
            )
            .expect("spawn shard");
            (tx, h)
        };
        let (src_tx, src) = spawn(0);
        let (dst_tx, dst) = spawn(1);

        // Warm the source learner, with the last submission still in
        // flight when the Yield lands — the drain must cover it.
        let (reply_tx, reply_rx) = mpsc::channel();
        for i in 0..8u64 {
            src.inflight.fetch_add(1, Ordering::AcqRel);
            src_tx
                .send(ShardMsg::Submit(Submission {
                    tag: i,
                    op: IoOp::Read,
                    offset: i * 65536,
                    bytes: 65536,
                    reply: ReplyTo::Channel(reply_tx.clone()),
                }))
                .unwrap();
        }
        let (yield_tx, yield_rx) = mpsc::channel();
        src_tx.send(ShardMsg::Yield(yield_tx)).unwrap();
        let state_text = yield_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("yield must answer");
        // All 8 submissions preceded the Yield in the channel, so the
        // snapshot reflects every one of them.
        for _ in 0..8 {
            let r = reply_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("yield must not drop in-flight requests");
            assert!(matches!(r, Response::Done { .. }), "unexpected: {r:?}");
        }
        let state = LearnerState::parse_text(&state_text).expect("learned mode exports state");
        assert!(state.stats.updates >= 8, "updates {}", state.stats.updates);

        // Adopt on the target: its learner resumes the source's counters.
        let (ack_tx, ack_rx) = mpsc::channel();
        dst_tx
            .send(ShardMsg::Adopt {
                state: state_text,
                ack: ack_tx,
            })
            .unwrap();
        ack_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("adopt must ack");
        let (y2_tx, y2_rx) = mpsc::channel();
        dst_tx.send(ShardMsg::Yield(y2_tx)).unwrap();
        let adopted = LearnerState::parse_text(
            &y2_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("second yield answers"),
        )
        .expect("adopted state parses");
        assert_eq!(adopted, state, "state must survive the handoff intact");

        // The source keeps serving after a Yield — no dead window.
        src.inflight.fetch_add(1, Ordering::AcqRel);
        src_tx
            .send(ShardMsg::Submit(Submission {
                tag: 99,
                op: IoOp::Read,
                offset: 0,
                bytes: 4096,
                reply: ReplyTo::Channel(reply_tx),
            }))
            .unwrap();
        let r = reply_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("source keeps serving after yield");
        assert!(
            matches!(r, Response::Done { tag: 99, .. }),
            "unexpected: {r:?}"
        );

        src.stop();
        dst.stop();
    }
}
