//! Shard workers: one simulator per LBA range, each on its own thread.
//!
//! The server partitions the logical address space into `n` equal spans;
//! shard `i` owns `[i * span, (i + 1) * span)` and runs a private
//! [`Simulator`] for it. Requests arrive over an mpsc channel, are
//! submitted at the current virtual time, and the worker repeatedly
//! advances its simulator up to the [`VirtualClock`]'s *now* — which is
//! what turns the discrete-event core into a live, wall-clock-paced
//! service. Completions are answered directly to each request's
//! originating connection through the reply sender carried in the
//! [`Submission`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rif_events::trace::MetricsRegistry;
use rif_events::SimTime;
use rif_ssd::{Simulator, SsdConfig};
use rif_workloads::{IoOp, IoRequest};

use crate::pacing::VirtualClock;
use crate::protocol::Response;

/// The LBA range a shard owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index in `[0, n)`.
    pub index: usize,
    /// First logical byte owned by this shard.
    pub base_offset: u64,
    /// Bytes in the shard's span.
    pub span_bytes: u64,
}

impl ShardSpec {
    /// Splits `capacity_bytes` into `n` equal spans (the last shard
    /// absorbs the remainder).
    pub fn partition(capacity_bytes: u64, n: usize) -> Vec<ShardSpec> {
        assert!(n > 0, "at least one shard");
        assert!(capacity_bytes >= n as u64, "capacity too small to shard");
        let span = capacity_bytes / n as u64;
        (0..n)
            .map(|i| ShardSpec {
                index: i,
                base_offset: i as u64 * span,
                span_bytes: if i == n - 1 {
                    capacity_bytes - i as u64 * span
                } else {
                    span
                },
            })
            .collect()
    }

    /// The shard index owning `offset` (already wrapped into capacity).
    pub fn route(capacity_bytes: u64, n: usize, offset: u64) -> usize {
        let span = capacity_bytes / n as u64;
        ((offset / span) as usize).min(n - 1)
    }
}

/// One admitted I/O on its way to a shard.
pub struct Submission {
    /// Client correlation tag, echoed in the response.
    pub tag: u64,
    /// Read or write.
    pub op: IoOp,
    /// Offset *rebased* into the shard's local dense LBA space.
    pub offset: u64,
    /// Transfer size.
    pub bytes: u32,
    /// Where the completion goes (the originating connection's writer).
    pub reply: Sender<Response>,
}

/// Messages a shard worker consumes.
pub enum ShardMsg {
    /// Simulate one I/O.
    Submit(Submission),
    /// Fast-forward the simulator until nothing is in flight, then ack.
    Flush(Sender<()>),
    /// Drain and exit.
    Stop,
}

/// Handle to a running shard worker.
pub struct ShardHandle {
    /// The worker's inbox.
    pub tx: Sender<ShardMsg>,
    /// In-flight count, shared with the admission check in the server.
    pub inflight: Arc<AtomicUsize>,
    join: JoinHandle<()>,
}

impl ShardHandle {
    /// Asks the worker to drain and exit, then joins it.
    pub fn stop(self) {
        let _ = self.tx.send(ShardMsg::Stop);
        let _ = self.join.join();
    }
}

/// Longest the worker sleeps between polls even with nothing scheduled,
/// so Stop/Flush messages are always picked up promptly.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// Spawns the worker thread for one shard.
pub fn spawn_shard(
    spec: ShardSpec,
    cfg: SsdConfig,
    clock: VirtualClock,
    metrics: Arc<Mutex<MetricsRegistry>>,
    rx: Receiver<ShardMsg>,
    tx: Sender<ShardMsg>,
) -> ShardHandle {
    let inflight = Arc::new(AtomicUsize::new(0));
    let inflight_worker = Arc::clone(&inflight);
    let join = std::thread::Builder::new()
        .name(format!("rif-shard-{}", spec.index))
        .spawn(move || run_worker(spec, cfg, clock, inflight_worker, metrics, rx))
        .expect("spawn shard worker");
    ShardHandle { tx, inflight, join }
}

fn run_worker(
    spec: ShardSpec,
    cfg: SsdConfig,
    clock: VirtualClock,
    inflight: Arc<AtomicUsize>,
    metrics: Arc<Mutex<MetricsRegistry>>,
    rx: Receiver<ShardMsg>,
) {
    let mut sim = Simulator::new(cfg);
    // sim request id -> (client tag, reply channel)
    let mut pending: HashMap<u64, (u64, Sender<Response>)> = HashMap::new();
    let mut flush_waiters: Vec<Sender<()>> = Vec::new();
    let mut stopping = false;
    let shard_label = format!("shard{}", spec.index);

    loop {
        // Ingest everything queued without blocking.
        loop {
            match rx.try_recv() {
                Ok(ShardMsg::Submit(s)) => {
                    let id = sim.submit(IoRequest {
                        arrival: clock.now(),
                        op: s.op,
                        offset: s.offset,
                        bytes: s.bytes,
                    });
                    pending.insert(id, (s.tag, s.reply));
                }
                Ok(ShardMsg::Flush(done)) => flush_waiters.push(done),
                Ok(ShardMsg::Stop) => stopping = true,
                Err(_) => break,
            }
        }

        // Flush and shutdown fast-forward past wall-clock pacing: the
        // simulator is advanced until nothing is left in flight. Later
        // submissions clamp their arrival to the simulator clock, so time
        // stays monotonic.
        let horizon = if stopping || !flush_waiters.is_empty() {
            SimTime::MAX
        } else {
            clock.now()
        };
        sim.advance_until(horizon);

        let done = sim.drain_completions();
        if !done.is_empty() {
            let mut m = metrics.lock().expect("metrics lock");
            for c in &done {
                m.inc("server.completed", 1);
                m.inc(&format!("server.completed.{shard_label}"), 1);
                m.observe("server.latency.virtual", c.latency());
            }
        }
        for c in done {
            inflight.fetch_sub(1, Ordering::AcqRel);
            if let Some((tag, reply)) = pending.remove(&c.id) {
                // A dead connection just drops its completions.
                let _ = reply.send(Response::Done {
                    tag,
                    latency_ns: c.latency().as_ns(),
                });
            }
        }

        if pending.is_empty() && !flush_waiters.is_empty() {
            for w in flush_waiters.drain(..) {
                let _ = w.send(());
            }
        }
        if stopping && pending.is_empty() {
            return;
        }

        // Sleep until the next simulated event is due on the wall clock,
        // waking early for new messages.
        let nap = match sim.next_event_time() {
            Some(t) => clock.wall_until(t).min(IDLE_POLL),
            None => IDLE_POLL,
        };
        match rx.recv_timeout(nap) {
            Ok(ShardMsg::Submit(s)) => {
                let id = sim.submit(IoRequest {
                    arrival: clock.now(),
                    op: s.op,
                    offset: s.offset,
                    bytes: s.bytes,
                });
                pending.insert(id, (s.tag, s.reply));
            }
            Ok(ShardMsg::Flush(done)) => flush_waiters.push(done),
            Ok(ShardMsg::Stop) => stopping = true,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => stopping = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_capacity_exactly() {
        let shards = ShardSpec::partition(1000, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].base_offset, 0);
        assert_eq!(shards[1].base_offset, 333);
        assert_eq!(shards[2].base_offset, 666);
        let total: u64 = shards.iter().map(|s| s.span_bytes).sum();
        assert_eq!(total, 1000, "last shard absorbs the remainder");
        assert_eq!(shards[2].span_bytes, 334);
    }

    #[test]
    fn routing_matches_partition() {
        let cap = 1 << 30;
        let n = 4;
        let shards = ShardSpec::partition(cap, n);
        for offset in [0u64, 1, (cap / 4) - 1, cap / 4, cap / 2, cap - 1] {
            let idx = ShardSpec::route(cap, n, offset);
            let s = shards[idx];
            assert!(
                offset >= s.base_offset && offset < s.base_offset + s.span_bytes,
                "offset {offset} routed to shard {idx} [{}, {})",
                s.base_offset,
                s.base_offset + s.span_bytes
            );
        }
    }

    #[test]
    fn top_offset_routes_to_last_shard() {
        // span division truncates, so the highest offsets must clamp to
        // the last shard instead of indexing out of bounds.
        assert_eq!(ShardSpec::route(1000, 3, 999), 2);
    }
}
