//! Online storage-service layer over the RiF SSD simulator.
//!
//! The offline crates answer "what does this trace cost?"; this crate
//! answers "what does the simulated device feel like to a live client?".
//! It exposes the incremental stepper API of [`rif_ssd::Simulator`]
//! (`submit` / `advance_until` / `drain_completions`) as a loopback TCP
//! service:
//!
//! - [`protocol`] — the length-prefixed binary wire format;
//! - [`bucket`] — per-tenant token-bucket rate limiting;
//! - [`pacing`] — the virtual-time ↔ wall-clock bridge;
//! - [`poller`] — vendored epoll shim with a portable `poll(2)` fallback;
//! - [`ring`] — zero-copy receive rings and vectored write queues;
//! - [`shard`] — one simulator worker thread per LBA range;
//! - [`server`] — accept loop, admission control, metrics;
//! - [`event_loop`] — the readiness-based single-thread server core;
//! - [`client`] — the closed-loop load generator and its JSON report;
//! - [`mux`] — the poller-multiplexed high-concurrency load generator;
//! - [`recorder`] — live trace capture of every admitted request;
//! - [`replay`] — driving a captured trace back through a live server.
//!
//! Everything is plain `std` (threads, mpsc, blocking sockets): the
//! service layer adds no dependencies beyond the simulator itself.
//!
//! # Example
//!
//! ```no_run
//! use rif_server::client::{run_load, LoadConfig};
//! use rif_server::server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default(), 0).unwrap();
//! let report = run_load(&LoadConfig {
//!     addr: server.local_addr().to_string(),
//!     requests: 1000,
//!     ..LoadConfig::default()
//! })
//! .unwrap();
//! println!("{}", report.to_json());
//! server.stop();
//! ```

#![warn(missing_docs)]

pub mod bucket;
pub mod client;
pub mod event_loop;
pub mod mux;
pub mod pacing;
pub mod poller;
pub mod protocol;
pub mod recorder;
pub mod replay;
pub(crate) mod replicate;
pub mod ring;
pub mod server;
pub mod shard;

pub use client::{
    run_load, run_load_journaled, run_plans, Conn, Journal, LoadConfig, LoadReport, Outcome,
    PlannedIo, ReconnectBackoff, TagRecord,
};
pub use protocol::{
    BatchEntry, FrameBuffer, Request, Response, WireError, MAX_BATCH_ENTRIES, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use recorder::TraceRecorder;
pub use replay::{run_replay_journaled, ReplayConfig, ReplayDiff};
pub use server::{Server, ServerConfig};
