//! Live trace capture: journaling every admitted request.
//!
//! A [`TraceRecorder`] sits in the server's admission path and records
//! each I/O that actually reached a shard worker — arrival wall time,
//! op, wrapped offset, bytes, tenant, shard, and (once the worker
//! answers) the terminal outcome. [`TraceRecorder::capture`] renders the
//! journal as a [`rif_workloads::Capture`], the CSV format the offline
//! simulator and figure pipeline replay bit-for-bit.
//!
//! Two subtleties make a capture a faithful record of *logical* I/O:
//!
//! - **Retry coalescing.** A client re-issue carries the original tag in
//!   its `retry_of` field (BATCH entries only; v1 single frames cannot
//!   express it). When the original admission is already journaled, the
//!   retry *aliases* onto that record instead of creating a new one —
//!   the logical request appears once no matter how many times flaky
//!   transport made the client resend it.
//! - **Dead-shard bounces.** A worker in its post-crash dead window
//!   answers `BUSY(Unavailable)` for a request the server already
//!   admitted (and journaled). [`TraceRecorder::reject`] retracts that
//!   admission; a record with no live admission and no outcome is
//!   dropped from the capture, because the I/O never ran.
//!
//! Timestamps are read from one monotonic clock *inside* the recorder
//! lock, so the journal is non-decreasing in time by construction and
//! the rendered CSV needs no sort — identical serving runs produce
//! identical captures.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rif_workloads::{Capture, CaptureOutcome, CapturedRequest, IoOp};

/// One journaled logical request (pre-capture form).
#[derive(Debug, Clone, Copy)]
struct Rec {
    t_us: u64,
    op: IoOp,
    offset: u64,
    bytes: u32,
    tenant: u32,
    shard: u32,
    /// `Some(true)` = DONE, `Some(false)` = ERROR. First terminal wins:
    /// a duplicate completion of a retried request must not overwrite
    /// the outcome the first execution produced.
    outcome: Option<bool>,
    /// Admissions currently in flight for this logical request. A record
    /// with zero admissions and no outcome was only ever dead-bounced
    /// and is dropped at capture time.
    admissions: u32,
}

#[derive(Debug)]
struct State {
    epoch: Instant,
    records: Vec<Rec>,
    /// Every tag (original or retry alias) → index into `records`.
    by_tag: HashMap<u64, usize>,
}

/// Journals admitted requests for capture. Cheap when disabled: every
/// hook is a single relaxed atomic load.
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: AtomicBool,
    state: Mutex<State>,
}

impl TraceRecorder {
    /// A recorder; disabled ones journal nothing.
    pub fn new(enabled: bool) -> Self {
        TraceRecorder {
            enabled: AtomicBool::new(enabled),
            state: Mutex::new(State {
                epoch: Instant::now(),
                records: Vec::new(),
                by_tag: HashMap::new(),
            }),
        }
    }

    /// True when capture is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        // Recorder state is append-mostly; recover from a poisoned lock
        // rather than wedging the request path.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Journals an admission: the request was handed to shard worker
    /// `shard`. `retry_of` is the ROOT tag of the client's retry chain
    /// when this is a re-issue (zero otherwise); a known `retry_of`
    /// aliases this tag onto the original record instead of journaling
    /// a second request. An *unknown* `retry_of` (the root was never
    /// admitted — lost before reaching this server) is registered as an
    /// alias of the fresh record, so every later re-issue of the same
    /// chain still dedups onto it.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &self,
        tag: u64,
        retry_of: u64,
        op: IoOp,
        offset: u64,
        bytes: u32,
        tenant: u32,
        shard: u32,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut s = self.state();
        if retry_of != 0 {
            if let Some(&idx) = s.by_tag.get(&retry_of) {
                s.by_tag.insert(tag, idx);
                s.records[idx].admissions += 1;
                return;
            }
        }
        if let Some(&idx) = s.by_tag.get(&tag) {
            // The same tag admitted twice (e.g. a duplicated frame the
            // transport replayed): one logical request.
            s.records[idx].admissions += 1;
            return;
        }
        let t_us = s.epoch.elapsed().as_micros() as u64;
        let idx = s.records.len();
        s.records.push(Rec {
            t_us,
            op,
            offset,
            bytes,
            tenant,
            shard,
            outcome: None,
            admissions: 1,
        });
        s.by_tag.insert(tag, idx);
        if retry_of != 0 {
            s.by_tag.insert(retry_of, idx);
        }
    }

    /// Journals a terminal outcome (`ok` = DONE, else ERROR) for `tag`.
    /// The first terminal outcome wins; later duplicates are ignored.
    pub fn complete(&self, tag: u64, ok: bool) {
        if !self.is_enabled() {
            return;
        }
        let mut s = self.state();
        if let Some(&idx) = s.by_tag.get(&tag) {
            let r = &mut s.records[idx];
            if r.outcome.is_none() {
                r.outcome = Some(ok);
            }
        }
    }

    /// Retracts one admission for `tag`: the shard bounced it without
    /// running it (dead window after a crash). If no other admission of
    /// the same logical request is live and none completed, the record
    /// drops out of the capture.
    pub fn reject(&self, tag: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut s = self.state();
        if let Some(&idx) = s.by_tag.get(&tag) {
            let r = &mut s.records[idx];
            r.admissions = r.admissions.saturating_sub(1);
        }
    }

    /// Number of logical requests journaled so far (including ones that
    /// would be dropped at capture time).
    pub fn len(&self) -> usize {
        self.state().records.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the journal as a normalized [`Capture`]: bounce-only
    /// records are dropped, unresolved ones (still in flight, or their
    /// completion was lost) surface as `error`, and timestamps are
    /// rebased so the first record sits at `t = 0`.
    pub fn capture(&self) -> Capture {
        let s = self.state();
        let mut cap = Capture::new(
            s.records
                .iter()
                .filter(|r| r.outcome.is_some() || r.admissions > 0)
                .map(|r| CapturedRequest {
                    t_us: r.t_us,
                    op: r.op,
                    offset: r.offset,
                    bytes: r.bytes,
                    tenant: r.tenant,
                    shard: r.shard,
                    outcome: if r.outcome == Some(true) {
                        CaptureOutcome::Done
                    } else {
                        CaptureOutcome::Error
                    },
                })
                .collect(),
        );
        cap.normalize();
        cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(r: &TraceRecorder, tag: u64, retry_of: u64) {
        r.admit(tag, retry_of, IoOp::Read, 4096, 65536, 0, 1);
    }

    #[test]
    fn disabled_recorder_journals_nothing() {
        let r = TraceRecorder::new(false);
        admit(&r, 1, 0);
        r.complete(1, true);
        assert!(r.is_empty());
        assert!(r.capture().is_empty());
    }

    #[test]
    fn records_admission_and_outcome() {
        let r = TraceRecorder::new(true);
        admit(&r, 1, 0);
        r.complete(1, true);
        let cap = r.capture();
        assert_eq!(cap.len(), 1);
        let rec = cap.records[0];
        assert_eq!(rec.t_us, 0, "capture is normalized");
        assert_eq!((rec.offset, rec.bytes, rec.shard), (4096, 65536, 1));
        assert_eq!(rec.outcome, CaptureOutcome::Done);
    }

    #[test]
    fn retry_aliases_onto_the_original_record() {
        let r = TraceRecorder::new(true);
        admit(&r, 10, 0);
        // Two re-issues of the same logical request (fresh tags).
        admit(&r, 11, 10);
        admit(&r, 12, 10);
        assert_eq!(r.len(), 1, "logical request journaled once");
        // The retry's completion resolves the original record.
        r.complete(12, true);
        let cap = r.capture();
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.records[0].outcome, CaptureOutcome::Done);
    }

    #[test]
    fn retry_chains_alias_transitively() {
        let r = TraceRecorder::new(true);
        admit(&r, 10, 0);
        admit(&r, 11, 10);
        // The client links each re-issue to its immediate predecessor.
        admit(&r, 12, 11);
        assert_eq!(r.len(), 1);
        r.complete(11, false);
        r.complete(12, true); // later duplicate: first terminal wins
        assert_eq!(r.capture().records[0].outcome, CaptureOutcome::Error);
    }

    #[test]
    fn unknown_retry_of_is_a_fresh_logical_request() {
        let r = TraceRecorder::new(true);
        // The original was BUSY-rejected pre-admission, so it was never
        // journaled; the retry is the first admission that counts.
        admit(&r, 21, 20);
        assert_eq!(r.len(), 1);
        r.complete(21, true);
        assert_eq!(r.capture().len(), 1);
    }

    #[test]
    fn bounce_only_records_drop_out_of_the_capture() {
        let r = TraceRecorder::new(true);
        admit(&r, 1, 0);
        r.reject(1); // dead-shard bounce: the I/O never ran
        admit(&r, 2, 0);
        r.complete(2, true);
        let cap = r.capture();
        assert_eq!(cap.len(), 1, "bounced request must not be captured");
    }

    #[test]
    fn bounced_then_retried_request_is_captured_once() {
        let r = TraceRecorder::new(true);
        admit(&r, 1, 0);
        r.reject(1);
        admit(&r, 2, 1); // re-issue after the bounce
        r.complete(2, true);
        let cap = r.capture();
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.records[0].outcome, CaptureOutcome::Done);
    }

    #[test]
    fn unresolved_requests_surface_as_error() {
        let r = TraceRecorder::new(true);
        admit(&r, 1, 0);
        let cap = r.capture();
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.records[0].outcome, CaptureOutcome::Error);
    }

    #[test]
    fn capture_time_is_monotonic_and_csv_parses() {
        let r = TraceRecorder::new(true);
        for tag in 1..=100u64 {
            admit(&r, tag, 0);
            r.complete(tag, true);
        }
        let cap = r.capture();
        assert!(cap.records.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        let csv = cap.to_csv();
        assert_eq!(Capture::parse_csv(&csv).expect("parse"), cap);
    }
}
