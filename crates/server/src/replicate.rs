//! Primary-side replication shipper (DESIGN §15).
//!
//! In cluster mode every admitted client write on an owned range with
//! followers is offered to the [`Replicator`], which ships it
//! asynchronously as a version-stamped `REPLICATE` frame to each
//! follower. One ship thread owns all follower connections and assigns
//! each range's shipment sequence number **at ship time**, so sequence
//! order equals ship order by construction and the follower applies
//! writes in the order the primary shipped them.
//!
//! The per-range **watermark** is the highest sequence number through
//! which *every* shipment so far has been acked by *all* followers —
//! i.e. the contiguous replicated prefix of the range's write stream.
//! A refused, timed-out, or skipped shipment stalls the watermark for
//! the rest of the epoch: replication is an availability hint, and the
//! stall makes the gap observable instead of papering over it. A new
//! epoch (the directory re-pushing after promotion or migration) resets
//! sequences and watermarks, because the follower set itself changed.
//!
//! A follower that refuses a connection is marked down and skipped for
//! [`DOWN_BACKOFF`] instead of blocking the ship thread on every job —
//! a dead follower costs one connect timeout per backoff window, not
//! one per write.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{decode_response, read_frame, write_frame, Request, Response};

/// How long a follower stays skipped after a connect/ship failure.
const DOWN_BACKOFF: Duration = Duration::from_millis(500);

/// Per-shipment socket timeout: a follower that cannot ack within this
/// is treated as failed (and backed off), not waited on.
const SHIP_TIMEOUT: Duration = Duration::from_millis(1000);

/// Bounded in-place retries when a follower answers `BUSY` (its shard
/// queue is momentarily full under shared load).
const BUSY_RETRIES: usize = 3;

/// One write queued for shipment to a range's followers.
#[derive(Debug, Clone, Copy)]
struct ReplJob {
    /// Epoch captured at offer time; stale jobs are dropped at ship
    /// time so an epoch flip cannot advance the new epoch's watermark
    /// with old-epoch traffic.
    epoch: u64,
    range: u32,
    tenant: u32,
    /// Wrapped global offset (the follower rebases it itself).
    offset: u64,
    bytes: u32,
}

/// Counters the ship thread exports into STATS.
#[derive(Debug, Default)]
pub(crate) struct ReplCounters {
    /// Jobs processed (one per admitted write on a replicated range).
    pub(crate) shipped: AtomicU64,
    /// Follower acks received.
    pub(crate) acked: AtomicU64,
    /// Shipments skipped because the follower was backed off or the
    /// job's epoch was stale.
    pub(crate) skipped: AtomicU64,
    /// Shipments refused or lost (connect/send/ack failure).
    pub(crate) failed: AtomicU64,
}

/// The primary-side shipping engine: target table, watermarks, and the
/// ship thread's inbox. Lives in `Shared` for cluster-mode servers.
pub(crate) struct Replicator {
    /// Epoch the target table belongs to.
    epoch: AtomicU64,
    /// range → follower addresses (from the directory's MAP_PUSH).
    targets: Mutex<HashMap<u32, Vec<String>>>,
    /// Per-range contiguous replicated prefix (0 = nothing replicated).
    watermarks: Vec<AtomicU64>,
    pub(crate) counters: ReplCounters,
    tx: Mutex<Option<Sender<ReplJob>>>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Replicator {
    /// Creates the engine and starts its ship thread.
    pub(crate) fn start(shards: usize) -> io::Result<std::sync::Arc<Replicator>> {
        let (tx, rx) = mpsc::channel();
        let repl = std::sync::Arc::new(Replicator {
            epoch: AtomicU64::new(0),
            targets: Mutex::new(HashMap::new()),
            watermarks: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            counters: ReplCounters::default(),
            tx: Mutex::new(Some(tx)),
            thread: Mutex::new(None),
        });
        let worker = std::sync::Arc::clone(&repl);
        let handle = std::thread::Builder::new()
            .name("rif-repl-ship".into())
            .spawn(move || ship_loop(&worker, &rx))?;
        *repl.thread.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        Ok(repl)
    }

    /// Installs a new epoch's shipping targets, resetting sequences and
    /// watermarks (the follower set changed, so the old contiguous
    /// prefix is meaningless). Called under the MAP_PUSH epoch gate.
    pub(crate) fn update_targets(&self, epoch: u64, replicas: &[(u32, String)]) {
        let mut grouped: HashMap<u32, Vec<String>> = HashMap::new();
        for (range, addr) in replicas {
            grouped.entry(*range).or_default().push(addr.clone());
        }
        {
            let mut t = self.targets.lock().unwrap_or_else(|e| e.into_inner());
            *t = grouped;
        }
        for w in &self.watermarks {
            w.store(0, Ordering::Release);
        }
        // Publish the epoch last: a job offered against the old epoch
        // after this point is dropped by the ship thread's stale check.
        self.epoch.store(epoch, Ordering::Release);
    }

    /// Offers an admitted client write for shipment. Cheap when the
    /// range has no followers (one lock, no queueing).
    pub(crate) fn offer(&self, range: u32, tenant: u32, offset: u64, bytes: u32) {
        {
            let t = self.targets.lock().unwrap_or_else(|e| e.into_inner());
            match t.get(&range) {
                Some(f) if !f.is_empty() => {}
                _ => return,
            }
        }
        let job = ReplJob {
            epoch: self.epoch.load(Ordering::Acquire),
            range,
            tenant,
            offset,
            bytes,
        };
        if let Some(tx) = self.tx.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            let _ = tx.send(job);
        }
    }

    /// The range's replication watermark: every shipment with
    /// `seq <= watermark` was acked by all followers this epoch.
    pub(crate) fn watermark(&self, range: usize) -> u64 {
        self.watermarks[range].load(Ordering::Acquire)
    }

    /// Number of ranges the engine tracks.
    pub(crate) fn shards(&self) -> usize {
        self.watermarks.len()
    }

    /// Stops the ship thread (drains nothing: pending jobs are dropped,
    /// which only stalls watermarks — acceptable at shutdown).
    pub(crate) fn stop(&self) {
        drop(self.tx.lock().unwrap_or_else(|e| e.into_inner()).take());
        if let Some(h) = self.thread.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

/// The ship thread: drains jobs in order, owns all follower
/// connections, assigns per-range sequence numbers, and advances
/// watermarks on contiguous all-follower acks.
fn ship_loop(repl: &Replicator, rx: &Receiver<ReplJob>) {
    let mut conns: HashMap<String, TcpStream> = HashMap::new();
    let mut down: HashMap<String, Instant> = HashMap::new();
    let mut seqs: HashMap<u32, u64> = HashMap::new();
    let mut stalled: HashSet<u32> = HashSet::new();
    let mut shipped_epoch = 0u64;
    let mut next_tag = 1u64;
    while let Ok(job) = rx.recv() {
        if job.epoch != repl.epoch.load(Ordering::Acquire) {
            repl.counters.skipped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if job.epoch != shipped_epoch {
            seqs.clear();
            stalled.clear();
            shipped_epoch = job.epoch;
        }
        let followers: Vec<String> = {
            let t = repl.targets.lock().unwrap_or_else(|e| e.into_inner());
            t.get(&job.range).cloned().unwrap_or_default()
        };
        if followers.is_empty() {
            continue;
        }
        let seq = {
            let e = seqs.entry(job.range).or_insert(0);
            *e += 1;
            *e
        };
        let mut all_acked = true;
        for addr in followers {
            if let Some(until) = down.get(&addr) {
                if Instant::now() < *until {
                    repl.counters.skipped.fetch_add(1, Ordering::Relaxed);
                    all_acked = false;
                    continue;
                }
                down.remove(&addr);
            }
            let tag = next_tag;
            next_tag += 1;
            match ship_one(&mut conns, &addr, tag, &job, seq) {
                Ok(true) => {
                    repl.counters.acked.fetch_add(1, Ordering::Relaxed);
                }
                Ok(false) => {
                    repl.counters.failed.fetch_add(1, Ordering::Relaxed);
                    all_acked = false;
                }
                Err(_) => {
                    repl.counters.failed.fetch_add(1, Ordering::Relaxed);
                    all_acked = false;
                    conns.remove(&addr);
                    down.insert(addr, Instant::now() + DOWN_BACKOFF);
                }
            }
        }
        repl.counters.shipped.fetch_add(1, Ordering::Relaxed);
        if all_acked && !stalled.contains(&job.range) {
            repl.watermarks[job.range as usize].store(seq, Ordering::Release);
        } else {
            stalled.insert(job.range);
        }
    }
}

/// Ships one write to one follower over its (lazily opened) connection
/// and waits for the matching response. `Ok(true)` = acked, `Ok(false)`
/// = refused (connection stays usable), `Err` = transport failure.
fn ship_one(
    conns: &mut HashMap<String, TcpStream>,
    addr: &str,
    tag: u64,
    job: &ReplJob,
    seq: u64,
) -> io::Result<bool> {
    for attempt in 0..=BUSY_RETRIES {
        if !conns.contains_key(addr) {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(SHIP_TIMEOUT))?;
            stream.set_write_timeout(Some(SHIP_TIMEOUT))?;
            conns.insert(addr.to_string(), stream);
        }
        let stream = conns.get_mut(addr).expect("just inserted");
        let req = Request::Replicate {
            tag,
            range: job.range,
            epoch: job.epoch,
            seq,
            tenant: job.tenant,
            offset: job.offset,
            bytes: job.bytes,
        };
        write_frame(stream, &crate::protocol::encode_request(&req))?;
        loop {
            let payload = match read_frame(stream)? {
                Some(p) => p,
                None => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "follower eof")),
            };
            let resp = match decode_response(&payload) {
                Ok(r) => r,
                // An undecodable frame on our private connection means
                // the peer is not speaking the protocol: give up on it.
                Err(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "undecodable follower frame",
                    ))
                }
            };
            if resp.tag() != tag {
                // Not ours (cannot happen on a private connection, but
                // harmless to skip).
                continue;
            }
            return match resp {
                Response::ReplAck { .. } => Ok(true),
                Response::Busy { .. } if attempt < BUSY_RETRIES => {
                    std::thread::sleep(Duration::from_millis(2));
                    break; // retry the shipment on the same connection
                }
                _ => Ok(false),
            };
        }
    }
    unreachable!("busy-retry loop always returns before exhausting attempts");
}
