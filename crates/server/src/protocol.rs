//! The length-prefixed binary wire protocol of the storage service.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 LE    | payload (len bytes)       |
//! +----------------+---------------------------+
//! ```
//!
//! with `len <= MAX_FRAME_BYTES`. The first payload byte is the opcode;
//! all integers are little-endian. Request payloads:
//!
//! ```text
//! READ / WRITE : op u8 | tenant u32 | tag u64 | offset u64 | bytes u32
//! STATS / FLUSH / SHUTDOWN : op u8 | tag u64
//! HELLO   : op u8 | tag u64 | version u32
//! BATCH   : op u8 | count u16 | count × entry
//!   entry : op u8 (READ|WRITE) | tenant u32 | tag u64 | offset u64
//!         | bytes u32 | retry_of u64
//! MAP_GET : op u8 | tag u64
//! MAP_PUSH : op u8 | tag u64 | epoch u64 | capacity u64 | ranges u32
//!          | owned_count u16 | owned_count × range u32
//!          | follow_count u16 | follow_count × range u32
//!          | repl_count u16 | repl_count × (range u32 | addr_len u16
//!          | addr bytes (UTF-8))
//!          | map text (UTF-8, rest of frame)
//! MIGRATE_OUT : op u8 | tag u64 | range u32
//! MIGRATE_IN  : op u8 | tag u64 | range u32 | state text (UTF-8, rest)
//! MIGRATE : op u8 | tag u64 | range u32 | node id text (UTF-8, rest)
//! REPLICATE : op u8 | tag u64 | range u32 | epoch u64 | seq u64
//!           | tenant u32 | offset u64 | bytes u32
//! ```
//!
//! Response payloads:
//!
//! ```text
//! DONE    : op u8 | tag u64 | latency_ns u64
//! BUSY    : op u8 | tag u64 | reason u8
//! ERROR   : op u8 | tag u64 | code u8
//! STATS   : op u8 | tag u64 | text (UTF-8, rest of frame)
//! FLUSHED / GOODBYE : op u8 | tag u64
//! HELLO_ACK : op u8 | tag u64 | version u32
//! MAP_RESP : op u8 | tag u64 | epoch u64 | map text (UTF-8, rest)
//! WRONG_SHARD : op u8 | tag u64 | epoch u64
//! MIGRATED : op u8 | tag u64 | range u32 | state text (UTF-8, rest)
//! REPL_ACK : op u8 | tag u64 | range u32 | seq u64
//! ```
//!
//! BATCH and HELLO are protocol-version-2 messages. A v2 client opens
//! with HELLO carrying [`PROTOCOL_VERSION`]; the server answers
//! HELLO_ACK with `min(its version, the client's)`. A v1 server instead
//! answers the unknown opcode with `ERROR(tag=0, BadRequest)`, which a
//! v2 client treats as "speak v1": single-request frames only. BATCH
//! carries up to [`MAX_BATCH_ENTRIES`] I/O submissions under one length
//! prefix; each entry keeps its own tag (responses stay per-request and
//! may interleave with other traffic) and a `retry_of` field naming the
//! original tag when the entry is a client re-issue (zero otherwise).
//!
//! The MAP_*, MIGRATE_*, and REPLICATE messages are protocol-version-3
//! (cluster) messages. MAP_GET asks any node or the directory for its
//! current shard map (answered with MAP_RESP); MAP_PUSH installs new
//! range ownership on a node (the map text rides along verbatim so the
//! node can serve it back without parsing it). MAP_PUSH additionally
//! names the ranges the node **follows** (replica apply targets) and,
//! per owned range, the follower endpoints the node must ship its
//! writes to — both lists sit before the text tail, and both sides of
//! MAP_PUSH (directory and node) always ship in the same build, so the
//! layout can grow without a version gate. REPLICATE ships one primary
//! write to a follower, version-stamped with the primary's map `epoch`
//! and a per-range monotone `seq`; the follower applies it and answers
//! REPL_ACK with the same stamp, advancing the primary's per-range
//! replication watermark. MIGRATE_OUT seals a range on
//! its source node and returns the drained shard's learner state;
//! MIGRATE_IN seeds that state into the target. MIGRATE is the
//! directory's admin entry point ("move this range to that node").
//! WRONG_SHARD(epoch) rejects an I/O routed to a node that does not own
//! the range — never admitted, so re-routing is always safe — and
//! BUSY(moving) bounces arrivals for a range mid-handoff. Both are only
//! sent to connections that negotiated v3; older clients see
//! BUSY(unavailable), which carries the same not-admitted guarantee.
//!
//! The `tag` is an opaque client-chosen correlation id echoed verbatim;
//! responses may arrive out of submission order (the simulator completes
//! requests when their last byte crosses the host link, not FIFO).
//! Decoding is strict: unknown opcodes, short payloads, and trailing
//! bytes are all [`WireError`]s, and a frame header announcing more than
//! [`MAX_FRAME_BYTES`] is rejected before any allocation.

use std::fmt;
use std::io::{self, Read, Write};

use rif_workloads::IoOp;

/// Upper bound on a frame payload. Large enough for a STATS dump, small
/// enough that a corrupt length prefix cannot make the peer allocate
/// gigabytes.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024;

/// The protocol version this build speaks. Version 3 added the cluster
/// messages (MAP_GET/MAP_PUSH/MIGRATE_*) and the WRONG_SHARD and
/// BUSY(moving) rejections; version 2 added HELLO negotiation and BATCH
/// frames; version 1 (single-request frames only) remains the wire
/// baseline for peers that never say HELLO.
pub const PROTOCOL_VERSION: u32 = 3;

/// Upper bound on entries in one BATCH frame. At 33 bytes per entry a
/// full batch stays well under [`MAX_FRAME_BYTES`].
pub const MAX_BATCH_ENTRIES: u16 = 512;

pub(crate) const BATCH_ENTRY_BYTES: usize = 33;

pub(crate) const OP_READ: u8 = 0x01;
pub(crate) const OP_WRITE: u8 = 0x02;
pub(crate) const OP_STATS: u8 = 0x03;
pub(crate) const OP_FLUSH: u8 = 0x04;
pub(crate) const OP_SHUTDOWN: u8 = 0x05;
pub(crate) const OP_HELLO: u8 = 0x06;
pub(crate) const OP_BATCH: u8 = 0x07;
pub(crate) const OP_MAP_GET: u8 = 0x08;
pub(crate) const OP_MAP_PUSH: u8 = 0x09;
pub(crate) const OP_MIGRATE_OUT: u8 = 0x0A;
pub(crate) const OP_MIGRATE_IN: u8 = 0x0B;
pub(crate) const OP_MIGRATE: u8 = 0x0C;
pub(crate) const OP_REPLICATE: u8 = 0x0D;

const OP_DONE: u8 = 0x81;
const OP_BUSY: u8 = 0x82;
const OP_ERROR: u8 = 0x83;
const OP_STATS_RESP: u8 = 0x84;
const OP_FLUSHED: u8 = 0x85;
const OP_GOODBYE: u8 = 0x86;
const OP_HELLO_ACK: u8 = 0x87;
const OP_MAP_RESP: u8 = 0x88;
const OP_WRONG_SHARD: u8 = 0x89;
const OP_MIGRATED: u8 = 0x8A;
const OP_REPL_ACK: u8 = 0x8B;

/// Why the server refused a request without simulating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The target shard's in-flight window is full (queue backpressure).
    Queue,
    /// The tenant's token bucket is empty (rate limit).
    RateLimit,
    /// The target shard's worker is dead and has not restarted yet. The
    /// request was *not* admitted, so retrying is always safe.
    Unavailable,
    /// The addressed LBA range is mid-migration to another node. The
    /// request was *not* admitted; the client should refresh its shard
    /// map and re-route. Only sent to v3 connections.
    Moving,
}

/// Terminal error codes carried in ERROR responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame did not decode.
    BadRequest,
    /// The request addressed a zero-byte or oversized transfer.
    BadLength,
    /// The server is shutting down.
    ShuttingDown,
    /// The shard worker crashed with this request in flight: the I/O may
    /// or may not have executed. Reads can be retried; writes must be
    /// surfaced to the caller.
    Internal,
    /// The server's connection limit is reached; this connection was
    /// refused at accept time and closes immediately after this frame.
    ConnLimit,
}

/// One I/O submission inside a BATCH frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEntry {
    /// Read or write (the only ops a batch may carry).
    pub op: IoOp,
    /// Tenant id for rate limiting.
    pub tenant: u32,
    /// Client correlation tag, echoed in this entry's response.
    pub tag: u64,
    /// Logical byte offset.
    pub offset: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Tag of the original submission when this entry is a client
    /// re-issue of an earlier request; zero for a first submission. The
    /// server's trace recorder uses it to journal the logical request
    /// once rather than once per retry.
    pub retry_of: u64,
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Simulated read of `bytes` at logical `offset`.
    Read {
        /// Tenant id for rate limiting.
        tenant: u32,
        /// Client correlation tag, echoed in the response.
        tag: u64,
        /// Logical byte offset.
        offset: u64,
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// Simulated write of `bytes` at logical `offset`.
    Write {
        /// Tenant id for rate limiting.
        tenant: u32,
        /// Client correlation tag, echoed in the response.
        tag: u64,
        /// Logical byte offset.
        offset: u64,
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// Snapshot the server's metrics registry.
    Stats {
        /// Client correlation tag.
        tag: u64,
    },
    /// Block until every in-flight request on every shard has completed.
    Flush {
        /// Client correlation tag.
        tag: u64,
    },
    /// Ask the server process to exit after draining.
    Shutdown {
        /// Client correlation tag.
        tag: u64,
    },
    /// Version negotiation: "I speak `version`". Answered by
    /// [`Response::HelloAck`] on a v2+ server, `ERROR(BadRequest)` on v1.
    Hello {
        /// Client correlation tag.
        tag: u64,
        /// Highest protocol version the client speaks.
        version: u32,
    },
    /// Up to [`MAX_BATCH_ENTRIES`] I/O submissions in one frame.
    /// Admission is per-entry: each entry gets its own DONE/BUSY/ERROR.
    Batch(Vec<BatchEntry>),
    /// Ask for the peer's current shard map (v3). Answered with
    /// [`Response::MapResp`].
    MapGet {
        /// Client correlation tag.
        tag: u64,
    },
    /// Install range ownership on a node (v3, directory → node). The
    /// canonical map text rides along verbatim so the node can serve it
    /// back on MAP_GET without parsing it.
    MapPush {
        /// Client correlation tag.
        tag: u64,
        /// The map's monotonic epoch.
        epoch: u64,
        /// Logical capacity the range grid divides (must match the
        /// node's configured capacity).
        capacity_bytes: u64,
        /// Total ranges in the grid (must match the node's shard count).
        ranges: u32,
        /// The range indices this node now owns.
        owned: Vec<u32>,
        /// The range indices this node now **follows**: it accepts
        /// REPLICATE applies (and serves reads for failover) but bounces
        /// client writes back to the primary.
        followed: Vec<u32>,
        /// Per owned range, the follower endpoints this node ships its
        /// writes to — one `(range, addr)` pair per follower, so a range
        /// with two followers appears twice.
        replicas: Vec<(u32, String)>,
        /// Canonical shard-map serialization, stored verbatim.
        map_text: String,
    },
    /// Seal a range on its source node (v3): drain its in-flight
    /// requests and return the shard's learner state via
    /// [`Response::Migrated`]. The range bounces `BUSY(moving)` until a
    /// later MAP_PUSH settles ownership.
    MigrateOut {
        /// Client correlation tag.
        tag: u64,
        /// The range index to seal.
        range: u32,
    },
    /// Seed a migrated range's learner state into the target node (v3).
    MigrateIn {
        /// Client correlation tag.
        tag: u64,
        /// The range index being adopted.
        range: u32,
        /// The source shard's learner state (may be empty on failover).
        state: String,
    },
    /// Directory admin entry point (v3): move `range` to node `node`.
    /// The directory orchestrates MIGRATE_OUT/MIGRATE_IN/MAP_PUSH and
    /// answers with [`Response::MapResp`] carrying the new map.
    Migrate {
        /// Client correlation tag.
        tag: u64,
        /// The range index to move.
        range: u32,
        /// Id of the destination node in the map.
        node: String,
    },
    /// Ship one primary write to a follower (v3, node → node). The
    /// follower applies it to its local shard and answers
    /// [`Response::ReplAck`] echoing the `(range, seq)` stamp.
    Replicate {
        /// Shipper correlation tag (the primary's replication stream
        /// numbers these independently of any client tag space).
        tag: u64,
        /// The range the write belongs to.
        range: u32,
        /// The primary's map epoch when it shipped the write — a
        /// staleness stamp, so a follower that moved on can refuse.
        epoch: u64,
        /// Per-range monotone sequence number of this write on the
        /// primary; acks gate the range's replication watermark.
        seq: u64,
        /// Originating tenant (follower-side accounting only; the
        /// primary already charged admission).
        tenant: u32,
        /// Wrapped global byte offset of the write.
        offset: u64,
        /// Transfer size in bytes.
        bytes: u32,
    },
}

impl Request {
    /// The correlation tag of this request. A batch has no frame-level
    /// tag (each entry carries its own); its first entry's tag stands in
    /// so diagnostics have something to point at.
    pub fn tag(&self) -> u64 {
        match self {
            Request::Read { tag, .. }
            | Request::Write { tag, .. }
            | Request::Stats { tag }
            | Request::Flush { tag }
            | Request::Shutdown { tag }
            | Request::Hello { tag, .. }
            | Request::MapGet { tag }
            | Request::MapPush { tag, .. }
            | Request::MigrateOut { tag, .. }
            | Request::MigrateIn { tag, .. }
            | Request::Migrate { tag, .. }
            | Request::Replicate { tag, .. } => *tag,
            Request::Batch(entries) => entries.first().map_or(0, |e| e.tag),
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The simulated I/O completed.
    Done {
        /// The request's correlation tag.
        tag: u64,
        /// Virtual (simulation-clock) service latency.
        latency_ns: u64,
    },
    /// Backpressure: retry later.
    Busy {
        /// The request's correlation tag.
        tag: u64,
        /// Which admission check refused the request.
        reason: BusyReason,
    },
    /// The request was rejected outright.
    Error {
        /// The request's correlation tag (zero if none decoded).
        tag: u64,
        /// Why it was rejected.
        code: ErrorCode,
    },
    /// Deterministic `MetricsRegistry::lines` rendering, one per line.
    Stats {
        /// The request's correlation tag.
        tag: u64,
        /// The rendered metrics text.
        text: String,
    },
    /// All shards drained.
    Flushed {
        /// The request's correlation tag.
        tag: u64,
    },
    /// Shutdown acknowledged; the connection closes next.
    Goodbye {
        /// The request's correlation tag.
        tag: u64,
    },
    /// Version negotiation reply: the version both sides will speak
    /// (`min(server, client)`).
    HelloAck {
        /// The HELLO's correlation tag.
        tag: u64,
        /// The negotiated protocol version.
        version: u32,
    },
    /// The peer's current shard map (v3).
    MapResp {
        /// The MAP_GET's correlation tag.
        tag: u64,
        /// The map's monotonic epoch.
        epoch: u64,
        /// Canonical shard-map serialization (empty if the node has not
        /// received a map yet).
        text: String,
    },
    /// The addressed LBA range is not owned by this node (v3). The
    /// request was *not* admitted; the client should refetch the map
    /// and re-route. `epoch` is the node's current map epoch, a
    /// staleness hint for the client's cache.
    WrongShard {
        /// The request's correlation tag.
        tag: u64,
        /// The responding node's current map epoch.
        epoch: u64,
    },
    /// A MIGRATE_OUT or MIGRATE_IN completed (v3). For MIGRATE_OUT,
    /// `state` carries the drained shard's learner snapshot; for
    /// MIGRATE_IN it is empty.
    Migrated {
        /// The request's correlation tag.
        tag: u64,
        /// The range index that moved.
        range: u32,
        /// Learner state text (empty when none).
        state: String,
    },
    /// A follower applied a [`Request::Replicate`] (v3). Echoes the
    /// write's `(range, seq)` stamp; the primary advances the range's
    /// replication watermark to `seq` once every follower acked it.
    ReplAck {
        /// The REPLICATE's correlation tag.
        tag: u64,
        /// The range the write belonged to.
        range: u32,
        /// The acknowledged sequence number.
        seq: u64,
    },
}

impl Response {
    /// The correlation tag of this response.
    pub fn tag(&self) -> u64 {
        match *self {
            Response::Done { tag, .. }
            | Response::Busy { tag, .. }
            | Response::Error { tag, .. }
            | Response::Stats { tag, .. }
            | Response::Flushed { tag }
            | Response::Goodbye { tag }
            | Response::HelloAck { tag, .. }
            | Response::MapResp { tag, .. }
            | Response::WrongShard { tag, .. }
            | Response::Migrated { tag, .. }
            | Response::ReplAck { tag, .. } => tag,
        }
    }
}

/// Why a payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a fixed-size field.
    Truncated {
        /// Bytes the message needs up to and including the short field.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A frame header announced a payload above [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced length.
        len: u32,
    },
    /// The first payload byte is not a known opcode.
    UnknownOpcode(u8),
    /// Bytes remained after the last field of a fixed-size message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// An enum byte (busy reason / error code) is out of range.
    BadEnum {
        /// Which field was malformed.
        field: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// STATS text is not valid UTF-8.
    BadUtf8,
    /// The payload is empty (no opcode byte).
    Empty,
    /// A BATCH frame announced zero entries.
    EmptyBatch,
    /// A BATCH frame announced more entries than [`MAX_BATCH_ENTRIES`].
    BatchTooLarge {
        /// The announced entry count.
        count: u16,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated payload: need {need} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last field")
            }
            WireError::BadEnum { field, value } => {
                write!(f, "field {field} has out-of-range value {value}")
            }
            WireError::BadUtf8 => write!(f, "stats text is not valid UTF-8"),
            WireError::Empty => write!(f, "empty payload"),
            WireError::EmptyBatch => write!(f, "batch frame with zero entries"),
            WireError::BatchTooLarge { count } => {
                write!(
                    f,
                    "batch of {count} entries exceeds the {MAX_BATCH_ENTRIES}-entry cap"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ----- field cursors -----------------------------------------------------

/// Field cursor shared by the owning decoders here and the zero-copy
/// view decoder in [`crate::ring`]. Error layout (the exact `need`/`got`
/// of a `Truncated`) is part of both decoders' contract: the view
/// decoder must be byte-for-byte equivalent to [`decode_request`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.buf.len() - self.pos;
        if got < n {
            return Err(WireError::Truncated {
                need: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    pub(crate) fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            })
        }
    }
}

// ----- encoding ----------------------------------------------------------

/// Serializes a request into a frame payload (no length prefix).
///
/// # Panics
///
/// Panics on a [`Request::Batch`] that is empty or exceeds
/// [`MAX_BATCH_ENTRIES`] — such a batch can never decode, so encoding
/// one is a caller bug.
pub fn encode_request(r: &Request) -> Vec<u8> {
    let mut b = Vec::with_capacity(25);
    match r {
        Request::Read {
            tenant,
            tag,
            offset,
            bytes,
        }
        | Request::Write {
            tenant,
            tag,
            offset,
            bytes,
        } => {
            b.push(if matches!(r, Request::Read { .. }) {
                OP_READ
            } else {
                OP_WRITE
            });
            b.extend_from_slice(&tenant.to_le_bytes());
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&offset.to_le_bytes());
            b.extend_from_slice(&bytes.to_le_bytes());
        }
        Request::Stats { tag } => {
            b.push(OP_STATS);
            b.extend_from_slice(&tag.to_le_bytes());
        }
        Request::Flush { tag } => {
            b.push(OP_FLUSH);
            b.extend_from_slice(&tag.to_le_bytes());
        }
        Request::Shutdown { tag } => {
            b.push(OP_SHUTDOWN);
            b.extend_from_slice(&tag.to_le_bytes());
        }
        Request::Hello { tag, version } => {
            b.push(OP_HELLO);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&version.to_le_bytes());
        }
        Request::Batch(entries) => {
            assert!(!entries.is_empty(), "encoding an empty batch");
            assert!(
                entries.len() <= MAX_BATCH_ENTRIES as usize,
                "batch of {} entries exceeds the {MAX_BATCH_ENTRIES}-entry cap",
                entries.len()
            );
            b.reserve(3 + entries.len() * BATCH_ENTRY_BYTES);
            b.push(OP_BATCH);
            b.extend_from_slice(&(entries.len() as u16).to_le_bytes());
            for e in entries {
                b.push(if e.op == IoOp::Read {
                    OP_READ
                } else {
                    OP_WRITE
                });
                b.extend_from_slice(&e.tenant.to_le_bytes());
                b.extend_from_slice(&e.tag.to_le_bytes());
                b.extend_from_slice(&e.offset.to_le_bytes());
                b.extend_from_slice(&e.bytes.to_le_bytes());
                b.extend_from_slice(&e.retry_of.to_le_bytes());
            }
        }
        Request::MapGet { tag } => {
            b.push(OP_MAP_GET);
            b.extend_from_slice(&tag.to_le_bytes());
        }
        Request::MapPush {
            tag,
            epoch,
            capacity_bytes,
            ranges,
            owned,
            followed,
            replicas,
            map_text,
        } => {
            assert!(
                owned.len() <= u16::MAX as usize
                    && followed.len() <= u16::MAX as usize
                    && replicas.len() <= u16::MAX as usize,
                "map-push list exceeds the u16 count field"
            );
            b.push(OP_MAP_PUSH);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&epoch.to_le_bytes());
            b.extend_from_slice(&capacity_bytes.to_le_bytes());
            b.extend_from_slice(&ranges.to_le_bytes());
            b.extend_from_slice(&(owned.len() as u16).to_le_bytes());
            for r in owned {
                b.extend_from_slice(&r.to_le_bytes());
            }
            b.extend_from_slice(&(followed.len() as u16).to_le_bytes());
            for r in followed {
                b.extend_from_slice(&r.to_le_bytes());
            }
            b.extend_from_slice(&(replicas.len() as u16).to_le_bytes());
            for (r, addr) in replicas {
                assert!(
                    addr.len() <= u16::MAX as usize,
                    "replica addr exceeds the u16 length field"
                );
                b.extend_from_slice(&r.to_le_bytes());
                b.extend_from_slice(&(addr.len() as u16).to_le_bytes());
                b.extend_from_slice(addr.as_bytes());
            }
            b.extend_from_slice(map_text.as_bytes());
        }
        Request::MigrateOut { tag, range } => {
            b.push(OP_MIGRATE_OUT);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&range.to_le_bytes());
        }
        Request::MigrateIn { tag, range, state } => {
            b.push(OP_MIGRATE_IN);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&range.to_le_bytes());
            b.extend_from_slice(state.as_bytes());
        }
        Request::Migrate { tag, range, node } => {
            b.push(OP_MIGRATE);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&range.to_le_bytes());
            b.extend_from_slice(node.as_bytes());
        }
        Request::Replicate {
            tag,
            range,
            epoch,
            seq,
            tenant,
            offset,
            bytes,
        } => {
            b.push(OP_REPLICATE);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&range.to_le_bytes());
            b.extend_from_slice(&epoch.to_le_bytes());
            b.extend_from_slice(&seq.to_le_bytes());
            b.extend_from_slice(&tenant.to_le_bytes());
            b.extend_from_slice(&offset.to_le_bytes());
            b.extend_from_slice(&bytes.to_le_bytes());
        }
    }
    b
}

/// Parses a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let op = r.u8().map_err(|_| WireError::Empty)?;
    let req = match op {
        OP_READ | OP_WRITE => {
            let tenant = r.u32()?;
            let tag = r.u64()?;
            let offset = r.u64()?;
            let bytes = r.u32()?;
            if op == OP_READ {
                Request::Read {
                    tenant,
                    tag,
                    offset,
                    bytes,
                }
            } else {
                Request::Write {
                    tenant,
                    tag,
                    offset,
                    bytes,
                }
            }
        }
        OP_STATS => Request::Stats { tag: r.u64()? },
        OP_FLUSH => Request::Flush { tag: r.u64()? },
        OP_SHUTDOWN => Request::Shutdown { tag: r.u64()? },
        OP_HELLO => Request::Hello {
            tag: r.u64()?,
            version: r.u32()?,
        },
        OP_BATCH => {
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            if count == 0 {
                return Err(WireError::EmptyBatch);
            }
            if count > MAX_BATCH_ENTRIES {
                return Err(WireError::BatchTooLarge { count });
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let op = match r.u8()? {
                    OP_READ => IoOp::Read,
                    OP_WRITE => IoOp::Write,
                    v => {
                        return Err(WireError::BadEnum {
                            field: "batch_entry_op",
                            value: v,
                        })
                    }
                };
                entries.push(BatchEntry {
                    op,
                    tenant: r.u32()?,
                    tag: r.u64()?,
                    offset: r.u64()?,
                    bytes: r.u32()?,
                    retry_of: r.u64()?,
                });
            }
            Request::Batch(entries)
        }
        OP_MAP_GET => Request::MapGet { tag: r.u64()? },
        OP_MAP_PUSH => {
            let tag = r.u64()?;
            let epoch = r.u64()?;
            let capacity_bytes = r.u64()?;
            let ranges = r.u32()?;
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            let mut owned = Vec::with_capacity(count as usize);
            for _ in 0..count {
                owned.push(r.u32()?);
            }
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            let mut followed = Vec::with_capacity(count as usize);
            for _ in 0..count {
                followed.push(r.u32()?);
            }
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            let mut replicas = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let range = r.u32()?;
                let len = u16::from_le_bytes([r.u8()?, r.u8()?]);
                let addr = std::str::from_utf8(r.take(len as usize)?)
                    .map_err(|_| WireError::BadUtf8)?
                    .to_string();
                replicas.push((range, addr));
            }
            let map_text = std::str::from_utf8(r.rest())
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Request::MapPush {
                tag,
                epoch,
                capacity_bytes,
                ranges,
                owned,
                followed,
                replicas,
                map_text,
            }
        }
        OP_MIGRATE_OUT => Request::MigrateOut {
            tag: r.u64()?,
            range: r.u32()?,
        },
        OP_MIGRATE_IN => {
            let tag = r.u64()?;
            let range = r.u32()?;
            let state = std::str::from_utf8(r.rest())
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Request::MigrateIn { tag, range, state }
        }
        OP_MIGRATE => {
            let tag = r.u64()?;
            let range = r.u32()?;
            let node = std::str::from_utf8(r.rest())
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Request::Migrate { tag, range, node }
        }
        OP_REPLICATE => Request::Replicate {
            tag: r.u64()?,
            range: r.u32()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            tenant: r.u32()?,
            offset: r.u64()?,
            bytes: r.u32()?,
        },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    r.done()?;
    Ok(req)
}

/// Serializes a response into a frame payload (no length prefix).
pub fn encode_response(r: &Response) -> Vec<u8> {
    let mut b = Vec::with_capacity(17);
    encode_response_payload_into(r, &mut b);
    b
}

/// Appends one *length-prefixed* response frame to `out` without an
/// intermediate payload allocation. The event loop's per-connection
/// write queues encode straight into their coalesced chunks with this.
pub fn encode_response_frame_into(r: &Response, out: &mut Vec<u8>) {
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    encode_response_payload_into(r, out);
    let payload_len = out.len() - len_at - 4;
    assert!(
        payload_len <= MAX_FRAME_BYTES as usize,
        "frame payload of {payload_len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
    );
    out[len_at..len_at + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
}

fn encode_response_payload_into(r: &Response, b: &mut Vec<u8>) {
    match r {
        Response::Done { tag, latency_ns } => {
            b.push(OP_DONE);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&latency_ns.to_le_bytes());
        }
        Response::Busy { tag, reason } => {
            b.push(OP_BUSY);
            b.extend_from_slice(&tag.to_le_bytes());
            b.push(match reason {
                BusyReason::Queue => 1,
                BusyReason::RateLimit => 2,
                BusyReason::Unavailable => 3,
                BusyReason::Moving => 4,
            });
        }
        Response::Error { tag, code } => {
            b.push(OP_ERROR);
            b.extend_from_slice(&tag.to_le_bytes());
            b.push(match code {
                ErrorCode::BadRequest => 1,
                ErrorCode::BadLength => 2,
                ErrorCode::ShuttingDown => 3,
                ErrorCode::Internal => 4,
                ErrorCode::ConnLimit => 5,
            });
        }
        Response::Stats { tag, text } => {
            b.push(OP_STATS_RESP);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(text.as_bytes());
        }
        Response::Flushed { tag } => {
            b.push(OP_FLUSHED);
            b.extend_from_slice(&tag.to_le_bytes());
        }
        Response::Goodbye { tag } => {
            b.push(OP_GOODBYE);
            b.extend_from_slice(&tag.to_le_bytes());
        }
        Response::HelloAck { tag, version } => {
            b.push(OP_HELLO_ACK);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&version.to_le_bytes());
        }
        Response::MapResp { tag, epoch, text } => {
            b.push(OP_MAP_RESP);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&epoch.to_le_bytes());
            b.extend_from_slice(text.as_bytes());
        }
        Response::WrongShard { tag, epoch } => {
            b.push(OP_WRONG_SHARD);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&epoch.to_le_bytes());
        }
        Response::Migrated { tag, range, state } => {
            b.push(OP_MIGRATED);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&range.to_le_bytes());
            b.extend_from_slice(state.as_bytes());
        }
        Response::ReplAck { tag, range, seq } => {
            b.push(OP_REPL_ACK);
            b.extend_from_slice(&tag.to_le_bytes());
            b.extend_from_slice(&range.to_le_bytes());
            b.extend_from_slice(&seq.to_le_bytes());
        }
    }
}

/// Parses a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let op = r.u8().map_err(|_| WireError::Empty)?;
    let resp = match op {
        OP_DONE => Response::Done {
            tag: r.u64()?,
            latency_ns: r.u64()?,
        },
        OP_BUSY => {
            let tag = r.u64()?;
            let reason = match r.u8()? {
                1 => BusyReason::Queue,
                2 => BusyReason::RateLimit,
                3 => BusyReason::Unavailable,
                4 => BusyReason::Moving,
                v => {
                    return Err(WireError::BadEnum {
                        field: "busy_reason",
                        value: v,
                    })
                }
            };
            Response::Busy { tag, reason }
        }
        OP_ERROR => {
            let tag = r.u64()?;
            let code = match r.u8()? {
                1 => ErrorCode::BadRequest,
                2 => ErrorCode::BadLength,
                3 => ErrorCode::ShuttingDown,
                4 => ErrorCode::Internal,
                5 => ErrorCode::ConnLimit,
                v => {
                    return Err(WireError::BadEnum {
                        field: "error_code",
                        value: v,
                    })
                }
            };
            Response::Error { tag, code }
        }
        OP_STATS_RESP => {
            let tag = r.u64()?;
            let text = std::str::from_utf8(r.rest())
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Response::Stats { tag, text }
        }
        OP_FLUSHED => Response::Flushed { tag: r.u64()? },
        OP_GOODBYE => Response::Goodbye { tag: r.u64()? },
        OP_HELLO_ACK => Response::HelloAck {
            tag: r.u64()?,
            version: r.u32()?,
        },
        OP_MAP_RESP => {
            let tag = r.u64()?;
            let epoch = r.u64()?;
            let text = std::str::from_utf8(r.rest())
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Response::MapResp { tag, epoch, text }
        }
        OP_WRONG_SHARD => Response::WrongShard {
            tag: r.u64()?,
            epoch: r.u64()?,
        },
        OP_MIGRATED => {
            let tag = r.u64()?;
            let range = r.u32()?;
            let state = std::str::from_utf8(r.rest())
                .map_err(|_| WireError::BadUtf8)?
                .to_string();
            Response::Migrated { tag, range, state }
        }
        OP_REPL_ACK => Response::ReplAck {
            tag: r.u64()?,
            range: r.u32()?,
            seq: r.u64()?,
        },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    if !matches!(
        resp,
        Response::Stats { .. } | Response::MapResp { .. } | Response::Migrated { .. }
    ) {
        r.done()?;
    }
    Ok(resp)
}

// ----- frame I/O ---------------------------------------------------------

/// Writes one length-prefixed frame.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_BYTES`] — encoders in this
/// module never produce such a payload, so this is a caller bug.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES as usize,
        "frame payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
        payload.len()
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at
/// a frame boundary; an EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error and an oversized length prefix is [`io::ErrorKind::InvalidData`]
/// (carrying a [`WireError::Oversized`]).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "died mid-header".
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_buf)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            WireError::Oversized { len },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame parser for peers that read with a timeout.
///
/// `read_frame` assumes a blocking stream: a read timeout striking
/// mid-frame would lose the bytes already consumed and de-sync the
/// stream. A `FrameBuffer` instead accumulates whatever bytes arrive and
/// yields complete frames as they become available, so a caller can poll
/// with `set_read_timeout` and keep partial frames intact across wakeups.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame payload, if one is fully buffered.
    /// An oversized length prefix poisons the stream permanently (the
    /// frame boundary is unrecoverable) and is reported as `Err`.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { len });
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Read {
                tenant: 3,
                tag: 0xDEAD_BEEF,
                offset: 1 << 33,
                bytes: 65536,
            },
            Request::Write {
                tenant: 0,
                tag: u64::MAX,
                offset: 0,
                bytes: 1,
            },
            Request::Stats { tag: 7 },
            Request::Flush { tag: 8 },
            Request::Shutdown { tag: 9 },
            Request::Hello {
                tag: 10,
                version: PROTOCOL_VERSION,
            },
            Request::Batch(vec![
                BatchEntry {
                    op: IoOp::Read,
                    tenant: 1,
                    tag: 11,
                    offset: 4096,
                    bytes: 65536,
                    retry_of: 0,
                },
                BatchEntry {
                    op: IoOp::Write,
                    tenant: 2,
                    tag: 12,
                    offset: 1 << 40,
                    bytes: 4096,
                    retry_of: 11,
                },
            ]),
            Request::MapGet { tag: 13 },
            Request::MapPush {
                tag: 14,
                epoch: 3,
                capacity_bytes: 8 << 30,
                ranges: 4,
                owned: vec![0, 2],
                followed: vec![1, 3],
                replicas: vec![
                    (0, "127.0.0.1:4002".to_string()),
                    (2, "127.0.0.1:4003".to_string()),
                ],
                map_text: "# rif-shardmap v1 epoch=3 capacity=8589934592 ranges=4\n".to_string(),
            },
            Request::MapPush {
                tag: 15,
                epoch: 0,
                capacity_bytes: 1,
                ranges: 1,
                owned: vec![],
                followed: vec![],
                replicas: vec![],
                map_text: String::new(),
            },
            Request::MigrateOut { tag: 16, range: 2 },
            Request::MigrateIn {
                tag: 17,
                range: 2,
                state: "block 5 -0.0125\n".to_string(),
            },
            Request::MigrateIn {
                tag: 18,
                range: 0,
                state: String::new(),
            },
            Request::Migrate {
                tag: 19,
                range: 1,
                node: "b".to_string(),
            },
            Request::Replicate {
                tag: 20,
                range: 3,
                epoch: 7,
                seq: 41,
                tenant: 2,
                offset: 1 << 34,
                bytes: 65536,
            },
        ];
        for r in reqs {
            let enc = encode_request(&r);
            assert_eq!(decode_request(&enc), Ok(r));
        }
    }

    #[test]
    fn full_batch_fits_in_a_frame() {
        let entries = vec![
            BatchEntry {
                op: IoOp::Read,
                tenant: 0,
                tag: 1,
                offset: 0,
                bytes: 4096,
                retry_of: 0,
            };
            MAX_BATCH_ENTRIES as usize
        ];
        let enc = encode_request(&Request::Batch(entries.clone()));
        assert!(enc.len() <= MAX_FRAME_BYTES as usize);
        assert_eq!(decode_request(&enc), Ok(Request::Batch(entries)));
    }

    #[test]
    fn batch_count_lies_are_rejected_without_panic() {
        let entries = vec![
            BatchEntry {
                op: IoOp::Write,
                tenant: 3,
                tag: 21,
                offset: 8192,
                bytes: 4096,
                retry_of: 0,
            },
            BatchEntry {
                op: IoOp::Read,
                tenant: 3,
                tag: 22,
                offset: 0,
                bytes: 4096,
                retry_of: 0,
            },
        ];
        let mut enc = encode_request(&Request::Batch(entries));
        // Count says 3, but only 2 entries follow → truncated.
        enc[1..3].copy_from_slice(&3u16.to_le_bytes());
        assert!(matches!(
            decode_request(&enc),
            Err(WireError::Truncated { .. })
        ));
        // Count says 1, but 2 entries follow → trailing bytes.
        enc[1..3].copy_from_slice(&1u16.to_le_bytes());
        assert!(matches!(
            decode_request(&enc),
            Err(WireError::TrailingBytes { .. })
        ));
        // Count 0 and over-cap counts are their own errors.
        enc[1..3].copy_from_slice(&0u16.to_le_bytes());
        assert_eq!(decode_request(&enc), Err(WireError::EmptyBatch));
        enc[1..3].copy_from_slice(&(MAX_BATCH_ENTRIES + 1).to_le_bytes());
        assert_eq!(
            decode_request(&enc),
            Err(WireError::BatchTooLarge {
                count: MAX_BATCH_ENTRIES + 1
            })
        );
    }

    #[test]
    fn batch_entry_op_must_be_read_or_write() {
        let mut enc = encode_request(&Request::Batch(vec![BatchEntry {
            op: IoOp::Read,
            tenant: 0,
            tag: 1,
            offset: 0,
            bytes: 4096,
            retry_of: 0,
        }]));
        enc[3] = OP_STATS; // first entry's op byte
        assert_eq!(
            decode_request(&enc),
            Err(WireError::BadEnum {
                field: "batch_entry_op",
                value: OP_STATS,
            })
        );
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            Response::Done {
                tag: 1,
                latency_ns: 123_456,
            },
            Response::Busy {
                tag: 2,
                reason: BusyReason::Queue,
            },
            Response::Busy {
                tag: 2,
                reason: BusyReason::RateLimit,
            },
            Response::Busy {
                tag: 2,
                reason: BusyReason::Unavailable,
            },
            Response::Error {
                tag: 3,
                code: ErrorCode::BadRequest,
            },
            Response::Error {
                tag: 3,
                code: ErrorCode::Internal,
            },
            Response::Stats {
                tag: 4,
                text: "counter server.completed 10\ngauge x 1.5".to_string(),
            },
            Response::Flushed { tag: 5 },
            Response::Goodbye { tag: 6 },
            Response::HelloAck {
                tag: 7,
                version: PROTOCOL_VERSION,
            },
            Response::Busy {
                tag: 8,
                reason: BusyReason::Moving,
            },
            Response::MapResp {
                tag: 9,
                epoch: 12,
                text: "# rif-shardmap v1 epoch=12 capacity=1024 ranges=2\n".to_string(),
            },
            Response::MapResp {
                tag: 10,
                epoch: 0,
                text: String::new(),
            },
            Response::WrongShard { tag: 11, epoch: 4 },
            Response::Migrated {
                tag: 12,
                range: 3,
                state: "block 1 0.05\n".to_string(),
            },
            Response::Migrated {
                tag: 13,
                range: 0,
                state: String::new(),
            },
            Response::ReplAck {
                tag: 14,
                range: 6,
                seq: 99,
            },
        ];
        for r in resps {
            let enc = encode_response(&r);
            assert_eq!(decode_response(&enc), Ok(r.clone()));
        }
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let full = encode_request(&Request::Read {
            tenant: 1,
            tag: 2,
            offset: 3,
            bytes: 4,
        });
        for cut in 0..full.len() {
            let e = decode_request(&full[..cut]).expect_err("must reject");
            assert!(
                matches!(e, WireError::Truncated { .. } | WireError::Empty),
                "cut {cut}: {e:?}"
            );
        }
    }

    #[test]
    fn truncated_cluster_payloads_are_rejected() {
        // Fixed-size prefixes of the v3 messages must reject every cut
        // before the text tail begins (the tail itself may be empty).
        let reqs = [
            encode_request(&Request::MapGet { tag: 5 }),
            encode_request(&Request::MigrateOut { tag: 6, range: 1 }),
            encode_request(&Request::MapPush {
                tag: 7,
                epoch: 1,
                capacity_bytes: 64,
                ranges: 2,
                owned: vec![0, 1],
                followed: vec![],
                replicas: vec![],
                map_text: String::new(),
            }),
            encode_request(&Request::MapPush {
                tag: 7,
                epoch: 1,
                capacity_bytes: 64,
                ranges: 2,
                owned: vec![0],
                followed: vec![1],
                replicas: vec![(0, "n".to_string())],
                map_text: String::new(),
            }),
            encode_request(&Request::MigrateIn {
                tag: 8,
                range: 0,
                state: String::new(),
            }),
            encode_request(&Request::Migrate {
                tag: 9,
                range: 0,
                node: String::new(),
            }),
        ];
        for full in reqs {
            for cut in 0..full.len() {
                let e = decode_request(&full[..cut]).expect_err("must reject");
                assert!(
                    matches!(e, WireError::Truncated { .. } | WireError::Empty),
                    "cut {cut}: {e:?}"
                );
            }
        }
    }

    #[test]
    fn cluster_text_fields_must_be_utf8() {
        let mut enc = encode_request(&Request::Migrate {
            tag: 1,
            range: 0,
            node: "x".to_string(),
        });
        *enc.last_mut().unwrap() = 0xFF;
        assert_eq!(decode_request(&enc), Err(WireError::BadUtf8));

        let mut enc = encode_response(&Response::MapResp {
            tag: 1,
            epoch: 1,
            text: "x".to_string(),
        });
        *enc.last_mut().unwrap() = 0xFF;
        assert_eq!(decode_response(&enc), Err(WireError::BadUtf8));
    }

    #[test]
    fn map_push_owned_count_lies_are_rejected() {
        let mut enc = encode_request(&Request::MapPush {
            tag: 1,
            epoch: 1,
            capacity_bytes: 64,
            ranges: 2,
            owned: vec![0, 1],
            followed: vec![],
            replicas: vec![],
            map_text: String::new(),
        });
        // Count says 3, only 2 owned entries follow → truncated.
        let count_at = 1 + 8 + 8 + 8 + 4;
        enc[count_at..count_at + 2].copy_from_slice(&3u16.to_le_bytes());
        assert!(matches!(
            decode_request(&enc),
            Err(WireError::Truncated { .. })
        ));
        // Count says 1: the second owned entry's bytes are re-parsed as
        // the follow section, which happens to stay well-formed — the
        // wire layer cannot tell lists from numbers. The node's
        // MAP_PUSH validation rejects the nonsense ranges downstream.
        enc[count_at..count_at + 2].copy_from_slice(&1u16.to_le_bytes());
        assert!(decode_request(&enc).is_ok());
    }

    #[test]
    fn replicate_truncations_and_bad_replica_addrs_are_rejected() {
        // REPLICATE is fixed-size: every cut of the frame must reject.
        let full = encode_request(&Request::Replicate {
            tag: 1,
            range: 2,
            epoch: 3,
            seq: 4,
            tenant: 5,
            offset: 4096,
            bytes: 4096,
        });
        for cut in 0..full.len() {
            let e = decode_request(&full[..cut]).expect_err("must reject");
            assert!(
                matches!(e, WireError::Truncated { .. } | WireError::Empty),
                "cut {cut}: {e:?}"
            );
        }
        // REPL_ACK likewise, and trailing garbage is caught.
        let full = encode_response(&Response::ReplAck {
            tag: 1,
            range: 2,
            seq: 3,
        });
        for cut in 0..full.len() {
            let e = decode_response(&full[..cut]).expect_err("must reject");
            assert!(
                matches!(e, WireError::Truncated { .. } | WireError::Empty),
                "cut {cut}: {e:?}"
            );
        }
        let mut enc = full;
        enc.push(0);
        assert_eq!(
            decode_response(&enc),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        // A replica address that is not UTF-8 is rejected at the wire.
        let mut enc = encode_request(&Request::MapPush {
            tag: 1,
            epoch: 1,
            capacity_bytes: 64,
            ranges: 2,
            owned: vec![0],
            followed: vec![1],
            replicas: vec![(0, "y".to_string())],
            map_text: String::new(),
        });
        // The 1-byte address is the last byte before the (empty) map text.
        *enc.last_mut().unwrap() = 0xFF;
        assert_eq!(decode_request(&enc), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = encode_request(&Request::Stats { tag: 1 });
        enc.push(0);
        assert_eq!(
            decode_request(&enc),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert_eq!(decode_request(&[0x7F]), Err(WireError::UnknownOpcode(0x7F)));
        assert_eq!(decode_response(&[0x00]), Err(WireError::UnknownOpcode(0)));
        assert_eq!(decode_request(&[]), Err(WireError::Empty));
    }

    #[test]
    fn frame_io_roundtrips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abc").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().as_deref(), Some(&b"abc"[..]));
        assert_eq!(read_frame(&mut cur).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut cur).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = read_frame(&mut Cursor::new(buf)).expect_err("must reject");
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();

        let mut fb = FrameBuffer::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        // Feed one byte at a time: every split point must be survivable.
        for b in &wire {
            fb.feed(std::slice::from_ref(b));
            while let Some(p) = fb.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_rejects_oversized_prefix() {
        let mut fb = FrameBuffer::new();
        fb.feed(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 3); // lose half the payload
        let e = read_frame(&mut Cursor::new(buf)).expect_err("must reject");
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }
}
