//! The loopback TCP storage service.
//!
//! One acceptor thread hands each connection a reader thread (decodes
//! frames, runs admission control, routes to shards) and a writer thread
//! (serializes every [`Response`] arriving on the connection's mpsc
//! channel). Shard workers answer completions straight onto that channel,
//! so responses from different shards interleave freely and may be out of
//! submission order — the tag is the correlation key.
//!
//! Admission happens before a request ever reaches a simulator:
//!
//! 1. **Queue backpressure** — each shard exposes an atomic in-flight
//!    count; if the target shard is at `inflight_limit`, the server
//!    answers `BUSY(queue)` immediately instead of queueing unboundedly.
//! 2. **Rate limiting** — a per-tenant token bucket; an empty bucket
//!    answers `BUSY(rate_limit)`.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rif_events::trace::MetricsRegistry;
use rif_ssd::{RetryKind, SsdConfig};
use rif_workloads::IoOp;

use crate::bucket::TenantBuckets;
use crate::pacing::VirtualClock;
use crate::poller::Waker;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, BatchEntry, BusyReason, ErrorCode,
    Request, Response, PROTOCOL_VERSION,
};
use crate::recorder::TraceRecorder;
use crate::replicate::Replicator;
use crate::shard::{spawn_shard, ReplyTo, ShardHandle, ShardMsg, ShardSpec, Submission};

/// Largest single transfer the service accepts: 1 MiB keeps one request
/// from monopolizing a shard's event queue.
pub const MAX_IO_BYTES: u32 = 1 << 20;

/// Which front-door architecture serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// One readiness-driven thread owns every connection socket
    /// (epoll/poll, zero-copy framing, vectored writes). The default.
    EventLoop,
    /// The legacy thread-per-connection core: one reader and one writer
    /// thread per socket, blocking I/O. Kept as the benchmark baseline.
    Threaded,
}

impl std::str::FromStr for CoreKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "epoll" | "event-loop" | "eventloop" => Ok(CoreKind::EventLoop),
            "legacy" | "threaded" | "thread" => Ok(CoreKind::Threaded),
            other => Err(format!("unknown core '{other}' (epoll|legacy)")),
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard workers (simulators).
    pub shards: usize,
    /// Logical capacity served; request offsets are wrapped into it.
    pub capacity_bytes: u64,
    /// Per-shard in-flight cap before `BUSY(queue)`.
    pub inflight_limit: usize,
    /// Per-tenant admitted requests per second; `0` disables limiting.
    pub rate_per_sec: f64,
    /// Token-bucket burst for the rate limit.
    pub burst: f64,
    /// Virtual nanoseconds per wall nanosecond (see [`VirtualClock`]).
    pub time_scale: f64,
    /// Read-retry scheme the simulated SSDs run.
    pub retry: RetryKind,
    /// Wear stage of the simulated flash.
    pub pe_cycles: u32,
    /// NVMe queue depth of each shard's simulator.
    pub queue_depth: usize,
    /// Base RNG seed; shard `i` uses `seed + i`.
    pub seed: u64,
    /// Journal every admitted request in the [`TraceRecorder`] for
    /// capture → replay.
    pub capture: bool,
    /// Front-door architecture (event loop vs. legacy threads).
    pub core: CoreKind,
    /// Open-connection cap; over-limit accepts are answered with a clean
    /// `ERROR(ConnLimit)` frame and closed instead of exhausting fds or
    /// threads. `0` means unlimited.
    pub max_connections: usize,
    /// Per-connection write-queue bytes before new I/O admission sheds
    /// to `BUSY(queue)`; at twice this the loop stops reading from the
    /// connection until the queue drains. `0` means unbounded.
    pub write_queue_limit: usize,
    /// Run the shard simulators with online threshold learning instead
    /// of the oracle characterization tables; per-shard learner state is
    /// exported under `server.learner.*` in STATS.
    pub learn: bool,
    /// Lifetime drift rate for the shard simulators, in extra retention
    /// days per simulated second. `0` (default) disables drift.
    pub drift_days_per_sec: f64,
    /// Run the shard simulators as hybrid SLC/QLC devices (DESIGN §14):
    /// writes land in each die's SLC cache and destage to QLC capacity
    /// through the background scheduler, whose live counters are
    /// exported under `server.bg.*` in STATS.
    pub hybrid: bool,
    /// Run as one node of a cluster: the server starts owning **no**
    /// LBA ranges (every request bounces until the directory's first
    /// MAP_PUSH arrives) and enforces range ownership on admission —
    /// non-owned ranges answer `WRONG_SHARD(epoch)` and migrating ones
    /// `BUSY(moving)` on v3 connections (`BUSY(unavailable)` on older).
    /// In cluster mode `shards` is the *total* range count of the
    /// cluster map, so range indices and shard indices coincide.
    pub cluster: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            capacity_bytes: 8 << 30,
            inflight_limit: 64,
            rate_per_sec: 0.0,
            burst: 0.0,
            time_scale: 20.0,
            retry: RetryKind::Rif,
            pe_cycles: 2000,
            queue_depth: 16,
            seed: 1,
            capture: false,
            core: CoreKind::EventLoop,
            max_connections: 16_384,
            write_queue_limit: 256 << 10,
            learn: false,
            drift_days_per_sec: 0.0,
            hybrid: false,
            cluster: false,
        }
    }
}

/// Ownership of one LBA range on a cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RangeStatus {
    /// This node serves the range.
    Owned,
    /// A handoff is draining: new arrivals bounce with `BUSY(moving)`.
    Moving,
    /// Another node serves the range: arrivals answer `WRONG_SHARD`.
    NotOwned,
    /// This node replicates the range: REPLICATE shipments from the
    /// primary are applied, client *reads* are served (the router's
    /// failover path), and client writes still answer `WRONG_SHARD` —
    /// only the primary may originate writes.
    Following,
}

/// A cluster node's view of the shard map: the directory's last push,
/// plus the per-range ownership the admission gate enforces. The map
/// text is carried verbatim (the node never parses it) so MAP_GET can
/// serve it back to clients without the server depending on the cluster
/// crate's parser.
pub(crate) struct ClusterState {
    pub(crate) epoch: u64,
    pub(crate) map_text: String,
    pub(crate) status: Vec<RangeStatus>,
}

/// Front-door saturation counters, shared by both cores and surfaced in
/// STATS. Plain atomics (not the metrics registry) because the event
/// loop bumps some of them on every wakeup.
#[derive(Debug, Default)]
pub(crate) struct FrontDoor {
    /// Currently open connections (gauge).
    pub(crate) connections_open: AtomicUsize,
    /// Connections accepted since start (counter).
    pub(crate) connections_accepted: AtomicU64,
    /// Accepts refused by the connection limit (counter).
    pub(crate) conn_limit_rejected: AtomicU64,
    /// Times the event loop's poll wait returned (counter). Stays zero
    /// on the threaded core.
    pub(crate) epoll_wakeups: AtomicU64,
    /// Total unflushed response bytes across all connections (gauge,
    /// event-loop core).
    pub(crate) write_queue_bytes: AtomicUsize,
    /// Largest single connection's unflushed response bytes (gauge,
    /// event-loop core).
    pub(crate) write_queue_max_bytes: AtomicUsize,
}

pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) clock: VirtualClock,
    pub(crate) metrics: Arc<Mutex<MetricsRegistry>>,
    pub(crate) buckets: Mutex<TenantBuckets>,
    pub(crate) shards: Vec<ShardTarget>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) started: Instant,
    pub(crate) recorder: Arc<TraceRecorder>,
    pub(crate) front_door: FrontDoor,
    /// `Some` iff [`ServerConfig::cluster`] — the node's map view.
    pub(crate) cluster: Option<Mutex<ClusterState>>,
    /// `Some` iff [`ServerConfig::cluster`] — the primary-side
    /// replication shipper (DESIGN §15).
    pub(crate) repl: Option<Arc<Replicator>>,
}

impl Shared {
    /// Locks the metrics registry, recovering from poisoning: a panic in
    /// some other holder (e.g. an injected worker fault) must not wedge
    /// STATS or admission for everyone else. Counters are monotonic
    /// u64s, so a partially-applied update cannot corrupt the registry.
    pub(crate) fn metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks the tenant buckets with the same poisoned-lock recovery.
    pub(crate) fn buckets(&self) -> std::sync::MutexGuard<'_, TenantBuckets> {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks the cluster state (must only be called in cluster mode),
    /// with the same poisoned-lock recovery.
    pub(crate) fn cluster_state(&self) -> std::sync::MutexGuard<'_, ClusterState> {
        self.cluster
            .as_ref()
            .expect("cluster state accessed outside cluster mode")
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

/// The parts of a shard a connection needs: inbox + admission counter.
pub(crate) struct ShardTarget {
    pub(crate) spec: ShardSpec,
    pub(crate) tx: Sender<ShardMsg>,
    pub(crate) inflight: Arc<AtomicUsize>,
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    shard_handles: Vec<ShardHandle>,
    /// Wakes the event loop out of a blocking poll wait on shutdown
    /// (`None` on the threaded core, which polls the flag instead).
    loop_waker: Option<Waker>,
}

impl Server {
    /// Binds `127.0.0.1:port` (`port = 0` picks a free port) and starts
    /// the shard workers and the acceptor.
    pub fn start(cfg: ServerConfig, port: u16) -> io::Result<Server> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.inflight_limit > 0, "inflight limit must be positive");
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let clock = VirtualClock::start(cfg.time_scale);
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let recorder = Arc::new(TraceRecorder::new(cfg.capture));
        let specs = ShardSpec::partition(cfg.capacity_bytes, cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        let mut targets = Vec::with_capacity(cfg.shards);
        for spec in specs {
            let mut sim_cfg = SsdConfig::small(cfg.retry, cfg.pe_cycles);
            sim_cfg.queue_depth = cfg.queue_depth;
            sim_cfg.seed = cfg.seed + spec.index as u64;
            if cfg.learn {
                sim_cfg.learning =
                    rif_ssd::LearningMode::Learned(rif_ssd::LearnerConfig::default_paper());
            }
            if cfg.drift_days_per_sec > 0.0 {
                sim_cfg.drift = rif_ssd::DriftClock {
                    days_per_sec: cfg.drift_days_per_sec,
                    pe_per_sec: 0.0,
                };
            }
            if cfg.hybrid {
                let mut h = rif_ssd::HybridConfig::slc_qlc();
                // A serving shard destages its SLC cache eagerly (any
                // cached slot starts a drain, like idle-time destaging on
                // real drives) and unconditionally: the reliability gate
                // evaluates worst-case QLC residency, which would defer
                // every migration at high drift rates and leave the cache
                // to fill until forced eviction. The refresh scan is kept
                // small so drift-driven rewrites stay bounded per tick.
                h.migration = rif_ssd::MigrationPolicy::Fifo;
                h.bg.high_watermark = 0.0;
                h.bg.low_watermark = 0.0;
                h.bg.refresh_scan_batch = 8;
                sim_cfg.hybrid = Some(h);
            }
            let (tx, rx) = mpsc::channel();
            let handle = spawn_shard(
                spec,
                sim_cfg,
                clock.clone(),
                Arc::clone(&metrics),
                Arc::clone(&recorder),
                rx,
                tx.clone(),
            )?;
            targets.push(ShardTarget {
                spec,
                tx,
                inflight: Arc::clone(&handle.inflight),
            });
            shard_handles.push(handle);
        }

        let cluster = cfg.cluster.then(|| {
            Mutex::new(ClusterState {
                epoch: 0,
                map_text: String::new(),
                status: vec![RangeStatus::NotOwned; cfg.shards],
            })
        });
        let repl = if cfg.cluster {
            Some(Replicator::start(cfg.shards)?)
        } else {
            None
        };
        let shared = Arc::new(Shared {
            buckets: Mutex::new(TenantBuckets::new(cfg.rate_per_sec, cfg.burst)),
            cfg,
            clock,
            metrics,
            shards: targets,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            recorder,
            front_door: FrontDoor::default(),
            cluster,
            repl,
        });

        let accept_shared = Arc::clone(&shared);
        let (acceptor, loop_waker) = match shared.cfg.core {
            CoreKind::EventLoop => {
                let (waker, waker_rx) = Waker::new()?;
                let loop_waker = waker.clone();
                let handle = std::thread::Builder::new()
                    .name("rif-event-loop".into())
                    .spawn(move || {
                        crate::event_loop::run(listener, accept_shared, waker, waker_rx)
                    })?;
                (handle, Some(loop_waker))
            }
            CoreKind::Threaded => {
                let handle = std::thread::Builder::new()
                    .name("rif-acceptor".into())
                    .spawn(move || accept_loop(listener, accept_shared))?;
                (handle, None)
            }
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            shard_handles,
            loop_waker,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a SHUTDOWN frame has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown from the owning process (same effect as a
    /// SHUTDOWN frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(w) = &self.loop_waker {
            w.wake();
        }
    }

    /// Blocks until shutdown is requested, polling every few ms.
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops accepting, drains every shard, and joins all service
    /// threads.
    pub fn stop(mut self) {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(repl) = &self.shared.repl {
            repl.stop();
        }
        for h in self.shard_handles.drain(..) {
            h.stop();
        }
    }

    /// A snapshot of the metrics registry (for in-process tests).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut m = self.shared.metrics().clone();
        fold_runtime_gauges(&self.shared, &mut m);
        m
    }

    /// Fault-injection hook: kills shard `index`'s worker state mid-load.
    /// In-flight requests on that shard resolve to `ERROR(Internal)`, new
    /// submissions bounce with `BUSY(Unavailable)` for `restart_after`,
    /// then the worker restarts with a fresh simulator. Returns false if
    /// the index is out of range or the worker is already gone.
    pub fn inject_shard_crash(&self, index: usize, restart_after: Duration) -> bool {
        match self.shared.shards.get(index) {
            Some(target) => target.tx.send(ShardMsg::Crash { restart_after }).is_ok(),
            None => false,
        }
    }

    /// Number of shard workers (for harnesses picking a crash target).
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// Hard-kills the whole node, for cluster fault injection: every
    /// shard worker crashes (in-flight requests resolve to
    /// `ERROR(Internal)`, nothing hangs), then the node stops serving.
    /// The directory notices via connection failure and rebalances the
    /// node's ranges away.
    pub fn kill(self) {
        for i in 0..self.shard_count() {
            self.inject_shard_crash(i, Duration::from_secs(3600));
        }
        self.stop();
    }

    /// The request journal (empty unless [`ServerConfig::capture`] was
    /// set). Clone the `Arc` before `stop()` to snapshot the capture
    /// after drain.
    pub fn recorder(&self) -> Arc<TraceRecorder> {
        Arc::clone(&self.shared.recorder)
    }
}

/// Answers an over-limit accept: a best-effort `ERROR(ConnLimit)` frame
/// so the peer knows why, then a close. Shared by both cores.
pub(crate) fn refuse_over_limit(mut stream: TcpStream, shared: &Shared) {
    shared
        .front_door
        .conn_limit_rejected
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics().inc("server.conn_limit_rejected", 1);
    stream
        .set_write_timeout(Some(Duration::from_millis(50)))
        .ok();
    let _ = write_frame(
        &mut stream,
        &encode_response(&Response::Error {
            tag: 0,
            code: ErrorCode::ConnLimit,
        }),
    );
}

/// True when accepting one more connection would exceed the limit.
pub(crate) fn at_conn_limit(shared: &Shared) -> bool {
    let limit = shared.cfg.max_connections;
    limit > 0 && shared.front_door.connections_open.load(Ordering::Acquire) >= limit
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if at_conn_limit(&shared) {
                    refuse_over_limit(stream, &shared);
                    continue;
                }
                shared
                    .front_door
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .front_door
                    .connections_open
                    .fetch_add(1, Ordering::AcqRel);
                let conn_shared = Arc::clone(&shared);
                let spawned =
                    std::thread::Builder::new()
                        .name("rif-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, &conn_shared);
                            conn_shared
                                .front_door
                                .connections_open
                                .fetch_sub(1, Ordering::AcqRel);
                        });
                match spawned {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        // Thread exhaustion must not take down the
                        // acceptor: drop this connection (the peer sees a
                        // clean close) and keep serving.
                        shared.metrics().inc("server.spawn_failures", 1);
                        shared
                            .front_door
                            .connections_open
                            .fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Reader half of one connection. The writer half lives on its own
/// thread and exits when every `Sender<Response>` clone is dropped —
/// including those held by in-flight shard submissions.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let write_stream = stream.try_clone()?;
    let (resp_tx, resp_rx) = mpsc::channel::<Response>();
    // A failed writer spawn propagates as io::Error: the connection is
    // dropped cleanly instead of panicking the reader thread.
    let writer = std::thread::Builder::new()
        .name("rif-conn-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_stream);
            while let Ok(resp) = resp_rx.recv() {
                if write_frame(&mut w, &encode_response(&resp)).is_err() {
                    break;
                }
            }
        })?;

    let reply = ReplyTo::Channel(resp_tx.clone());
    let mut r = BufReader::new(stream);
    let mut saw_goodbye = false;
    // Protocol version this connection speaks; starts at the v1 baseline
    // until the peer negotiates up with HELLO.
    let mut negotiated: u32 = 1;
    while let Some(payload) = read_frame(&mut r)? {
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(_) => {
                shared.metrics().inc("server.protocol_errors", 1);
                // The frame boundary survived (length-prefixed), so the
                // stream stays usable; tag 0 because none decoded.
                reply.send(Response::Error {
                    tag: 0,
                    code: ErrorCode::BadRequest,
                });
                continue;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown { .. });
        handle_request(req, shared, &reply, &mut negotiated);
        if is_shutdown {
            saw_goodbye = true;
            break;
        }
    }
    drop(reply);
    drop(resp_tx);
    let _ = writer.join();
    if saw_goodbye {
        shared.shutdown.store(true, Ordering::Release);
    }
    Ok(())
}

fn handle_request(req: Request, shared: &Shared, reply: &ReplyTo, negotiated: &mut u32) {
    match req {
        Request::Read {
            tenant,
            tag,
            offset,
            bytes,
        } => admit_io(
            shared,
            reply,
            tenant,
            tag,
            offset,
            bytes,
            IoOp::Read,
            0,
            *negotiated,
        ),
        Request::Write {
            tenant,
            tag,
            offset,
            bytes,
        } => admit_io(
            shared,
            reply,
            tenant,
            tag,
            offset,
            bytes,
            IoOp::Write,
            0,
            *negotiated,
        ),
        Request::Hello { tag, version } => {
            *negotiated = version.min(PROTOCOL_VERSION).max(1);
            reply.send(Response::HelloAck {
                tag,
                version: *negotiated,
            });
        }
        Request::Batch(entries) => {
            if *negotiated < 2 {
                reject_unnegotiated_batch(shared, reply, entries.first().map_or(0, |e| e.tag));
                return;
            }
            admit_batch(shared, reply, entries, *negotiated);
        }
        Request::MapGet { tag } => {
            let (epoch, text) = match &shared.cluster {
                Some(_) => {
                    let cl = shared.cluster_state();
                    (cl.epoch, cl.map_text.clone())
                }
                None => (0, String::new()),
            };
            reply.send(Response::MapResp { tag, epoch, text });
        }
        Request::MapPush {
            tag,
            epoch,
            capacity_bytes,
            ranges,
            owned,
            followed,
            replicas,
            map_text,
        } => {
            handle_map_push(
                shared,
                reply,
                tag,
                epoch,
                capacity_bytes,
                ranges,
                &owned,
                &followed,
                &replicas,
                map_text,
            );
        }
        Request::MigrateOut { tag, range } => {
            // The threaded core blocks the connection's reader thread for
            // the drain, exactly like Flush; the event loop offloads to an
            // ephemeral thread before calling this.
            handle_migrate_out(shared, reply, tag, range);
        }
        Request::MigrateIn { tag, range, state } => {
            handle_migrate_in(shared, reply, tag, range, state);
        }
        Request::Migrate { tag, .. } => {
            // A node never orchestrates: MIGRATE is a directory-only
            // operation.
            shared.metrics().inc("server.protocol_errors", 1);
            reply.send(Response::Error {
                tag,
                code: ErrorCode::BadRequest,
            });
        }
        Request::Replicate {
            tag,
            range,
            epoch,
            seq,
            tenant,
            offset,
            bytes,
        } => {
            handle_replicate(shared, reply, tag, range, epoch, seq, tenant, offset, bytes);
        }
        Request::Stats { tag } => {
            let text = render_stats(shared);
            reply.send(Response::Stats { tag, text });
        }
        Request::Flush { tag } => {
            let (done_tx, done_rx) = mpsc::channel();
            for s in &shared.shards {
                let _ = s.tx.send(ShardMsg::Flush(done_tx.clone()));
            }
            drop(done_tx);
            // Workers ack after force-draining; a crashed worker shows up
            // as a disconnect, which also ends the wait.
            while done_rx.recv().is_ok() {}
            reply.send(Response::Flushed { tag });
        }
        Request::Shutdown { tag } => {
            reply.send(Response::Goodbye { tag });
        }
    }
}

/// Rejects a BATCH sent before (or without) HELLO: a v2-only message on
/// a v1 connection, refused whole by its first tag.
pub(crate) fn reject_unnegotiated_batch(shared: &Shared, reply: &ReplyTo, tag: u64) {
    shared.metrics().inc("server.protocol_errors", 1);
    reply.send(Response::Error {
        tag,
        code: ErrorCode::BadRequest,
    });
}

/// Handles MAP_PUSH: installs a newer map's ownership (owned ranges
/// serve, followed ranges apply REPLICATE and serve failover reads) and
/// the replication shipping targets, or acks an equal/older epoch
/// idempotently without touching state (directory retries are harmless).
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_map_push(
    shared: &Shared,
    reply: &ReplyTo,
    tag: u64,
    epoch: u64,
    capacity_bytes: u64,
    ranges: u32,
    owned: &[u32],
    followed: &[u32],
    replicas: &[(u32, String)],
    map_text: String,
) {
    let bad = shared.cluster.is_none()
        || capacity_bytes != shared.cfg.capacity_bytes
        || ranges as usize != shared.cfg.shards
        || owned.iter().any(|&r| r as usize >= shared.cfg.shards)
        || followed.iter().any(|&r| r as usize >= shared.cfg.shards)
        || replicas
            .iter()
            .any(|&(r, _)| r as usize >= shared.cfg.shards);
    if bad {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadRequest,
        });
        return;
    }
    let (cur_epoch, text) = {
        let mut cl = shared.cluster_state();
        if epoch > cl.epoch {
            cl.epoch = epoch;
            cl.map_text = map_text;
            // A push settles every range: Moving survives only within an
            // epoch, never across one. Owned wins over Following if the
            // directory ever lists a range as both.
            for s in cl.status.iter_mut() {
                *s = RangeStatus::NotOwned;
            }
            for &r in followed {
                cl.status[r as usize] = RangeStatus::Following;
            }
            for &r in owned {
                cl.status[r as usize] = RangeStatus::Owned;
            }
            if let Some(repl) = &shared.repl {
                repl.update_targets(epoch, replicas);
            }
        }
        (cl.epoch, cl.map_text.clone())
    };
    shared.metrics().inc("server.map_pushes", 1);
    reply.send(Response::MapResp {
        tag,
        epoch: cur_epoch,
        text,
    });
}

/// Handles a primary's REPLICATE shipment on a follower: applies the
/// write to the range's shard and acks with `REPL_ACK(range, seq)` via
/// the [`ReplyTo::Replication`] wrapper. Shipments skip the recorder
/// and the tenant rate limiter — they are internal traffic mirroring a
/// write the primary already admitted, journaled, and charged.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_replicate(
    shared: &Shared,
    reply: &ReplyTo,
    tag: u64,
    range: u32,
    epoch: u64,
    seq: u64,
    tenant: u32,
    offset: u64,
    bytes: u32,
) {
    let _ = tenant;
    if shared.shutdown.load(Ordering::Acquire) {
        reply.send(Response::Error {
            tag,
            code: ErrorCode::ShuttingDown,
        });
        return;
    }
    if shared.cluster.is_none() || range as usize >= shared.cfg.shards {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadRequest,
        });
        return;
    }
    if bytes == 0 || bytes > MAX_IO_BYTES {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadLength,
        });
        return;
    }
    let wrapped = offset % shared.cfg.capacity_bytes;
    let idx = ShardSpec::route(shared.cfg.capacity_bytes, shared.cfg.shards, wrapped);
    if idx != range as usize {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadRequest,
        });
        return;
    }
    let (status, cur_epoch) = {
        let cl = shared.cluster_state();
        (cl.status[idx], cl.epoch)
    };
    // A stale primary (shipping under an epoch this node has already
    // moved past) is told to refetch; a primary *ahead* of us is fine —
    // its directory push is merely still in flight to this node.
    let stale = epoch < cur_epoch;
    if stale || !matches!(status, RangeStatus::Following | RangeStatus::Owned) {
        if status == RangeStatus::Moving && !stale {
            shared.metrics().inc("server.busy.moving", 1);
            reply.send(Response::Busy {
                tag,
                reason: BusyReason::Moving,
            });
        } else {
            shared.metrics().inc("server.wrong_shard", 1);
            reply.send(Response::WrongShard {
                tag,
                epoch: cur_epoch,
            });
        }
        return;
    }
    let target = &shared.shards[idx];
    let local = wrapped - target.spec.base_offset;
    let reserved = target
        .inflight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < shared.cfg.inflight_limit).then_some(n + 1)
        });
    if reserved.is_err() {
        shared.metrics().inc("server.busy.queue", 1);
        reply.send(Response::Busy {
            tag,
            reason: BusyReason::Queue,
        });
        return;
    }
    shared.metrics().inc("server.repl.applied", 1);
    let sent = target.tx.send(ShardMsg::Submit(Submission {
        tag,
        op: IoOp::Write,
        offset: local,
        bytes,
        reply: ReplyTo::Replication {
            inner: Box::new(reply.clone()),
            range,
            seq,
        },
    }));
    if sent.is_err() {
        target.inflight.fetch_sub(1, Ordering::AcqRel);
        if shared.shutdown.load(Ordering::Acquire) {
            reply.send(Response::Error {
                tag,
                code: ErrorCode::ShuttingDown,
            });
        } else {
            shared.metrics().inc("server.busy.unavailable", 1);
            reply.send(Response::Busy {
                tag,
                reason: BusyReason::Unavailable,
            });
        }
    }
}

/// Handles MIGRATE_OUT: seals the range (new arrivals bounce with
/// `BUSY(moving)` from this point on), drains the shard, and replies
/// with the learner snapshot. Blocks until the drain completes — the
/// event loop calls this from an ephemeral thread.
pub(crate) fn handle_migrate_out(shared: &Shared, reply: &ReplyTo, tag: u64, range: u32) {
    if shared.cluster.is_none() || range as usize >= shared.cfg.shards {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadRequest,
        });
        return;
    }
    // Seal strictly before the Yield is queued: everything admitted
    // earlier is already in the worker's channel ahead of the Yield, so
    // the drain covers it; everything later bounces at admission.
    shared.cluster_state().status[range as usize] = RangeStatus::Moving;
    shared.metrics().inc("server.migrations.out", 1);
    let (state_tx, state_rx) = mpsc::channel();
    let sent = shared.shards[range as usize]
        .tx
        .send(ShardMsg::Yield(state_tx));
    let state = match sent {
        Ok(()) => state_rx.recv().unwrap_or_default(),
        // Worker gone (stopping node): hand off without a snapshot —
        // the learner state is a performance hint, the seal above is
        // what correctness needs.
        Err(_) => String::new(),
    };
    reply.send(Response::Migrated { tag, range, state });
}

/// Handles MIGRATE_IN: seeds the range's learner from the transferred
/// snapshot and acks. Ownership itself arrives with the directory's
/// subsequent MAP_PUSH, never here.
pub(crate) fn handle_migrate_in(
    shared: &Shared,
    reply: &ReplyTo,
    tag: u64,
    range: u32,
    state: String,
) {
    if shared.cluster.is_none() || range as usize >= shared.cfg.shards {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadRequest,
        });
        return;
    }
    shared.metrics().inc("server.migrations.in", 1);
    let (ack_tx, ack_rx) = mpsc::channel();
    let sent = shared.shards[range as usize]
        .tx
        .send(ShardMsg::Adopt { state, ack: ack_tx });
    if sent.is_ok() {
        let _ = ack_rx.recv();
    }
    reply.send(Response::Migrated {
        tag,
        range,
        state: String::new(),
    });
}

/// Cluster admission gate: answers `true` when this node currently owns
/// the range `offset` routes to (or when not in cluster mode). A
/// non-owned range refuses with `WRONG_SHARD(epoch)` so the client
/// refetches the map; a migrating range refuses with `BUSY(moving)`.
/// A *followed* range admits reads (the router's failover path reads
/// from replicas) but bounces writes — only the primary may originate
/// a write, or exactly-once and the replication stream fall apart.
/// Connections below v3 get `BUSY(unavailable)` instead — same
/// never-admitted guarantee, spelled in a vocabulary they know.
fn cluster_admits(
    shared: &Shared,
    reply: &ReplyTo,
    tag: u64,
    offset: u64,
    op: IoOp,
    negotiated: u32,
) -> bool {
    if shared.cluster.is_none() {
        return true;
    }
    let wrapped = offset % shared.cfg.capacity_bytes;
    let idx = ShardSpec::route(shared.cfg.capacity_bytes, shared.cfg.shards, wrapped);
    let (status, epoch) = {
        let cl = shared.cluster_state();
        (cl.status[idx], cl.epoch)
    };
    match status {
        RangeStatus::Owned => true,
        RangeStatus::Following if op == IoOp::Read => {
            shared.metrics().inc("server.repl.follower_reads", 1);
            true
        }
        RangeStatus::Moving => {
            shared.metrics().inc("server.busy.moving", 1);
            reply.send(Response::Busy {
                tag,
                reason: if negotiated >= 3 {
                    BusyReason::Moving
                } else {
                    BusyReason::Unavailable
                },
            });
            false
        }
        RangeStatus::NotOwned | RangeStatus::Following => {
            shared.metrics().inc("server.wrong_shard", 1);
            if negotiated >= 3 {
                reply.send(Response::WrongShard { tag, epoch });
            } else {
                reply.send(Response::Busy {
                    tag,
                    reason: BusyReason::Unavailable,
                });
            }
            false
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn admit_io(
    shared: &Shared,
    reply: &ReplyTo,
    tenant: u32,
    tag: u64,
    offset: u64,
    bytes: u32,
    op: IoOp,
    retry_of: u64,
    negotiated: u32,
) {
    if shared.shutdown.load(Ordering::Acquire) {
        reply.send(Response::Error {
            tag,
            code: ErrorCode::ShuttingDown,
        });
        return;
    }
    if bytes == 0 || bytes > MAX_IO_BYTES {
        shared.metrics().inc("server.protocol_errors", 1);
        reply.send(Response::Error {
            tag,
            code: ErrorCode::BadLength,
        });
        return;
    }
    if !cluster_admits(shared, reply, tag, offset, op, negotiated) {
        return;
    }

    {
        let mut m = shared.metrics();
        m.inc(
            if op == IoOp::Read {
                "server.requests.read"
            } else {
                "server.requests.write"
            },
            1,
        );
    }

    // Rate limit first: a rejected request must not consume queue budget.
    let wall_secs = shared.started.elapsed().as_secs_f64();
    let admitted = shared.buckets().admit(tenant, wall_secs);
    if !admitted {
        shared.metrics().inc("server.busy.ratelimit", 1);
        reply.send(Response::Busy {
            tag,
            reason: BusyReason::RateLimit,
        });
        return;
    }

    // Route: wrap into capacity, pick the shard, rebase into its local
    // dense LBA space, and align down to the simulator's page grid.
    let wrapped = offset % shared.cfg.capacity_bytes;
    let idx = ShardSpec::route(shared.cfg.capacity_bytes, shared.cfg.shards, wrapped);
    let target = &shared.shards[idx];
    let local = wrapped - target.spec.base_offset;

    // Queue backpressure: reserve an in-flight slot or refuse.
    let reserved = target
        .inflight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < shared.cfg.inflight_limit).then_some(n + 1)
        });
    if reserved.is_err() {
        shared.metrics().inc("server.busy.queue", 1);
        reply.send(Response::Busy {
            tag,
            reason: BusyReason::Queue,
        });
        return;
    }

    // Journal the admission with the *wrapped* global offset — a replay
    // through a same-shaped server routes it identically — and do it
    // BEFORE handing the submission to the worker: the worker's
    // reject/complete for this tag must never race ahead of its
    // admission, or the record sticks half-written.
    shared
        .recorder
        .admit(tag, retry_of, op, wrapped, bytes, tenant, idx as u32);
    let sent = target.tx.send(ShardMsg::Submit(Submission {
        tag,
        op,
        offset: local,
        bytes,
        reply: reply.clone(),
    }));
    if sent.is_ok() {
        // Admitted for real: offer writes to the replication shipper
        // (no-op unless this node is the range's primary with
        // followers).
        if op == IoOp::Write {
            if let Some(repl) = &shared.repl {
                repl.offer(idx as u32, tenant, wrapped, bytes);
            }
        }
    } else {
        // The worker never saw it: retract the admission.
        shared.recorder.reject(tag);
        // Worker channel gone: release the slot and report. During
        // shutdown that is expected; otherwise the worker thread itself
        // died, which is retryable — the request was never admitted.
        target.inflight.fetch_sub(1, Ordering::AcqRel);
        if shared.shutdown.load(Ordering::Acquire) {
            reply.send(Response::Error {
                tag,
                code: ErrorCode::ShuttingDown,
            });
        } else {
            shared.metrics().inc("server.busy.unavailable", 1);
            reply.send(Response::Busy {
                tag,
                reason: BusyReason::Unavailable,
            });
        }
    }
}

/// Admits a negotiated BATCH as **one unit**. The contract (shared by
/// both cores) is all-or-nothing for every admission check:
///
/// - each tenant's token bucket is charged once for all of its entries
///   (`admit_n`); if any tenant comes up short, tenants already charged
///   are refunded and every entry answers `BUSY(rate_limit)`;
/// - the in-flight cap is reserved per shard for the whole group; if any
///   shard cannot take its share, reservations made so far are rolled
///   back and every entry answers `BUSY(queue)` (rate-limit tokens stay
///   spent, exactly as a refused single request's token does);
/// - admitted entries go to each shard as one [`ShardMsg::SubmitMany`].
///
/// Malformed entries (zero/oversized length) are answered individually
/// with `ERROR(BadLength)` and do not count against the batch — they
/// could never be admitted, so they cannot hold the rest hostage.
pub(crate) fn admit_batch<I>(shared: &Shared, reply: &ReplyTo, entries: I, negotiated: u32)
where
    I: IntoIterator<Item = BatchEntry>,
{
    shared.metrics().inc("server.batches", 1);
    if shared.shutdown.load(Ordering::Acquire) {
        for e in entries {
            reply.send(Response::Error {
                tag: e.tag,
                code: ErrorCode::ShuttingDown,
            });
        }
        return;
    }

    // Pass 1: validate and route. `valid` keeps (entry, shard, local
    // offset) for everything admissible.
    let mut valid: Vec<(BatchEntry, usize, u64)> = Vec::new();
    let (mut reads, mut writes, mut bad) = (0u64, 0u64, 0u64);
    for e in entries {
        if e.bytes == 0 || e.bytes > MAX_IO_BYTES {
            bad += 1;
            reply.send(Response::Error {
                tag: e.tag,
                code: ErrorCode::BadLength,
            });
            continue;
        }
        // The cluster gate refuses per entry, like BadLength: a stray
        // entry for a moved range must not hold the batch hostage.
        if !cluster_admits(shared, reply, e.tag, e.offset, e.op, negotiated) {
            continue;
        }
        if e.op == IoOp::Read {
            reads += 1;
        } else {
            writes += 1;
        }
        let wrapped = e.offset % shared.cfg.capacity_bytes;
        let idx = ShardSpec::route(shared.cfg.capacity_bytes, shared.cfg.shards, wrapped);
        let local = wrapped - shared.shards[idx].spec.base_offset;
        valid.push((e, idx, local));
    }
    {
        let mut m = shared.metrics();
        if bad > 0 {
            m.inc("server.protocol_errors", bad);
        }
        if reads > 0 {
            m.inc("server.requests.read", reads);
        }
        if writes > 0 {
            m.inc("server.requests.write", writes);
        }
    }
    if valid.is_empty() {
        return;
    }

    // Per-tenant entry counts (a batch rarely spans many tenants, so a
    // small vec beats a map).
    let mut tenants: Vec<(u32, u32)> = Vec::new();
    for (e, _, _) in &valid {
        match tenants.iter_mut().find(|(t, _)| *t == e.tenant) {
            Some((_, n)) => *n += 1,
            None => tenants.push((e.tenant, 1)),
        }
    }

    // Rate limit: charge every tenant for its whole share or nobody.
    let wall_secs = shared.started.elapsed().as_secs_f64();
    {
        let mut buckets = shared.buckets();
        if !buckets.unlimited() {
            let mut short = None;
            for (i, (t, n)) in tenants.iter().enumerate() {
                if !buckets.admit_n(*t, wall_secs, *n) {
                    short = Some(i);
                    break;
                }
            }
            if let Some(charged) = short {
                // Same `wall_secs`, so the rollback is exact.
                for (t, n) in &tenants[..charged] {
                    buckets.refund(*t, *n);
                }
                drop(buckets);
                shared
                    .metrics()
                    .inc("server.busy.ratelimit", valid.len() as u64);
                for (e, _, _) in &valid {
                    reply.send(Response::Busy {
                        tag: e.tag,
                        reason: BusyReason::RateLimit,
                    });
                }
                return;
            }
        }
    }

    // In-flight cap: reserve each shard's share of slots as one atomic
    // update; on any refusal, roll back every reservation made so far.
    let mut per_shard: Vec<(usize, usize)> = Vec::new();
    for (_, idx, _) in &valid {
        match per_shard.iter_mut().find(|(i, _)| i == idx) {
            Some((_, k)) => *k += 1,
            None => per_shard.push((*idx, 1)),
        }
    }
    let mut reserved = 0;
    let all_reserved = per_shard.iter().all(|&(idx, k)| {
        let ok = shared.shards[idx]
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n + k <= shared.cfg.inflight_limit).then_some(n + k)
            })
            .is_ok();
        if ok {
            reserved += 1;
        }
        ok
    });
    if !all_reserved {
        for &(idx, k) in &per_shard[..reserved] {
            shared.shards[idx].inflight.fetch_sub(k, Ordering::AcqRel);
        }
        shared
            .metrics()
            .inc("server.busy.queue", valid.len() as u64);
        for (e, _, _) in &valid {
            reply.send(Response::Busy {
                tag: e.tag,
                reason: BusyReason::Queue,
            });
        }
        return;
    }

    // Admitted. Journal every entry (admit strictly before the worker
    // can see it), then hand each shard its whole share in one message.
    let mut groups: Vec<(usize, Vec<Submission>)> = per_shard
        .iter()
        .map(|&(idx, k)| (idx, Vec::with_capacity(k)))
        .collect();
    for (e, idx, local) in &valid {
        let wrapped = e.offset % shared.cfg.capacity_bytes;
        shared.recorder.admit(
            e.tag,
            e.retry_of,
            e.op,
            wrapped,
            e.bytes,
            e.tenant,
            *idx as u32,
        );
        let g = groups
            .iter_mut()
            .find(|(i, _)| i == idx)
            .expect("group exists for every routed shard");
        g.1.push(Submission {
            tag: e.tag,
            op: e.op,
            offset: *local,
            bytes: e.bytes,
            reply: reply.clone(),
        });
    }
    // Writes to offer to the replication shipper per shard, mirrored
    // from `valid` so a failed SubmitMany ships nothing for its group.
    let mut offers: Vec<(usize, u32, u64, u32)> = Vec::new();
    if shared.repl.is_some() {
        for (e, idx, _) in &valid {
            if e.op == IoOp::Write {
                offers.push((
                    *idx,
                    e.tenant,
                    e.offset % shared.cfg.capacity_bytes,
                    e.bytes,
                ));
            }
        }
    }
    for (idx, batch) in groups {
        let k = batch.len();
        match shared.shards[idx].tx.send(ShardMsg::SubmitMany(batch)) {
            Ok(()) => {
                if let Some(repl) = &shared.repl {
                    for &(oidx, tenant, wrapped, bytes) in &offers {
                        if oidx == idx {
                            repl.offer(idx as u32, tenant, wrapped, bytes);
                        }
                    }
                }
            }
            Err(mpsc::SendError(msg)) => {
                // The worker never saw the group: retract the admissions,
                // release the slots, and answer every entry.
                let batch = match msg {
                    ShardMsg::SubmitMany(b) => b,
                    _ => unreachable!("send returns the message it took"),
                };
                shared.shards[idx].inflight.fetch_sub(k, Ordering::AcqRel);
                let shutting = shared.shutdown.load(Ordering::Acquire);
                if !shutting {
                    shared.metrics().inc("server.busy.unavailable", k as u64);
                }
                for s in batch {
                    shared.recorder.reject(s.tag);
                    if shutting {
                        s.reply.send(Response::Error {
                            tag: s.tag,
                            code: ErrorCode::ShuttingDown,
                        });
                    } else {
                        s.reply.send(Response::Busy {
                            tag: s.tag,
                            reason: BusyReason::Unavailable,
                        });
                    }
                }
            }
        }
    }
}

/// Folds live runtime state (shard windows, front-door saturation,
/// clocks) into a registry snapshot. Shared by the STATS renderer and
/// [`Server::metrics_snapshot`] so in-process tests see the same view a
/// wire client does.
pub(crate) fn fold_runtime_gauges(shared: &Shared, m: &mut MetricsRegistry) {
    for s in &shared.shards {
        m.set_gauge(
            &format!("server.inflight.shard{}", s.spec.index),
            s.inflight.load(Ordering::Acquire) as f64,
        );
    }
    let fd = &shared.front_door;
    m.set_gauge(
        "server.connections_open",
        fd.connections_open.load(Ordering::Acquire) as f64,
    );
    m.inc(
        "server.connections_accepted",
        fd.connections_accepted.load(Ordering::Relaxed),
    );
    m.inc(
        "server.epoll_wakeups",
        fd.epoll_wakeups.load(Ordering::Relaxed),
    );
    m.set_gauge(
        "server.write_queue.total_bytes",
        fd.write_queue_bytes.load(Ordering::Acquire) as f64,
    );
    m.set_gauge(
        "server.write_queue.max_bytes",
        fd.write_queue_max_bytes.load(Ordering::Acquire) as f64,
    );
    m.set_gauge("server.uptime_secs", shared.started.elapsed().as_secs_f64());
    m.set_gauge("server.virtual_now_us", shared.clock.now().as_us());
    if let Some(repl) = &shared.repl {
        let c = &repl.counters;
        m.inc("server.repl.shipped", c.shipped.load(Ordering::Relaxed));
        m.inc("server.repl.acked", c.acked.load(Ordering::Relaxed));
        m.inc("server.repl.skipped", c.skipped.load(Ordering::Relaxed));
        m.inc("server.repl.failed", c.failed.load(Ordering::Relaxed));
        for r in 0..repl.shards() {
            m.set_gauge(
                &format!("server.repl.watermark.range{r}"),
                repl.watermark(r) as f64,
            );
        }
    }
}

pub(crate) fn render_stats(shared: &Shared) -> String {
    let mut m = shared.metrics().clone();
    fold_runtime_gauges(shared, &mut m);
    m.lines().join("\n")
}
