//! The loopback TCP storage service.
//!
//! One acceptor thread hands each connection a reader thread (decodes
//! frames, runs admission control, routes to shards) and a writer thread
//! (serializes every [`Response`] arriving on the connection's mpsc
//! channel). Shard workers answer completions straight onto that channel,
//! so responses from different shards interleave freely and may be out of
//! submission order — the tag is the correlation key.
//!
//! Admission happens before a request ever reaches a simulator:
//!
//! 1. **Queue backpressure** — each shard exposes an atomic in-flight
//!    count; if the target shard is at `inflight_limit`, the server
//!    answers `BUSY(queue)` immediately instead of queueing unboundedly.
//! 2. **Rate limiting** — a per-tenant token bucket; an empty bucket
//!    answers `BUSY(rate_limit)`.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rif_events::trace::MetricsRegistry;
use rif_ssd::{RetryKind, SsdConfig};
use rif_workloads::IoOp;

use crate::bucket::TenantBuckets;
use crate::pacing::VirtualClock;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, BusyReason, ErrorCode, Request,
    Response, PROTOCOL_VERSION,
};
use crate::recorder::TraceRecorder;
use crate::shard::{spawn_shard, ShardHandle, ShardMsg, ShardSpec, Submission};

/// Largest single transfer the service accepts: 1 MiB keeps one request
/// from monopolizing a shard's event queue.
pub const MAX_IO_BYTES: u32 = 1 << 20;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard workers (simulators).
    pub shards: usize,
    /// Logical capacity served; request offsets are wrapped into it.
    pub capacity_bytes: u64,
    /// Per-shard in-flight cap before `BUSY(queue)`.
    pub inflight_limit: usize,
    /// Per-tenant admitted requests per second; `0` disables limiting.
    pub rate_per_sec: f64,
    /// Token-bucket burst for the rate limit.
    pub burst: f64,
    /// Virtual nanoseconds per wall nanosecond (see [`VirtualClock`]).
    pub time_scale: f64,
    /// Read-retry scheme the simulated SSDs run.
    pub retry: RetryKind,
    /// Wear stage of the simulated flash.
    pub pe_cycles: u32,
    /// NVMe queue depth of each shard's simulator.
    pub queue_depth: usize,
    /// Base RNG seed; shard `i` uses `seed + i`.
    pub seed: u64,
    /// Journal every admitted request in the [`TraceRecorder`] for
    /// capture → replay.
    pub capture: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 2,
            capacity_bytes: 8 << 30,
            inflight_limit: 64,
            rate_per_sec: 0.0,
            burst: 0.0,
            time_scale: 20.0,
            retry: RetryKind::Rif,
            pe_cycles: 2000,
            queue_depth: 16,
            seed: 1,
            capture: false,
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    clock: VirtualClock,
    metrics: Arc<Mutex<MetricsRegistry>>,
    buckets: Mutex<TenantBuckets>,
    shards: Vec<ShardTarget>,
    shutdown: AtomicBool,
    started: Instant,
    recorder: Arc<TraceRecorder>,
}

impl Shared {
    /// Locks the metrics registry, recovering from poisoning: a panic in
    /// some other holder (e.g. an injected worker fault) must not wedge
    /// STATS or admission for everyone else. Counters are monotonic
    /// u64s, so a partially-applied update cannot corrupt the registry.
    fn metrics(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Locks the tenant buckets with the same poisoned-lock recovery.
    fn buckets(&self) -> std::sync::MutexGuard<'_, TenantBuckets> {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The parts of a shard a connection needs: inbox + admission counter.
struct ShardTarget {
    spec: ShardSpec,
    tx: Sender<ShardMsg>,
    inflight: Arc<std::sync::atomic::AtomicUsize>,
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    shard_handles: Vec<ShardHandle>,
}

impl Server {
    /// Binds `127.0.0.1:port` (`port = 0` picks a free port) and starts
    /// the shard workers and the acceptor.
    pub fn start(cfg: ServerConfig, port: u16) -> io::Result<Server> {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.inflight_limit > 0, "inflight limit must be positive");
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let clock = VirtualClock::start(cfg.time_scale);
        let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
        let recorder = Arc::new(TraceRecorder::new(cfg.capture));
        let specs = ShardSpec::partition(cfg.capacity_bytes, cfg.shards);
        let mut shard_handles = Vec::with_capacity(cfg.shards);
        let mut targets = Vec::with_capacity(cfg.shards);
        for spec in specs {
            let mut sim_cfg = SsdConfig::small(cfg.retry, cfg.pe_cycles);
            sim_cfg.queue_depth = cfg.queue_depth;
            sim_cfg.seed = cfg.seed + spec.index as u64;
            let (tx, rx) = mpsc::channel();
            let handle = spawn_shard(
                spec,
                sim_cfg,
                clock.clone(),
                Arc::clone(&metrics),
                Arc::clone(&recorder),
                rx,
                tx.clone(),
            )?;
            targets.push(ShardTarget {
                spec,
                tx,
                inflight: Arc::clone(&handle.inflight),
            });
            shard_handles.push(handle);
        }

        let shared = Arc::new(Shared {
            buckets: Mutex::new(TenantBuckets::new(cfg.rate_per_sec, cfg.burst)),
            cfg,
            clock,
            metrics,
            shards: targets,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            recorder,
        });

        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("rif-acceptor".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            shard_handles,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a SHUTDOWN frame has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown from the owning process (same effect as a
    /// SHUTDOWN frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until shutdown is requested, polling every few ms.
    pub fn wait_for_shutdown(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Stops accepting, drains every shard, and joins all service
    /// threads.
    pub fn stop(mut self) {
        self.request_shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for h in self.shard_handles.drain(..) {
            h.stop();
        }
    }

    /// A snapshot of the metrics registry (for in-process tests).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.shared.metrics().clone()
    }

    /// Fault-injection hook: kills shard `index`'s worker state mid-load.
    /// In-flight requests on that shard resolve to `ERROR(Internal)`, new
    /// submissions bounce with `BUSY(Unavailable)` for `restart_after`,
    /// then the worker restarts with a fresh simulator. Returns false if
    /// the index is out of range or the worker is already gone.
    pub fn inject_shard_crash(&self, index: usize, restart_after: Duration) -> bool {
        match self.shared.shards.get(index) {
            Some(target) => target.tx.send(ShardMsg::Crash { restart_after }).is_ok(),
            None => false,
        }
    }

    /// Number of shard workers (for harnesses picking a crash target).
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The request journal (empty unless [`ServerConfig::capture`] was
    /// set). Clone the `Arc` before `stop()` to snapshot the capture
    /// after drain.
    pub fn recorder(&self) -> Arc<TraceRecorder> {
        Arc::clone(&self.shared.recorder)
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(&shared);
                let spawned =
                    std::thread::Builder::new()
                        .name("rif-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, conn_shared);
                        });
                match spawned {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        // Thread exhaustion must not take down the
                        // acceptor: drop this connection (the peer sees a
                        // clean close) and keep serving.
                        shared.metrics().inc("server.spawn_failures", 1);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Reader half of one connection. The writer half lives on its own
/// thread and exits when every `Sender<Response>` clone is dropped —
/// including those held by in-flight shard submissions.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let write_stream = stream.try_clone()?;
    let (resp_tx, resp_rx) = mpsc::channel::<Response>();
    // A failed writer spawn propagates as io::Error: the connection is
    // dropped cleanly instead of panicking the reader thread.
    let writer = std::thread::Builder::new()
        .name("rif-conn-writer".into())
        .spawn(move || {
            let mut w = BufWriter::new(write_stream);
            while let Ok(resp) = resp_rx.recv() {
                if write_frame(&mut w, &encode_response(&resp)).is_err() {
                    break;
                }
            }
        })?;

    let mut r = BufReader::new(stream);
    let mut saw_goodbye = false;
    // Protocol version this connection speaks; starts at the v1 baseline
    // until the peer negotiates up with HELLO.
    let mut negotiated: u32 = 1;
    while let Some(payload) = read_frame(&mut r)? {
        let req = match decode_request(&payload) {
            Ok(req) => req,
            Err(_) => {
                shared.metrics().inc("server.protocol_errors", 1);
                // The frame boundary survived (length-prefixed), so the
                // stream stays usable; tag 0 because none decoded.
                let _ = resp_tx.send(Response::Error {
                    tag: 0,
                    code: ErrorCode::BadRequest,
                });
                continue;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown { .. });
        handle_request(req, &shared, &resp_tx, &mut negotiated);
        if is_shutdown {
            saw_goodbye = true;
            break;
        }
    }
    drop(resp_tx);
    let _ = writer.join();
    if saw_goodbye {
        shared.shutdown.store(true, Ordering::Release);
    }
    Ok(())
}

fn handle_request(req: Request, shared: &Shared, resp_tx: &Sender<Response>, negotiated: &mut u32) {
    match req {
        Request::Read {
            tenant,
            tag,
            offset,
            bytes,
        } => admit_io(shared, resp_tx, tenant, tag, offset, bytes, IoOp::Read, 0),
        Request::Write {
            tenant,
            tag,
            offset,
            bytes,
        } => admit_io(shared, resp_tx, tenant, tag, offset, bytes, IoOp::Write, 0),
        Request::Hello { tag, version } => {
            *negotiated = version.min(PROTOCOL_VERSION).max(1);
            let _ = resp_tx.send(Response::HelloAck {
                tag,
                version: *negotiated,
            });
        }
        Request::Batch(entries) => {
            if *negotiated < 2 {
                // BATCH before (or without) HELLO: a v2-only message on a
                // v1 connection. Reject the whole frame by its first tag.
                shared.metrics().inc("server.protocol_errors", 1);
                let tag = entries.first().map_or(0, |e| e.tag);
                let _ = resp_tx.send(Response::Error {
                    tag,
                    code: ErrorCode::BadRequest,
                });
                return;
            }
            shared.metrics().inc("server.batches", 1);
            // Per-entry admission: the batch amortizes framing, not the
            // token bucket — each entry spends its own tenant token and
            // reserves its own in-flight slot, exactly as if it had
            // arrived in its own frame.
            for e in entries {
                admit_io(
                    shared, resp_tx, e.tenant, e.tag, e.offset, e.bytes, e.op, e.retry_of,
                );
            }
        }
        Request::Stats { tag } => {
            let text = render_stats(shared);
            let _ = resp_tx.send(Response::Stats { tag, text });
        }
        Request::Flush { tag } => {
            let (done_tx, done_rx) = mpsc::channel();
            for s in &shared.shards {
                let _ = s.tx.send(ShardMsg::Flush(done_tx.clone()));
            }
            drop(done_tx);
            // Workers ack after force-draining; a crashed worker shows up
            // as a disconnect, which also ends the wait.
            while done_rx.recv().is_ok() {}
            let _ = resp_tx.send(Response::Flushed { tag });
        }
        Request::Shutdown { tag } => {
            let _ = resp_tx.send(Response::Goodbye { tag });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn admit_io(
    shared: &Shared,
    resp_tx: &Sender<Response>,
    tenant: u32,
    tag: u64,
    offset: u64,
    bytes: u32,
    op: IoOp,
    retry_of: u64,
) {
    if shared.shutdown.load(Ordering::Acquire) {
        let _ = resp_tx.send(Response::Error {
            tag,
            code: ErrorCode::ShuttingDown,
        });
        return;
    }
    if bytes == 0 || bytes > MAX_IO_BYTES {
        shared.metrics().inc("server.protocol_errors", 1);
        let _ = resp_tx.send(Response::Error {
            tag,
            code: ErrorCode::BadLength,
        });
        return;
    }

    {
        let mut m = shared.metrics();
        m.inc(
            if op == IoOp::Read {
                "server.requests.read"
            } else {
                "server.requests.write"
            },
            1,
        );
    }

    // Rate limit first: a rejected request must not consume queue budget.
    let wall_secs = shared.started.elapsed().as_secs_f64();
    let admitted = shared.buckets().admit(tenant, wall_secs);
    if !admitted {
        shared.metrics().inc("server.busy.ratelimit", 1);
        let _ = resp_tx.send(Response::Busy {
            tag,
            reason: BusyReason::RateLimit,
        });
        return;
    }

    // Route: wrap into capacity, pick the shard, rebase into its local
    // dense LBA space, and align down to the simulator's page grid.
    let wrapped = offset % shared.cfg.capacity_bytes;
    let idx = ShardSpec::route(shared.cfg.capacity_bytes, shared.cfg.shards, wrapped);
    let target = &shared.shards[idx];
    let local = wrapped - target.spec.base_offset;

    // Queue backpressure: reserve an in-flight slot or refuse.
    let reserved = target
        .inflight
        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
            (n < shared.cfg.inflight_limit).then_some(n + 1)
        });
    if reserved.is_err() {
        shared.metrics().inc("server.busy.queue", 1);
        let _ = resp_tx.send(Response::Busy {
            tag,
            reason: BusyReason::Queue,
        });
        return;
    }

    // Journal the admission with the *wrapped* global offset — a replay
    // through a same-shaped server routes it identically — and do it
    // BEFORE handing the submission to the worker: the worker's
    // reject/complete for this tag must never race ahead of its
    // admission, or the record sticks half-written.
    shared
        .recorder
        .admit(tag, retry_of, op, wrapped, bytes, tenant, idx as u32);
    let sent = target.tx.send(ShardMsg::Submit(Submission {
        tag,
        op,
        offset: local,
        bytes,
        reply: resp_tx.clone(),
    }));
    if sent.is_err() {
        // The worker never saw it: retract the admission.
        shared.recorder.reject(tag);
        // Worker channel gone: release the slot and report. During
        // shutdown that is expected; otherwise the worker thread itself
        // died, which is retryable — the request was never admitted.
        target.inflight.fetch_sub(1, Ordering::AcqRel);
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = resp_tx.send(Response::Error {
                tag,
                code: ErrorCode::ShuttingDown,
            });
        } else {
            shared.metrics().inc("server.busy.unavailable", 1);
            let _ = resp_tx.send(Response::Busy {
                tag,
                reason: BusyReason::Unavailable,
            });
        }
    }
}

fn render_stats(shared: &Shared) -> String {
    let mut m = shared.metrics().clone();
    for s in &shared.shards {
        m.set_gauge(
            &format!("server.inflight.shard{}", s.spec.index),
            s.inflight.load(Ordering::Acquire) as f64,
        );
    }
    m.set_gauge("server.uptime_secs", shared.started.elapsed().as_secs_f64());
    m.set_gauge("server.virtual_now_us", shared.clock.now().as_us());
    m.lines().join("\n")
}
