//! Poller-multiplexed high-concurrency load generator.
//!
//! The threaded closed-loop client ([`crate::client`]) spends one OS
//! thread per connection, which tops out around the low thousands of
//! sockets. This module drives *many* connections per thread off the
//! same [`Poller`](crate::poller::Poller) the server core uses: each
//! worker thread owns `connections / threads` nonblocking sockets, a
//! per-connection [`RecvBuffer`] for zero-copy frame extraction, and a
//! pending-write buffer flushed on writability. That makes ≥10k
//! concurrent connections practical from a single process, which is
//! what the event-loop server bench needs.
//!
//! The mux client speaks single-request v1 frames only (no HELLO, no
//! BATCH): the bench it exists for measures per-frame server overheads,
//! and batching would hide exactly the cost being measured. Use the
//! threaded client for batch experiments.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::time::{Duration, Instant};

use rif_events::stats::LatencyHistogram;
use rif_events::SimDuration;
use rif_workloads::SynthConfig;

use crate::client::{LoadConfig, LoadReport, PlannedIo};
use crate::poller::{best_poller, Interest, PollEvent};
use crate::protocol::{decode_response, encode_request, ErrorCode, Request, Response};
use crate::ring::RecvBuffer;

/// Poll tick while waiting for readiness (bounds the deadline sweep).
const POLL_TICK: Duration = Duration::from_millis(10);

/// Connect retry budget per connection (the listener backlog can lag a
/// 10k-connection stampede).
const CONNECT_RETRIES: u32 = 20;

/// One in-flight request.
struct Pending {
    tag: u64,
    io: PlannedIo,
    sent: Instant,
    busy_retries: u32,
}

/// One multiplexed connection.
struct MuxConn {
    stream: TcpStream,
    ring: RecvBuffer,
    /// Encoded frames not yet accepted by the socket.
    out: Vec<u8>,
    /// Bytes of `out` already written.
    out_off: usize,
    /// Requests on the wire awaiting a response (≤ `depth`).
    pending: Vec<Pending>,
    /// Requests not yet sent, front first.
    plan: VecDeque<PlannedIo>,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Tags are `(global_conn_index << 32) | counter`.
    next_tag: u64,
    done: bool,
}

impl MuxConn {
    /// True when every planned request has resolved.
    fn finished(&self) -> bool {
        self.plan.is_empty() && self.pending.is_empty()
    }

    fn queued(&self) -> usize {
        self.out.len() - self.out_off
    }

    /// Queues one encoded request frame (length prefix + payload).
    fn enqueue(&mut self, req: &Request) {
        push_frame(&mut self.out, req);
    }

    /// Sends the next planned request if the window has room.
    fn pump_plan(&mut self, depth: usize, tenant: u32) {
        while self.pending.len() < depth {
            let Some(io) = self.plan.pop_front() else {
                return;
            };
            let tag = self.next_tag;
            self.next_tag += 1;
            let req = match io.op {
                rif_workloads::IoOp::Read => Request::Read {
                    tenant,
                    tag,
                    offset: io.offset,
                    bytes: io.bytes,
                },
                rif_workloads::IoOp::Write => Request::Write {
                    tenant,
                    tag,
                    offset: io.offset,
                    bytes: io.bytes,
                },
            };
            self.enqueue(&req);
            self.pending.push(Pending {
                tag,
                io,
                sent: Instant::now(),
                busy_retries: 0,
            });
        }
    }

    /// Writes queued bytes until drained or the socket pushes back.
    fn flush(&mut self) -> io::Result<()> {
        while self.out_off < self.out.len() {
            match (&self.stream).write(&self.out[self.out_off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_off = 0;
        Ok(())
    }
}

/// Appends one length-prefixed request frame to an output buffer.
fn push_frame(out: &mut Vec<u8>, req: &Request) {
    let payload = encode_request(req);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Rebuilds the wire request for a pending entry (same tag, so the
/// retry resolves the same slot).
fn request_of(p: &Pending) -> Request {
    match p.io.op {
        rif_workloads::IoOp::Read => Request::Read {
            tenant: p.io.tenant,
            tag: p.tag,
            offset: p.io.offset,
            bytes: p.io.bytes,
        },
        rif_workloads::IoOp::Write => Request::Write {
            tenant: p.io.tenant,
            tag: p.tag,
            offset: p.io.offset,
            bytes: p.io.bytes,
        },
    }
}

/// Per-thread tallies merged into the final [`LoadReport`].
struct Tally {
    report: LoadReport,
    hist: LatencyHistogram,
}

/// Runs a closed-loop load with `threads` poller-driven worker threads
/// sharing `cfg.connections` connections. Counters land in the same
/// [`LoadReport`] shape as [`crate::client::run_load`]; connection
/// losses resolve the affected requests as `conn_errors` without
/// reconnecting (the bench wants steady sockets, not recovery drama).
pub fn run_mux_load(cfg: &LoadConfig, threads: usize) -> io::Result<LoadReport> {
    assert!(cfg.depth > 0, "need a send window");
    let threads = threads.max(1).min(cfg.connections.max(1));
    let per_conn = cfg.requests.div_ceil(cfg.connections.max(1));

    // Deal connections round-robin so thread loads stay even.
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); threads];
    for conn in 0..cfg.connections {
        assignments[conn % threads].push(conn);
    }

    let started = Instant::now();
    let mut handles = Vec::with_capacity(threads);
    for conns in assignments {
        if conns.is_empty() {
            continue;
        }
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            run_worker(&cfg, &conns, per_conn)
        }));
    }

    let mut total = LoadReport::default();
    let mut hist = LatencyHistogram::new();
    for h in handles {
        let tally = h
            .join()
            .map_err(|_| io::Error::other("mux worker thread panicked"))??;
        let p = tally.report;
        total.completed += p.completed;
        total.busy_queue += p.busy_queue;
        total.busy_ratelimit += p.busy_ratelimit;
        total.busy_unavailable += p.busy_unavailable;
        total.busy_dropped += p.busy_dropped;
        total.protocol_errors += p.protocol_errors;
        total.internal_errors += p.internal_errors;
        total.timed_out += p.timed_out;
        total.conn_errors += p.conn_errors;
        total.failed += p.failed;
        total.unknown_receipts += p.unknown_receipts;
        hist.merge(&tally.hist);
    }
    total.wall_secs = started.elapsed().as_secs_f64();
    total.mean_us = hist.mean().as_us();
    total.p50_us = hist.percentile(50.0).map_or(0.0, |d| d.as_us());
    total.p99_us = hist.percentile(99.0).map_or(0.0, |d| d.as_us());
    total.p999_us = hist.percentile(99.9).map_or(0.0, |d| d.as_us());
    total.throughput_rps = if total.wall_secs > 0.0 {
        total.completed as f64 / total.wall_secs
    } else {
        0.0
    };
    Ok(total)
}

/// Opens one connection with backlog-stampede retries.
fn connect(addr: &str, attempt_seed: u64) -> io::Result<TcpStream> {
    let mut delay = Duration::from_millis(1 + (attempt_seed % 3));
    let mut last = None;
    for _ in 0..CONNECT_RETRIES {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).ok();
                s.set_nonblocking(true)?;
                return Ok(s);
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect failed")))
}

fn run_worker(cfg: &LoadConfig, conns: &[usize], per_conn: usize) -> io::Result<Tally> {
    let mut poller = best_poller()?;
    let mut tally = Tally {
        report: LoadReport::default(),
        hist: LatencyHistogram::new(),
    };
    let synth = SynthConfig {
        read_ratio: cfg.read_ratio,
        zipf_s: cfg.zipf_s,
        request_bytes: cfg.request_bytes,
        ..SynthConfig::default()
    };

    let mut slots: Vec<MuxConn> = Vec::with_capacity(conns.len());
    for (slot, &global) in conns.iter().enumerate() {
        let n = per_conn.min(cfg.requests.saturating_sub(global * per_conn));
        let plan: VecDeque<PlannedIo> = synth
            .generate(n, cfg.seed + global as u64)
            .iter()
            .map(|r| PlannedIo {
                op: r.op,
                offset: r.offset,
                bytes: r.bytes,
                tenant: cfg.tenant,
                due_us: None,
            })
            .collect();
        let stream = connect(&cfg.addr, global as u64)?;
        poller.register(stream.as_raw_fd(), slot, Interest::READ)?;
        let mut conn = MuxConn {
            stream,
            ring: RecvBuffer::new(),
            out: Vec::new(),
            out_off: 0,
            pending: Vec::new(),
            plan,
            interest: Interest::READ,
            next_tag: (global as u64) << 32,
            done: false,
        };
        // Prime the first window; readiness takes over from here.
        conn.pump_plan(cfg.depth, cfg.tenant);
        conn.flush().ok();
        slots.push(conn);
    }

    let mut live = slots.iter().filter(|c| !c.finished()).count();
    // Retire connections that had an empty plan from the start.
    for slot in 0..slots.len() {
        if slots[slot].finished() && !slots[slot].done {
            retire(&mut poller, &mut slots[slot])?;
        }
    }

    let mut events: Vec<PollEvent> = Vec::new();
    while live > 0 {
        events.clear();
        poller.wait(&mut events, Some(POLL_TICK))?;

        for i in 0..events.len() {
            let ev = events[i];
            let conn = &mut slots[ev.token];
            if conn.done {
                continue;
            }
            let mut dead = ev.error;
            if !dead && ev.readable {
                dead = pump_read(cfg, conn, &mut tally);
            }
            if !dead && ev.writable {
                dead = conn.flush().is_err();
            }
            if dead {
                fail_conn(conn, &mut tally);
            }
            if conn.done || conn.finished() {
                retire(&mut poller, conn)?;
                live -= 1;
                continue;
            }
            let desired = Interest {
                readable: true,
                writable: conn.queued() > 0,
            };
            if desired != conn.interest {
                poller.reregister(conn.stream.as_raw_fd(), ev.token, desired)?;
                conn.interest = desired;
            }
        }

        // Deadline sweep: expired requests resolve as timeouts so a
        // wedged server cannot hang the bench.
        for slot in 0..slots.len() {
            let conn = &mut slots[slot];
            if conn.done {
                continue;
            }
            let before = conn.pending.len();
            conn.pending.retain(|p| {
                if p.sent.elapsed() < cfg.request_deadline {
                    true
                } else {
                    tally.report.timed_out += 1;
                    tally.report.failed += 1;
                    false
                }
            });
            if conn.pending.len() != before {
                conn.pump_plan(cfg.depth, cfg.tenant);
                if conn.flush().is_err() {
                    fail_conn(conn, &mut tally);
                }
                if conn.done || conn.finished() {
                    retire(&mut poller, conn)?;
                    live -= 1;
                    continue;
                }
                let desired = Interest {
                    readable: true,
                    writable: conn.queued() > 0,
                };
                if desired != conn.interest {
                    poller.reregister(conn.stream.as_raw_fd(), slot, desired)?;
                    conn.interest = desired;
                }
            }
        }
    }
    Ok(tally)
}

/// Deregisters and closes a finished connection exactly once.
fn retire(poller: &mut Box<dyn crate::poller::Poller>, conn: &mut MuxConn) -> io::Result<()> {
    if !conn.done {
        conn.done = true;
    }
    poller.deregister(conn.stream.as_raw_fd()).ok();
    conn.stream.shutdown(std::net::Shutdown::Both).ok();
    Ok(())
}

/// Resolves everything outstanding on a dead connection.
fn fail_conn(conn: &mut MuxConn, tally: &mut Tally) {
    tally.report.conn_errors += conn.pending.len() as u64;
    tally.report.failed += (conn.pending.len() + conn.plan.len()) as u64;
    conn.pending.clear();
    conn.plan.clear();
    conn.done = true;
}

/// Reads until the socket would block, handling every complete frame.
/// Returns true when the connection is dead.
fn pump_read(cfg: &LoadConfig, conn: &mut MuxConn, tally: &mut Tally) -> bool {
    loop {
        let mut src = &conn.stream;
        match conn.ring.read_from(&mut src) {
            Ok(0) => return true, // EOF with requests outstanding
            Ok(_) => {
                loop {
                    let payload = match conn.ring.next_frame() {
                        Ok(Some(p)) => p,
                        Ok(None) => break,
                        Err(_) => {
                            tally.report.protocol_errors += 1;
                            return true;
                        }
                    };
                    match decode_response(payload) {
                        Ok(resp) => {
                            handle_response(cfg, &resp, &mut conn.pending, &mut conn.out, tally)
                        }
                        Err(_) => tally.report.protocol_errors += 1,
                    }
                }
                conn.pump_plan(cfg.depth, cfg.tenant);
                if conn.flush().is_err() {
                    return true;
                }
                if conn.finished() {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
}

/// Applies one decoded response to the pending window. BUSY retries
/// re-encode onto `out` with the same tag.
fn handle_response(
    cfg: &LoadConfig,
    resp: &Response,
    pending: &mut Vec<Pending>,
    out: &mut Vec<u8>,
    tally: &mut Tally,
) {
    let tag = match resp {
        Response::Done { tag, .. }
        | Response::Busy { tag, .. }
        | Response::Error { tag, .. }
        | Response::Stats { tag, .. }
        | Response::Flushed { tag }
        | Response::Goodbye { tag }
        | Response::HelloAck { tag, .. }
        | Response::MapResp { tag, .. }
        | Response::WrongShard { tag, .. }
        | Response::Migrated { tag, .. }
        | Response::ReplAck { tag, .. } => *tag,
    };
    let Some(idx) = pending.iter().position(|p| p.tag == tag) else {
        tally.report.unknown_receipts += 1;
        return;
    };
    match resp {
        Response::Done { .. } => {
            let p = pending.swap_remove(idx);
            tally.report.completed += 1;
            tally
                .hist
                .record(SimDuration::from_ns(p.sent.elapsed().as_nanos() as u64));
        }
        Response::Busy { reason, .. } => {
            use crate::protocol::BusyReason;
            match reason {
                BusyReason::Queue => tally.report.busy_queue += 1,
                BusyReason::RateLimit => tally.report.busy_ratelimit += 1,
                BusyReason::Unavailable | BusyReason::Moving => tally.report.busy_unavailable += 1,
            }
            let p = &mut pending[idx];
            if p.busy_retries >= cfg.max_busy_retries {
                pending.swap_remove(idx);
                tally.report.busy_dropped += 1;
            } else {
                p.busy_retries += 1;
                p.sent = Instant::now();
                push_frame(out, &request_of(p));
            }
        }
        Response::Error { code, .. } => {
            pending.swap_remove(idx);
            if *code == ErrorCode::Internal {
                tally.report.internal_errors += 1;
            } else {
                tally.report.protocol_errors += 1;
            }
            tally.report.failed += 1;
        }
        _ => {
            pending.swap_remove(idx);
            tally.report.unknown_receipts += 1;
            tally.report.failed += 1;
        }
    }
}
