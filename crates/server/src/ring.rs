//! Zero-copy framing for the event-loop server core.
//!
//! Two halves, both allocation-free on the steady-state path:
//!
//! - [`RecvBuffer`] — a compacting receive ring. Socket reads land
//!   directly in the ring; [`RecvBuffer::next_frame`] hands back each
//!   complete frame payload as a *borrow* of the ring (no per-frame
//!   `Vec`), valid until the next mutating call. Because the ring
//!   compacts instead of wrapping, a frame payload is always one
//!   contiguous slice.
//! - [`WriteQueue`] — a per-connection response queue of coalesced
//!   chunks flushed with vectored writes. Responses are encoded straight
//!   into the tail chunk via
//!   [`encode_response_frame_into`](crate::protocol::encode_response_frame_into).
//!
//! [`decode_request_view`] decodes READ/WRITE/BATCH headers directly out
//! of a borrowed payload. It is contractually byte-for-byte equivalent
//! to [`decode_request`](crate::protocol::decode_request): same `Ok`
//! shapes, same error variants, same `Truncated { need, got }` offsets —
//! a property test in `tests/proptest_frames.rs` holds the two decoders
//! together on arbitrary valid and hostile inputs.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};

use rif_workloads::IoOp;

use crate::protocol::{
    encode_response_frame_into, BatchEntry, Reader, Request, Response, WireError,
    BATCH_ENTRY_BYTES, MAX_BATCH_ENTRIES, MAX_FRAME_BYTES, OP_BATCH, OP_FLUSH, OP_HELLO,
    OP_MAP_GET, OP_MAP_PUSH, OP_MIGRATE, OP_MIGRATE_IN, OP_MIGRATE_OUT, OP_READ, OP_REPLICATE,
    OP_SHUTDOWN, OP_STATS, OP_WRITE,
};

/// How much tail room [`RecvBuffer::read_from`] guarantees before each
/// socket read. One read can pull many small frames at once.
const READ_CHUNK: usize = 16 * 1024;

/// Soft target size of one [`WriteQueue`] chunk: responses coalesce into
/// the tail chunk until it crosses this, so a vectored flush pushes a
/// few large buffers instead of one tiny buffer per frame.
const COALESCE_BYTES: usize = 32 * 1024;

/// Upper bound on iovecs per `write_vectored` call.
const MAX_IOVECS: usize = 16;

// ----- receive ring ------------------------------------------------------

/// A compacting receive ring for one connection.
///
/// `[start, end)` marks unconsumed bytes in `buf`. Consumed prefix space
/// is reclaimed by `copy_within` compaction only when a read needs the
/// room, so in the common case (frames consumed as fast as they arrive)
/// the ring resets to offset zero without any copying.
#[derive(Debug, Default)]
pub struct RecvBuffer {
    buf: Vec<u8>,
    start: usize,
    end: usize,
    poisoned: Option<WireError>,
}

impl RecvBuffer {
    /// An empty ring.
    pub fn new() -> Self {
        RecvBuffer::default()
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Makes room for at least `min` more bytes at the tail: resets the
    /// window when empty, compacts when the consumed prefix is the only
    /// free space, and grows the backing buffer as a last resort.
    fn make_room(&mut self, min: usize) {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        } else if self.buf.len() - self.end < min && self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if self.buf.len() - self.end < min {
            let want = (self.end + min).next_power_of_two();
            self.buf.resize(want, 0);
        }
    }

    /// Performs one `read` from `r` into the ring tail. Returns the byte
    /// count (`0` means EOF). `WouldBlock` propagates as the error it is;
    /// the event loop treats it as "drained for now".
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.make_room(READ_CHUNK);
        let n = r.read(&mut self.buf[self.end..])?;
        self.end += n;
        Ok(n)
    }

    /// Appends raw stream bytes (test and in-process use).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.make_room(bytes.len().max(1));
        self.buf[self.end..self.end + bytes.len()].copy_from_slice(bytes);
        self.end += bytes.len();
    }

    /// Pops the next complete frame payload as a borrow of the ring,
    /// valid until the next mutating call. An oversized length prefix
    /// poisons the ring permanently (the frame boundary is
    /// unrecoverable), exactly like
    /// [`FrameBuffer`](crate::protocol::FrameBuffer).
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buffered() < 4 {
            return Ok(None);
        }
        let h = &self.buf[self.start..self.start + 4];
        let len = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
        if len > MAX_FRAME_BYTES {
            self.poisoned = Some(WireError::Oversized { len });
            return Err(WireError::Oversized { len });
        }
        let total = 4 + len as usize;
        if self.buffered() < total {
            return Ok(None);
        }
        let at = self.start + 4;
        self.start += total;
        Ok(Some(&self.buf[at..at + len as usize]))
    }
}

// ----- zero-copy request views -------------------------------------------

/// A decoded request borrowing its payload where that avoids work: the
/// scalar variants mirror [`Request`] field-for-field, and a batch stays
/// a validated byte slice ([`BatchView`]) iterated lazily instead of
/// being collected into a `Vec<BatchEntry>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestView<'a> {
    /// Simulated read, as [`Request::Read`].
    Read {
        /// Tenant id for rate limiting.
        tenant: u32,
        /// Client correlation tag.
        tag: u64,
        /// Logical byte offset.
        offset: u64,
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// Simulated write, as [`Request::Write`].
    Write {
        /// Tenant id for rate limiting.
        tenant: u32,
        /// Client correlation tag.
        tag: u64,
        /// Logical byte offset.
        offset: u64,
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// Metrics snapshot request, as [`Request::Stats`].
    Stats {
        /// Client correlation tag.
        tag: u64,
    },
    /// Drain barrier, as [`Request::Flush`].
    Flush {
        /// Client correlation tag.
        tag: u64,
    },
    /// Server exit request, as [`Request::Shutdown`].
    Shutdown {
        /// Client correlation tag.
        tag: u64,
    },
    /// Version negotiation, as [`Request::Hello`].
    Hello {
        /// Client correlation tag.
        tag: u64,
        /// Highest protocol version the client speaks.
        version: u32,
    },
    /// A validated batch body, iterated without allocation.
    Batch(BatchView<'a>),
    /// Shard-map fetch, as [`Request::MapGet`].
    MapGet {
        /// Client correlation tag.
        tag: u64,
    },
    /// Range-ownership install, as [`Request::MapPush`]. The owned-range
    /// list and map text stay borrows of the frame.
    MapPush {
        /// Client correlation tag.
        tag: u64,
        /// The map's monotonic epoch.
        epoch: u64,
        /// Logical capacity the range grid divides.
        capacity_bytes: u64,
        /// Total ranges in the grid.
        ranges: u32,
        /// The validated owned-range list.
        owned: RangeListView<'a>,
        /// The validated followed-range list (ranges this node serves
        /// as a replica follower).
        followed: RangeListView<'a>,
        /// The validated `(range, follower addr)` shipping targets.
        replicas: ReplicaListView<'a>,
        /// Canonical shard-map serialization.
        map_text: &'a str,
    },
    /// Range seal on the source node, as [`Request::MigrateOut`].
    MigrateOut {
        /// Client correlation tag.
        tag: u64,
        /// The range index to seal.
        range: u32,
    },
    /// Learner-state adoption on the target node, as
    /// [`Request::MigrateIn`].
    MigrateIn {
        /// Client correlation tag.
        tag: u64,
        /// The range index being adopted.
        range: u32,
        /// The source shard's learner state.
        state: &'a str,
    },
    /// Directory admin migration, as [`Request::Migrate`].
    Migrate {
        /// Client correlation tag.
        tag: u64,
        /// The range index to move.
        range: u32,
        /// Id of the destination node.
        node: &'a str,
    },
    /// Primary-to-follower write shipment, as [`Request::Replicate`].
    Replicate {
        /// Primary-chosen shipment tag.
        tag: u64,
        /// The range the write belongs to.
        range: u32,
        /// Map epoch the primary shipped under.
        epoch: u64,
        /// Per-range replication sequence number.
        seq: u64,
        /// Tenant id of the original write.
        tenant: u32,
        /// Logical byte offset of the original write.
        offset: u64,
        /// Transfer size in bytes.
        bytes: u32,
    },
}

impl RequestView<'_> {
    /// The correlation tag, mirroring [`Request::tag`].
    pub fn tag(&self) -> u64 {
        match self {
            RequestView::Read { tag, .. }
            | RequestView::Write { tag, .. }
            | RequestView::Stats { tag }
            | RequestView::Flush { tag }
            | RequestView::Shutdown { tag }
            | RequestView::Hello { tag, .. }
            | RequestView::MapGet { tag }
            | RequestView::MapPush { tag, .. }
            | RequestView::MigrateOut { tag, .. }
            | RequestView::MigrateIn { tag, .. }
            | RequestView::Migrate { tag, .. }
            | RequestView::Replicate { tag, .. } => *tag,
            RequestView::Batch(b) => {
                if b.count() == 0 {
                    0
                } else {
                    b.entry(0).tag
                }
            }
        }
    }

    /// Materializes the owning [`Request`] (allocates for batches).
    /// Exists for the equivalence tests against `decode_request`.
    pub fn to_request(&self) -> Request {
        match *self {
            RequestView::Read {
                tenant,
                tag,
                offset,
                bytes,
            } => Request::Read {
                tenant,
                tag,
                offset,
                bytes,
            },
            RequestView::Write {
                tenant,
                tag,
                offset,
                bytes,
            } => Request::Write {
                tenant,
                tag,
                offset,
                bytes,
            },
            RequestView::Stats { tag } => Request::Stats { tag },
            RequestView::Flush { tag } => Request::Flush { tag },
            RequestView::Shutdown { tag } => Request::Shutdown { tag },
            RequestView::Hello { tag, version } => Request::Hello { tag, version },
            RequestView::Batch(b) => Request::Batch(b.iter().collect()),
            RequestView::MapGet { tag } => Request::MapGet { tag },
            RequestView::MapPush {
                tag,
                epoch,
                capacity_bytes,
                ranges,
                owned,
                followed,
                replicas,
                map_text,
            } => Request::MapPush {
                tag,
                epoch,
                capacity_bytes,
                ranges,
                owned: owned.iter().collect(),
                followed: followed.iter().collect(),
                replicas: replicas.iter().map(|(r, a)| (r, a.to_string())).collect(),
                map_text: map_text.to_string(),
            },
            RequestView::MigrateOut { tag, range } => Request::MigrateOut { tag, range },
            RequestView::MigrateIn { tag, range, state } => Request::MigrateIn {
                tag,
                range,
                state: state.to_string(),
            },
            RequestView::Migrate { tag, range, node } => Request::Migrate {
                tag,
                range,
                node: node.to_string(),
            },
            RequestView::Replicate {
                tag,
                range,
                epoch,
                seq,
                tenant,
                offset,
                bytes,
            } => Request::Replicate {
                tag,
                range,
                epoch,
                seq,
                tenant,
                offset,
                bytes,
            },
        }
    }
}

/// The owned-range bytes of a validated MAP_PUSH frame: `count × 4`
/// little-endian `u32`s, decoded lazily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeListView<'a> {
    data: &'a [u8],
}

impl<'a> RangeListView<'a> {
    /// Number of range indices in the list.
    pub fn count(&self) -> usize {
        self.data.len() / 4
    }

    /// Decodes index `i`. Infallible: the frame was validated up front.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    pub fn get(&self, i: usize) -> u32 {
        u32::from_le_bytes(
            self.data[i * 4..(i + 1) * 4]
                .try_into()
                .expect("fixed width"),
        )
    }

    /// Lazily decodes every range index in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        let v = *self;
        (0..v.count()).map(move |i| v.get(i))
    }
}

/// The replica-target bytes of a validated MAP_PUSH frame:
/// `count × (range u32 | addr_len u16 | addr bytes)`, decoded lazily.
/// Entries are variable-width, so iteration walks the slice in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaListView<'a> {
    data: &'a [u8],
    count: u16,
}

impl<'a> ReplicaListView<'a> {
    /// Number of `(range, addr)` targets in the list.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Lazily decodes every target in order. Infallible: the frame was
    /// validated (bounds and UTF-8) up front.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &'a str)> + 'a {
        let mut data = self.data;
        (0..self.count).map(move |_| {
            let range = u32::from_le_bytes(data[..4].try_into().expect("fixed width"));
            let len = usize::from(u16::from_le_bytes([data[4], data[5]]));
            let addr = std::str::from_utf8(&data[6..6 + len]).expect("validated utf8");
            data = &data[6 + len..];
            (range, addr)
        })
    }
}

/// The entry bytes of a validated BATCH frame: `count × 33` bytes whose
/// op bytes are known-good, so per-entry decoding is infallible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchView<'a> {
    data: &'a [u8],
}

impl<'a> BatchView<'a> {
    /// Number of entries in the batch (1..=[`MAX_BATCH_ENTRIES`]).
    pub fn count(&self) -> usize {
        self.data.len() / BATCH_ENTRY_BYTES
    }

    /// Decodes entry `i`. Infallible: the frame was validated up front.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    pub fn entry(&self, i: usize) -> BatchEntry {
        let e = &self.data[i * BATCH_ENTRY_BYTES..(i + 1) * BATCH_ENTRY_BYTES];
        BatchEntry {
            op: if e[0] == OP_READ {
                IoOp::Read
            } else {
                IoOp::Write
            },
            tenant: u32::from_le_bytes(e[1..5].try_into().expect("fixed width")),
            tag: u64::from_le_bytes(e[5..13].try_into().expect("fixed width")),
            offset: u64::from_le_bytes(e[13..21].try_into().expect("fixed width")),
            bytes: u32::from_le_bytes(e[21..25].try_into().expect("fixed width")),
            retry_of: u64::from_le_bytes(e[25..33].try_into().expect("fixed width")),
        }
    }

    /// Lazily decodes every entry in order.
    pub fn iter(&self) -> impl Iterator<Item = BatchEntry> + 'a {
        let v = *self;
        (0..v.count()).map(move |i| v.entry(i))
    }
}

/// Decodes a request payload without copying it. Byte-for-byte
/// equivalent to [`decode_request`](crate::protocol::decode_request):
/// identical accepted inputs, identical [`WireError`]s (including the
/// exact `Truncated { need, got }` values) on rejected ones.
pub fn decode_request_view(payload: &[u8]) -> Result<RequestView<'_>, WireError> {
    let mut r = Reader::new(payload);
    let op = r.u8().map_err(|_| WireError::Empty)?;
    let req = match op {
        OP_READ | OP_WRITE => {
            let tenant = r.u32()?;
            let tag = r.u64()?;
            let offset = r.u64()?;
            let bytes = r.u32()?;
            if op == OP_READ {
                RequestView::Read {
                    tenant,
                    tag,
                    offset,
                    bytes,
                }
            } else {
                RequestView::Write {
                    tenant,
                    tag,
                    offset,
                    bytes,
                }
            }
        }
        OP_STATS => RequestView::Stats { tag: r.u64()? },
        OP_FLUSH => RequestView::Flush { tag: r.u64()? },
        OP_SHUTDOWN => RequestView::Shutdown { tag: r.u64()? },
        OP_HELLO => RequestView::Hello {
            tag: r.u64()?,
            version: r.u32()?,
        },
        OP_BATCH => {
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            if count == 0 {
                return Err(WireError::EmptyBatch);
            }
            if count > MAX_BATCH_ENTRIES {
                return Err(WireError::BatchTooLarge { count });
            }
            // Validate field-by-field with the same cursor the owning
            // decoder uses, so a short entry reports the identical
            // `Truncated { need, got }`.
            for _ in 0..count {
                match r.u8()? {
                    OP_READ | OP_WRITE => {}
                    v => {
                        return Err(WireError::BadEnum {
                            field: "batch_entry_op",
                            value: v,
                        })
                    }
                }
                r.u32()?;
                r.u64()?;
                r.u64()?;
                r.u32()?;
                r.u64()?;
            }
            let body = &payload[3..3 + count as usize * BATCH_ENTRY_BYTES];
            RequestView::Batch(BatchView { data: body })
        }
        OP_MAP_GET => RequestView::MapGet { tag: r.u64()? },
        OP_MAP_PUSH => {
            let tag = r.u64()?;
            let epoch = r.u64()?;
            let capacity_bytes = r.u64()?;
            let ranges = r.u32()?;
            // Validate each section with the same cursor steps the
            // owning decoder takes, so a short list reports the
            // identical `Truncated { need, got }`.
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            for _ in 0..count {
                r.u32()?;
            }
            let list_at = 1 + 8 + 8 + 8 + 4 + 2;
            let owned = RangeListView {
                data: &payload[list_at..list_at + count as usize * 4],
            };
            let follow_at = list_at + count as usize * 4 + 2;
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            for _ in 0..count {
                r.u32()?;
            }
            let followed = RangeListView {
                data: &payload[follow_at..follow_at + count as usize * 4],
            };
            let repl_at = follow_at + count as usize * 4 + 2;
            let count = u16::from_le_bytes([r.u8()?, r.u8()?]);
            let mut repl_bytes = 0usize;
            for _ in 0..count {
                r.u32()?;
                let len = u16::from_le_bytes([r.u8()?, r.u8()?]);
                std::str::from_utf8(r.take(len as usize)?).map_err(|_| WireError::BadUtf8)?;
                repl_bytes += 4 + 2 + len as usize;
            }
            let replicas = ReplicaListView {
                data: &payload[repl_at..repl_at + repl_bytes],
                count,
            };
            let map_text = std::str::from_utf8(r.rest()).map_err(|_| WireError::BadUtf8)?;
            RequestView::MapPush {
                tag,
                epoch,
                capacity_bytes,
                ranges,
                owned,
                followed,
                replicas,
                map_text,
            }
        }
        OP_MIGRATE_OUT => RequestView::MigrateOut {
            tag: r.u64()?,
            range: r.u32()?,
        },
        OP_MIGRATE_IN => {
            let tag = r.u64()?;
            let range = r.u32()?;
            let state = std::str::from_utf8(r.rest()).map_err(|_| WireError::BadUtf8)?;
            RequestView::MigrateIn { tag, range, state }
        }
        OP_MIGRATE => {
            let tag = r.u64()?;
            let range = r.u32()?;
            let node = std::str::from_utf8(r.rest()).map_err(|_| WireError::BadUtf8)?;
            RequestView::Migrate { tag, range, node }
        }
        OP_REPLICATE => RequestView::Replicate {
            tag: r.u64()?,
            range: r.u32()?,
            epoch: r.u64()?,
            seq: r.u64()?,
            tenant: r.u32()?,
            offset: r.u64()?,
            bytes: r.u32()?,
        },
        other => return Err(WireError::UnknownOpcode(other)),
    };
    r.done()?;
    Ok(req)
}

// ----- vectored write queue ----------------------------------------------

/// Per-connection outbound queue: responses encode into coalesced
/// chunks, flushed with `write_vectored` until the socket pushes back.
#[derive(Debug, Default)]
pub struct WriteQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Bytes of `chunks[0]` already written to the socket.
    head: usize,
    /// Unwritten bytes across all chunks.
    total: usize,
    /// One retired chunk kept for reuse, so a connection that drains and
    /// refills does not reallocate per cycle.
    spare: Vec<u8>,
}

impl WriteQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WriteQueue::default()
    }

    /// Unwritten bytes queued.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the queue is fully flushed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Encodes `resp` as a length-prefixed frame at the queue tail.
    pub fn push_response(&mut self, resp: &Response) {
        match self.chunks.back_mut() {
            Some(tail) if tail.len() < COALESCE_BYTES => {
                let before = tail.len();
                encode_response_frame_into(resp, tail);
                self.total += tail.len() - before;
            }
            _ => {
                let mut c = std::mem::take(&mut self.spare);
                c.clear();
                encode_response_frame_into(resp, &mut c);
                self.total += c.len();
                self.chunks.push_back(c);
            }
        }
    }

    /// Writes queued bytes to `w` until drained (`Ok(true)`) or the
    /// socket would block (`Ok(false)`). `Interrupted` retries; a
    /// zero-byte write is reported as `WriteZero`.
    pub fn flush<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while self.total > 0 {
            let mut iovs: Vec<IoSlice<'_>> = Vec::with_capacity(self.chunks.len().min(MAX_IOVECS));
            for (i, c) in self.chunks.iter().take(MAX_IOVECS).enumerate() {
                let s = if i == 0 { &c[self.head..] } else { &c[..] };
                if !s.is_empty() {
                    iovs.push(IoSlice::new(s));
                }
            }
            let res = w.write_vectored(&iovs);
            drop(iovs);
            match res {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection made no write progress",
                    ))
                }
                Ok(n) => self.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Retires `n` written bytes from the queue front.
    fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.total);
        self.total -= n;
        while n > 0 {
            let avail = self.chunks[0].len() - self.head;
            if n >= avail {
                n -= avail;
                self.head = 0;
                let mut c = self.chunks.pop_front().expect("chunk present");
                if c.capacity() > self.spare.capacity() {
                    c.clear();
                    self.spare = c;
                }
            } else {
                self.head += n;
                n = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        decode_request, decode_response, encode_request, encode_response, write_frame, BusyReason,
        ErrorCode, FrameBuffer,
    };

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Read {
                tenant: 3,
                tag: 0xDEAD_BEEF,
                offset: 1 << 33,
                bytes: 65536,
            },
            Request::Write {
                tenant: 0,
                tag: u64::MAX,
                offset: 0,
                bytes: 1,
            },
            Request::Stats { tag: 7 },
            Request::Flush { tag: 8 },
            Request::Shutdown { tag: 9 },
            Request::Hello {
                tag: 10,
                version: 2,
            },
            Request::Batch(vec![
                BatchEntry {
                    op: IoOp::Read,
                    tenant: 1,
                    tag: 11,
                    offset: 4096,
                    bytes: 65536,
                    retry_of: 0,
                },
                BatchEntry {
                    op: IoOp::Write,
                    tenant: 2,
                    tag: 12,
                    offset: 1 << 40,
                    bytes: 4096,
                    retry_of: 11,
                },
                BatchEntry {
                    op: IoOp::Read,
                    tenant: 2,
                    tag: 13,
                    offset: 0,
                    bytes: 512,
                    retry_of: 0,
                },
            ]),
            Request::MapGet { tag: 14 },
            Request::MapPush {
                tag: 15,
                epoch: 2,
                capacity_bytes: 8 << 30,
                ranges: 4,
                owned: vec![1, 3],
                followed: vec![0],
                replicas: vec![(1, "127.0.0.1:9001".to_string()), (3, "n2".to_string())],
                map_text: "# rif-shardmap v1 epoch=2 capacity=8589934592 ranges=4\n".to_string(),
            },
            Request::MapPush {
                tag: 16,
                epoch: 0,
                capacity_bytes: 1,
                ranges: 1,
                owned: vec![],
                followed: vec![],
                replicas: vec![],
                map_text: String::new(),
            },
            Request::MigrateOut { tag: 17, range: 3 },
            Request::MigrateIn {
                tag: 18,
                range: 3,
                state: "block 9 -0.02\n".to_string(),
            },
            Request::Migrate {
                tag: 19,
                range: 0,
                node: "node-b".to_string(),
            },
            Request::Replicate {
                tag: 20,
                range: 2,
                epoch: 5,
                seq: 17,
                tenant: 1,
                offset: 1 << 30,
                bytes: 4096,
            },
        ]
    }

    #[test]
    fn view_decoder_matches_owning_decoder_on_valid_payloads() {
        for req in sample_requests() {
            let enc = encode_request(&req);
            let view = decode_request_view(&enc).expect("valid payload");
            assert_eq!(view.to_request(), req);
            assert_eq!(view.tag(), req.tag());
        }
    }

    #[test]
    fn view_decoder_matches_owning_decoder_on_every_truncation() {
        for req in sample_requests() {
            let enc = encode_request(&req);
            for cut in 0..enc.len() {
                let owned = decode_request(&enc[..cut]);
                let viewed = decode_request_view(&enc[..cut]).map(|v| v.to_request());
                assert_eq!(owned, viewed, "req {req:?} cut {cut}");
            }
        }
    }

    #[test]
    fn view_decoder_matches_owning_decoder_on_hostile_bytes() {
        // Trailing garbage, bad opcodes, lying batch counts, bad entry
        // ops: every rejection must be the identical WireError.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x7F],
            vec![0x00],
            encode_request(&Request::Stats { tag: 1 })
                .into_iter()
                .chain([0u8])
                .collect(),
        ];
        let batch = encode_request(&Request::Batch(vec![
            BatchEntry {
                op: IoOp::Read,
                tenant: 0,
                tag: 1,
                offset: 0,
                bytes: 4096,
                retry_of: 0,
            };
            2
        ]));
        for lie in [0u16, 1, 3, 512, 513, u16::MAX] {
            let mut b = batch.clone();
            b[1..3].copy_from_slice(&lie.to_le_bytes());
            cases.push(b);
        }
        let mut bad_op = batch.clone();
        bad_op[3] = 0x03;
        cases.push(bad_op);
        let mut bad_op2 = batch;
        bad_op2[3 + BATCH_ENTRY_BYTES] = 0xFF;
        cases.push(bad_op2);
        // v3 hostile inputs: invalid UTF-8 text tails and a lying
        // owned-range count.
        let mut bad_text = encode_request(&Request::MigrateIn {
            tag: 1,
            range: 0,
            state: "x".to_string(),
        });
        *bad_text.last_mut().unwrap() = 0xFF;
        cases.push(bad_text);
        let mut bad_map = encode_request(&Request::MapPush {
            tag: 1,
            epoch: 1,
            capacity_bytes: 64,
            ranges: 2,
            owned: vec![0, 1],
            followed: vec![],
            replicas: vec![],
            map_text: "m".to_string(),
        });
        *bad_map.last_mut().unwrap() = 0xFE;
        cases.push(bad_map.clone());
        let count_at = 1 + 8 + 8 + 8 + 4;
        bad_map[count_at..count_at + 2].copy_from_slice(&9u16.to_le_bytes());
        cases.push(bad_map);
        // A lying replica count and an invalid-UTF-8 replica addr.
        let repl_map = encode_request(&Request::MapPush {
            tag: 1,
            epoch: 1,
            capacity_bytes: 64,
            ranges: 2,
            owned: vec![0],
            followed: vec![1],
            replicas: vec![(0, "a".to_string())],
            map_text: String::new(),
        });
        let repl_count_at = count_at + 2 + 4 + 2 + 4;
        let mut lying = repl_map.clone();
        lying[repl_count_at..repl_count_at + 2].copy_from_slice(&7u16.to_le_bytes());
        cases.push(lying);
        let mut bad_addr = repl_map;
        *bad_addr.last_mut().unwrap() = 0xFF;
        cases.push(bad_addr);

        for payload in cases {
            let owned = decode_request(&payload);
            let viewed = decode_request_view(&payload).map(|v| v.to_request());
            assert_eq!(owned, viewed, "payload {payload:?}");
        }
    }

    #[test]
    fn batch_view_iterates_all_entries() {
        let entries: Vec<BatchEntry> = (0..17)
            .map(|i| BatchEntry {
                op: if i % 2 == 0 { IoOp::Read } else { IoOp::Write },
                tenant: i,
                tag: u64::from(i) * 3,
                offset: u64::from(i) << 20,
                bytes: 4096 + i,
                retry_of: u64::from(i % 3),
            })
            .collect();
        let enc = encode_request(&Request::Batch(entries.clone()));
        let view = decode_request_view(&enc).expect("valid batch");
        match view {
            RequestView::Batch(b) => {
                assert_eq!(b.count(), entries.len());
                assert_eq!(b.iter().collect::<Vec<_>>(), entries);
                assert_eq!(b.entry(16), entries[16]);
            }
            other => panic!("not a batch: {other:?}"),
        }
    }

    #[test]
    fn recv_ring_reassembles_byte_at_a_time_like_frame_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();

        let mut ring = RecvBuffer::new();
        let mut fb = FrameBuffer::new();
        let mut from_ring: Vec<Vec<u8>> = Vec::new();
        let mut from_fb: Vec<Vec<u8>> = Vec::new();
        for b in &wire {
            ring.feed(std::slice::from_ref(b));
            fb.feed(std::slice::from_ref(b));
            while let Some(p) = ring.next_frame().unwrap() {
                from_ring.push(p.to_vec());
            }
            while let Some(p) = fb.next_frame().unwrap() {
                from_fb.push(p);
            }
            assert_eq!(ring.buffered(), fb.buffered());
        }
        assert_eq!(from_ring, from_fb);
        assert_eq!(
            from_ring,
            vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]
        );
        assert_eq!(ring.buffered(), 0);
    }

    #[test]
    fn recv_ring_compacts_instead_of_growing_without_bound() {
        let mut one = Vec::new();
        write_frame(&mut one, &[0xAB; 1000]).unwrap();
        let mut ring = RecvBuffer::new();
        // Stream 10k frames through, always consuming: the ring must
        // stay near its steady-state size, far below the 10 MB fed.
        for _ in 0..10_000 {
            ring.feed(&one);
            let p = ring.next_frame().unwrap().expect("complete frame");
            assert_eq!(p.len(), 1000);
        }
        assert_eq!(ring.buffered(), 0);
        assert!(
            ring.buf.len() <= 2 * READ_CHUNK.max(4 + one.len()),
            "ring grew to {} bytes",
            ring.buf.len()
        );
    }

    #[test]
    fn recv_ring_handles_split_frames_across_compaction() {
        // Feed 1.5 frames, consume one, feed the other half: the
        // partial frame must survive the compaction that the second
        // feed may trigger.
        let mut f1 = Vec::new();
        write_frame(&mut f1, &[1u8; 300]).unwrap();
        let mut f2 = Vec::new();
        write_frame(&mut f2, &[2u8; 300]).unwrap();
        let mut ring = RecvBuffer::new();
        ring.feed(&f1);
        ring.feed(&f2[..150]);
        assert_eq!(ring.next_frame().unwrap().expect("f1"), &[1u8; 300][..]);
        assert!(ring.next_frame().unwrap().is_none());
        ring.feed(&f2[150..]);
        assert_eq!(ring.next_frame().unwrap().expect("f2"), &[2u8; 300][..]);
        assert!(ring.next_frame().unwrap().is_none());
    }

    #[test]
    fn recv_ring_oversized_prefix_poisons_permanently() {
        let mut ring = RecvBuffer::new();
        ring.feed(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(
            ring.next_frame(),
            Err(WireError::Oversized { .. })
        ));
        // Still poisoned on the next call, even after more bytes arrive.
        ring.feed(&[0u8; 64]);
        assert!(matches!(
            ring.next_frame(),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn recv_ring_read_from_reads_socket_like_sources() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"defgh").unwrap();
        let mut cur = std::io::Cursor::new(wire);
        let mut ring = RecvBuffer::new();
        let mut got = Vec::new();
        loop {
            let n = ring.read_from(&mut cur).unwrap();
            if n == 0 {
                break;
            }
            while let Some(p) = ring.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"defgh".to_vec()]);
    }

    /// A writer that accepts at most `cap` bytes per call, then reports
    /// `WouldBlock` every other call — a socket with a tiny send buffer.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        blocked: bool,
        vectored_calls: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.vectored_calls += 1;
            if self.blocked {
                self.blocked = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "try later"));
            }
            self.blocked = true;
            let mut n = 0;
            for b in bufs {
                let take = b.len().min(self.cap - n);
                self.out.extend_from_slice(&b[..take]);
                n += take;
                if n == self.cap {
                    break;
                }
            }
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_survives_partial_writes_and_wouldblock() {
        let resps: Vec<Response> = (0..200)
            .map(|i| match i % 4 {
                0 => Response::Done {
                    tag: i,
                    latency_ns: i * 1000,
                },
                1 => Response::Busy {
                    tag: i,
                    reason: BusyReason::Queue,
                },
                2 => Response::Error {
                    tag: i,
                    code: ErrorCode::ConnLimit,
                },
                _ => Response::Stats {
                    tag: i,
                    text: format!("line {i}\n").repeat(5),
                },
            })
            .collect();
        let mut wq = WriteQueue::new();
        for r in &resps {
            wq.push_response(r);
        }
        let queued = wq.len();
        assert!(queued > 0);

        let mut w = Throttled {
            out: Vec::new(),
            cap: 7,
            blocked: false,
            vectored_calls: 0,
        };
        // Drive like the event loop: flush until drained, treating
        // Ok(false) as "wait for EPOLLOUT".
        let mut rounds = 0;
        while !wq.flush(&mut w).unwrap() {
            rounds += 1;
            assert!(rounds < 100_000, "flush never drains");
        }
        assert!(wq.is_empty());
        assert_eq!(w.out.len(), queued);

        // The byte stream must decode back to the exact responses.
        let mut fb = FrameBuffer::new();
        fb.feed(&w.out);
        let mut got = Vec::new();
        while let Some(p) = fb.next_frame().unwrap() {
            got.push(decode_response(&p).unwrap());
        }
        assert_eq!(got, resps);
    }

    #[test]
    fn write_queue_coalesces_small_responses_into_few_chunks() {
        let mut wq = WriteQueue::new();
        for i in 0..1000u64 {
            wq.push_response(&Response::Done {
                tag: i,
                latency_ns: 1,
            });
        }
        // 1000 × 21-byte frames ≈ 21 KB: they must coalesce into a
        // handful of ~32 KB chunks, not one chunk per frame.
        assert!(
            wq.chunks.len() <= 4,
            "{} chunks for 1000 tiny frames",
            wq.chunks.len()
        );
        let mut sink = Vec::new();
        assert!(wq.flush(&mut sink).unwrap());
        assert!(wq.is_empty());
        let enc = encode_response(&Response::Done {
            tag: 0,
            latency_ns: 1,
        });
        assert_eq!(sink.len(), 1000 * (4 + enc.len()));
    }

    #[test]
    fn write_queue_matches_encode_response_bytes() {
        let resps = [
            Response::Done {
                tag: 1,
                latency_ns: 2,
            },
            Response::Busy {
                tag: 3,
                reason: BusyReason::RateLimit,
            },
            Response::HelloAck { tag: 4, version: 2 },
            Response::Goodbye { tag: 5 },
            Response::Flushed { tag: 6 },
            Response::Stats {
                tag: 7,
                text: "counter x 1".into(),
            },
        ];
        let mut wq = WriteQueue::new();
        let mut expect = Vec::new();
        for r in &resps {
            wq.push_response(r);
            write_frame(&mut expect, &encode_response(r)).unwrap();
        }
        let mut sink = Vec::new();
        assert!(wq.flush(&mut sink).unwrap());
        assert_eq!(sink, expect);
    }
}
