//! The closed-loop load generator.
//!
//! Each connection keeps a fixed window of requests outstanding: it
//! sends until `depth` are in flight, then blocks for one response
//! before sending the next. Offsets and the read/write mix come from
//! the same [`SynthConfig`] generator the offline experiments use, so a
//! served workload is directly comparable to a batch-simulated one.
//!
//! `BUSY` responses are retried after a short backoff (and counted);
//! `ERROR` responses and undecodable frames are protocol errors. Wall
//! latency is measured per request from the moment its frame is written
//! to the moment its `DONE` arrives, and aggregated in a log-bucketed
//! histogram for p50/p99/p99.9.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rif_events::stats::LatencyHistogram;
use rif_events::SimDuration;
use rif_workloads::{IoOp, SynthConfig};

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, BusyReason, Request, Response,
};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Parallel connections.
    pub connections: usize,
    /// Outstanding requests per connection (the closed-loop window).
    pub depth: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Zipf exponent for hot-region locality.
    pub zipf_s: f64,
    /// Transfer size per request.
    pub request_bytes: u32,
    /// Tenant id stamped on every request.
    pub tenant: u32,
    /// Workload seed; connection `i` uses `seed + i`.
    pub seed: u64,
    /// Backoff before retrying a BUSY response.
    pub busy_backoff: Duration,
    /// Give up on a request after this many BUSY retries (0 = drop on
    /// first BUSY). Exhausted requests count as `busy_dropped`.
    pub max_busy_retries: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            connections: 2,
            depth: 8,
            requests: 1000,
            read_ratio: 0.9,
            zipf_s: 0.9,
            request_bytes: 64 * 1024,
            tenant: 0,
            seed: 1,
            busy_backoff: Duration::from_micros(200),
            max_busy_retries: 50,
        }
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests that completed with DONE.
    pub completed: u64,
    /// BUSY responses observed (each retry counts once).
    pub busy_queue: u64,
    /// BUSY(rate_limit) responses observed.
    pub busy_ratelimit: u64,
    /// Requests dropped after exhausting BUSY retries.
    pub busy_dropped: u64,
    /// ERROR responses plus undecodable frames.
    pub protocol_errors: u64,
    /// Wall-clock seconds from first send to last response.
    pub wall_secs: f64,
    /// Wall-latency percentiles, microseconds.
    pub p50_us: f64,
    /// 99th percentile wall latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile wall latency, microseconds.
    pub p999_us: f64,
    /// Mean wall latency, microseconds.
    pub mean_us: f64,
    /// Completed requests per wall second.
    pub throughput_rps: f64,
}

impl LoadReport {
    /// Canonical JSON rendering (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"completed\":{},\"busy_queue\":{},\"busy_ratelimit\":{},",
                "\"busy_dropped\":{},\"protocol_errors\":{},\"wall_secs\":{:.6},",
                "\"throughput_rps\":{:.1},\"latency_us\":{{\"mean\":{:.1},",
                "\"p50\":{:.1},\"p99\":{:.1},\"p999\":{:.1}}}}}"
            ),
            self.completed,
            self.busy_queue,
            self.busy_ratelimit,
            self.busy_dropped,
            self.protocol_errors,
            self.wall_secs,
            self.throughput_rps,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// One pre-generated request before it goes on the wire.
struct PlannedIo {
    op: IoOp,
    offset: u64,
    bytes: u32,
}

/// Runs the closed loop and aggregates all connections' results.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    assert!(cfg.connections > 0 && cfg.depth > 0, "need work to do");
    let per_conn = cfg.requests.div_ceil(cfg.connections);
    let mut handles = Vec::with_capacity(cfg.connections);
    for conn in 0..cfg.connections {
        let n = per_conn.min(cfg.requests - (conn * per_conn).min(cfg.requests));
        if n == 0 {
            break;
        }
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || run_connection(&cfg, conn, n)));
    }
    let mut total = LoadReport::default();
    let mut hist = LatencyHistogram::new();
    let started = Instant::now();
    for h in handles {
        let (part, part_hist) = h.join().expect("load thread panicked")?;
        total.completed += part.completed;
        total.busy_queue += part.busy_queue;
        total.busy_ratelimit += part.busy_ratelimit;
        total.busy_dropped += part.busy_dropped;
        total.protocol_errors += part.protocol_errors;
        hist.merge(&part_hist);
    }
    total.wall_secs = started.elapsed().as_secs_f64();
    total.mean_us = hist.mean().as_us();
    total.p50_us = hist.percentile(50.0).map_or(0.0, |d| d.as_us());
    total.p99_us = hist.percentile(99.0).map_or(0.0, |d| d.as_us());
    total.p999_us = hist.percentile(99.9).map_or(0.0, |d| d.as_us());
    total.throughput_rps = if total.wall_secs > 0.0 {
        total.completed as f64 / total.wall_secs
    } else {
        0.0
    };
    Ok(total)
}

fn plan(cfg: &LoadConfig, conn: usize, n: usize) -> Vec<PlannedIo> {
    let synth = SynthConfig {
        read_ratio: cfg.read_ratio,
        zipf_s: cfg.zipf_s,
        request_bytes: cfg.request_bytes,
        ..SynthConfig::default()
    };
    // Arrivals are discarded: a closed loop paces itself by completions.
    synth
        .generate(n, cfg.seed + conn as u64)
        .iter()
        .map(|r| PlannedIo {
            op: r.op,
            offset: r.offset,
            bytes: r.bytes,
        })
        .collect()
}

fn run_connection(
    cfg: &LoadConfig,
    conn: usize,
    n: usize,
) -> io::Result<(LoadReport, LatencyHistogram)> {
    let stream = TcpStream::connect(&cfg.addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);

    let mut queue: std::collections::VecDeque<(PlannedIo, u32)> =
        plan(cfg, conn, n).into_iter().map(|p| (p, 0)).collect();
    let mut inflight: HashMap<u64, (PlannedIo, u32, Instant)> = HashMap::new();
    let mut next_tag = (conn as u64) << 32;
    let mut report = LoadReport::default();
    let mut hist = LatencyHistogram::new();

    while !queue.is_empty() || !inflight.is_empty() {
        // Fill the window.
        while inflight.len() < cfg.depth {
            let Some((io_req, retries)) = queue.pop_front() else {
                break;
            };
            let tag = next_tag;
            next_tag += 1;
            let req = match io_req.op {
                IoOp::Read => Request::Read {
                    tenant: cfg.tenant,
                    tag,
                    offset: io_req.offset,
                    bytes: io_req.bytes,
                },
                IoOp::Write => Request::Write {
                    tenant: cfg.tenant,
                    tag,
                    offset: io_req.offset,
                    bytes: io_req.bytes,
                },
            };
            write_frame(&mut writer, &encode_request(&req))?;
            inflight.insert(tag, (io_req, retries, Instant::now()));
        }

        // Block for one response.
        let Some(payload) = read_frame(&mut reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed with requests in flight",
            ));
        };
        match decode_response(&payload) {
            Ok(Response::Done { tag, .. }) => {
                if let Some((_, _, sent)) = inflight.remove(&tag) {
                    report.completed += 1;
                    hist.record(SimDuration::from_ns(sent.elapsed().as_nanos() as u64));
                } else {
                    report.protocol_errors += 1;
                }
            }
            Ok(Response::Busy { tag, reason }) => {
                match reason {
                    BusyReason::Queue => report.busy_queue += 1,
                    BusyReason::RateLimit => report.busy_ratelimit += 1,
                }
                if let Some((io_req, retries, _)) = inflight.remove(&tag) {
                    if retries < cfg.max_busy_retries {
                        queue.push_back((io_req, retries + 1));
                    } else {
                        report.busy_dropped += 1;
                    }
                }
                // Back off so a saturated server is not hammered.
                std::thread::sleep(cfg.busy_backoff);
            }
            Ok(Response::Error { tag, .. }) => {
                inflight.remove(&tag);
                report.protocol_errors += 1;
            }
            Ok(_) => {
                // STATS/FLUSHED/GOODBYE are never solicited by the loop.
                report.protocol_errors += 1;
            }
            Err(_) => {
                report.protocol_errors += 1;
            }
        }
    }
    Ok((report, hist))
}

/// Requests a STATS snapshot on a fresh connection.
pub fn fetch_stats(addr: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &encode_request(&Request::Stats { tag: 1 }))?;
    match read_and_decode(&mut reader)? {
        Response::Stats { text, .. } => Ok(text),
        other => Err(bad_reply("STATS", &other)),
    }
}

/// Asks every shard to drain, blocking until the server acks.
pub fn flush(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &encode_request(&Request::Flush { tag: 2 }))?;
    match read_and_decode(&mut reader)? {
        Response::Flushed { .. } => Ok(()),
        other => Err(bad_reply("FLUSH", &other)),
    }
}

/// Sends SHUTDOWN and waits for the GOODBYE ack.
pub fn send_shutdown(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    write_frame(&mut writer, &encode_request(&Request::Shutdown { tag: 3 }))?;
    match read_and_decode(&mut reader)? {
        Response::Goodbye { .. } => Ok(()),
        other => Err(bad_reply("SHUTDOWN", &other)),
    }
}

fn read_and_decode<R: io::Read>(r: &mut R) -> io::Result<Response> {
    let payload = read_frame(r)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before replying",
        )
    })?;
    decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn bad_reply(what: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply to {what}: {got:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed_and_stable() {
        let r = LoadReport {
            completed: 10,
            busy_queue: 1,
            busy_ratelimit: 2,
            busy_dropped: 0,
            protocol_errors: 0,
            wall_secs: 1.5,
            p50_us: 100.0,
            p99_us: 900.0,
            p999_us: 1500.0,
            mean_us: 200.0,
            throughput_rps: 6.7,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":10"));
        assert!(j.contains("\"p99\":900.0"));
        assert_eq!(j, r.clone().to_json(), "rendering must be deterministic");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn plan_respects_mix_and_size() {
        let cfg = LoadConfig {
            read_ratio: 1.0,
            requests: 64,
            request_bytes: 16 * 1024,
            ..LoadConfig::default()
        };
        let p = plan(&cfg, 0, 64);
        assert_eq!(p.len(), 64);
        assert!(p.iter().all(|x| x.op == IoOp::Read));
        assert!(p.iter().all(|x| x.bytes == 16 * 1024));
    }
}
