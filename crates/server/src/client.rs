//! The closed-loop load generator, hardened for lossy transports.
//!
//! Each connection keeps a fixed window of requests outstanding: it
//! sends until `depth` are in flight, then polls for responses. Offsets
//! and the read/write mix come from the same [`SynthConfig`] generator
//! the offline experiments use, so a served workload is directly
//! comparable to a batch-simulated one.
//!
//! The client is built to survive a fault-injecting path (see the
//! `rif-chaos` crate) without ever losing track of a request:
//!
//! - **Per-request deadlines** — every submission carries a deadline;
//!   a response that never arrives (dropped frame, wedged server)
//!   resolves the tag as `TimedOut` instead of hanging the loop.
//! - **Bounded reconnect** — a broken connection is re-established with
//!   exponential backoff plus seeded jitter, up to a configured number
//!   of attempts; in-flight tags resolve as `ConnError`.
//! - **Idempotent retry only** — reads (and `BUSY`-rejected requests of
//!   either kind, which were never admitted) are re-issued under a fresh
//!   tag with a bounded budget; a write whose fate is unknown (worker
//!   crash, timeout, connection loss) is *failed* upward, never blindly
//!   retried.
//! - **Request journal** — every submission and its single terminal
//!   outcome are recorded in a [`Journal`], which the `rif-chaos`
//!   ContractChecker audits for the service contract: every tag resolves
//!   to exactly one of DONE/BUSY/ERROR, a timeout, or a clean connection
//!   error — never silence, never two outcomes.
//!
//! Wall latency is measured per request from the moment its frame is
//! written to the moment its `DONE` arrives, and aggregated in a
//! log-bucketed histogram for p50/p99/p99.9.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufWriter, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rif_events::stats::LatencyHistogram;
use rif_events::{SimDuration, SimRng};
use rif_workloads::{IoOp, SynthConfig};

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, BatchEntry, BusyReason, ErrorCode,
    FrameBuffer, Request, Response, MAX_BATCH_ENTRIES, PROTOCOL_VERSION,
};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Parallel connections.
    pub connections: usize,
    /// Outstanding requests per connection (the closed-loop window).
    pub depth: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Fraction of reads.
    pub read_ratio: f64,
    /// Zipf exponent for hot-region locality.
    pub zipf_s: f64,
    /// Transfer size per request.
    pub request_bytes: u32,
    /// Tenant id stamped on every request.
    pub tenant: u32,
    /// Workload seed; connection `i` uses `seed + i`.
    pub seed: u64,
    /// Backoff before retrying a BUSY response.
    pub busy_backoff: Duration,
    /// Give up on a request after this many BUSY retries (0 = drop on
    /// first BUSY). Exhausted requests count as `busy_dropped`.
    pub max_busy_retries: u32,
    /// A request with no response after this long resolves as timed out.
    pub request_deadline: Duration,
    /// Re-issue budget per operation for non-BUSY recoveries (timeouts,
    /// worker crashes, connection loss). Only safely-retryable work is
    /// re-issued: reads, plus anything that provably never reached a
    /// simulator.
    pub max_resends: u32,
    /// Reconnect attempts per connection before giving up on it.
    pub max_reconnects: u32,
    /// Base reconnect backoff; attempt `k` waits `base * 2^k` (capped)
    /// plus seeded jitter in `[0, base)`.
    pub reconnect_backoff: Duration,
    /// Requests per BATCH frame (`<= 1` disables batching: every request
    /// rides the v1 single-request frame). Batching requires the server
    /// to negotiate protocol v2; a connection that falls back to v1
    /// sends single frames regardless.
    pub batch: usize,
    /// Longest a partially-filled batch waits for more requests before
    /// being flushed anyway.
    pub batch_deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            connections: 2,
            depth: 8,
            requests: 1000,
            read_ratio: 0.9,
            zipf_s: 0.9,
            request_bytes: 64 * 1024,
            tenant: 0,
            seed: 1,
            busy_backoff: Duration::from_micros(200),
            max_busy_retries: 50,
            request_deadline: Duration::from_secs(2),
            max_resends: 16,
            max_reconnects: 8,
            reconnect_backoff: Duration::from_millis(10),
            batch: 1,
            batch_deadline: Duration::from_millis(2),
        }
    }
}

/// How a submitted tag resolved. Exactly one outcome per tag — the
/// client guarantees it by construction and the chaos ContractChecker
/// audits it from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The server answered DONE.
    Done,
    /// The server refused admission (queue, rate limit, or dead shard).
    Busy,
    /// The server answered ERROR.
    Error,
    /// No response within the request deadline.
    TimedOut,
    /// The connection died with the request in flight.
    ConnError,
}

/// One submission's journal entry.
#[derive(Debug, Clone)]
pub struct TagRecord {
    /// Connection index that issued the tag.
    pub conn: u32,
    /// The wire tag (unique across the whole run).
    pub tag: u64,
    /// Read or write.
    pub op: IoOp,
    /// Logical byte offset of the submission.
    pub offset: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// The prior tag this submission re-issues, if any.
    pub retry_of: Option<u64>,
    /// Terminal outcome; `None` only while still in flight.
    pub outcome: Option<Outcome>,
    /// Responses received after resolution whose payload matched the
    /// resolving one (e.g. a duplicated frame, or a late reply to a tag
    /// that already timed out).
    pub duplicate_receipts: u32,
    /// Responses received after resolution whose payload *differed* from
    /// the resolving one — a contract violation unless the fault plan
    /// injects duplication or corruption.
    pub conflicting_receipts: u32,
}

/// The client-side request journal for one load run.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// One record per wire submission, in per-connection send order.
    pub records: Vec<TagRecord>,
    /// Decodable responses whose tag matches no submission this client
    /// ever made (corrupted tag bits, or the server's tag-0 error reply
    /// to an undecodable request frame).
    pub unknown_receipts: u64,
    /// Frames that failed to decode as any response.
    pub undecodable_frames: u64,
    /// Connections lost mid-run.
    pub conn_losses: u64,
    /// Successful reconnects.
    pub reconnects: u64,
}

impl Journal {
    /// Folds another connection's journal into this one.
    pub fn merge(&mut self, other: Journal) {
        self.records.extend(other.records);
        self.unknown_receipts += other.unknown_receipts;
        self.undecodable_frames += other.undecodable_frames;
        self.conn_losses += other.conn_losses;
        self.reconnects += other.reconnects;
    }
}

/// Aggregated result of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests that completed with DONE.
    pub completed: u64,
    /// BUSY responses observed (each retry counts once).
    pub busy_queue: u64,
    /// BUSY(rate_limit) responses observed.
    pub busy_ratelimit: u64,
    /// BUSY(unavailable) responses observed (dead shard window).
    pub busy_unavailable: u64,
    /// Requests dropped after exhausting BUSY retries.
    pub busy_dropped: u64,
    /// Protocol errors: undecodable frames, unsolicited response kinds,
    /// and ERROR(BadRequest/BadLength) replies.
    pub protocol_errors: u64,
    /// ERROR(Internal) replies (worker crashed with the request in
    /// flight).
    pub internal_errors: u64,
    /// Tags that resolved by deadline expiry.
    pub timed_out: u64,
    /// Tags that resolved by connection loss.
    pub conn_errors: u64,
    /// Successful reconnects across all connections.
    pub reconnects: u64,
    /// BATCH frames sent (zero when batching is disabled or every
    /// connection fell back to protocol v1).
    pub batches_sent: u64,
    /// Operations abandoned without completion (write fate unknown, or
    /// retry budget exhausted). `completed + failed + busy_dropped`
    /// accounts for every planned request.
    pub failed: u64,
    /// Post-resolution receipts with matching payloads (duplicated or
    /// late frames).
    pub dup_receipts: u64,
    /// Decodable responses for tags never submitted.
    pub unknown_receipts: u64,
    /// `WRONG_SHARD` refusals observed (cluster mode: the request hit a
    /// node that does not own its LBA range). Never admitted, so each
    /// one is retried like a BUSY — a cluster router refreshes its map
    /// before the re-issue.
    pub wrong_shard: u64,
    /// Wall-clock seconds from first send to last response.
    pub wall_secs: f64,
    /// Wall-latency percentiles, microseconds.
    pub p50_us: f64,
    /// 99th percentile wall latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile wall latency, microseconds.
    pub p999_us: f64,
    /// Mean wall latency, microseconds.
    pub mean_us: f64,
    /// Completed requests per wall second.
    pub throughput_rps: f64,
}

impl LoadReport {
    /// Canonical JSON rendering (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"completed\":{},\"busy_queue\":{},\"busy_ratelimit\":{},",
                "\"busy_unavailable\":{},\"busy_dropped\":{},\"protocol_errors\":{},",
                "\"internal_errors\":{},\"timed_out\":{},\"conn_errors\":{},",
                "\"reconnects\":{},\"batches_sent\":{},\"failed\":{},\"dup_receipts\":{},",
                "\"unknown_receipts\":{},\"wrong_shard\":{},\"wall_secs\":{:.6},",
                "\"throughput_rps\":{:.1},\"latency_us\":{{\"mean\":{:.1},",
                "\"p50\":{:.1},\"p99\":{:.1},\"p999\":{:.1}}}}}"
            ),
            self.completed,
            self.busy_queue,
            self.busy_ratelimit,
            self.busy_unavailable,
            self.busy_dropped,
            self.protocol_errors,
            self.internal_errors,
            self.timed_out,
            self.conn_errors,
            self.reconnects,
            self.batches_sent,
            self.failed,
            self.dup_receipts,
            self.unknown_receipts,
            self.wrong_shard,
            self.wall_secs,
            self.throughput_rps,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
        )
    }
}

/// One pre-generated request before it goes on the wire.
#[derive(Debug, Clone, Copy)]
pub struct PlannedIo {
    /// Read or write.
    pub op: IoOp,
    /// Logical byte offset.
    pub offset: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Tenant the request is stamped with.
    pub tenant: u32,
    /// Earliest wall time (µs after the run starts) this request may be
    /// sent. `None` = closed-loop pacing (send as soon as the window has
    /// room); `Some` = open-loop replay pacing at recorded arrivals.
    pub due_us: Option<u64>,
}

/// One operation's retry bookkeeping across its (possibly many) tags.
struct OpState {
    io: PlannedIo,
    busy_retries: u32,
    resends: u32,
    /// The previous tag of this op, linking the retry chain.
    prior_tag: Option<u64>,
}

/// Runs the closed loop and aggregates all connections' results.
pub fn run_load(cfg: &LoadConfig) -> io::Result<LoadReport> {
    run_load_journaled(cfg).map(|(report, _journal)| report)
}

/// Like [`run_load`] but also returns the request [`Journal`] for
/// contract checking.
pub fn run_load_journaled(cfg: &LoadConfig) -> io::Result<(LoadReport, Journal)> {
    let per_conn = cfg.requests.div_ceil(cfg.connections.max(1));
    let mut plans = Vec::with_capacity(cfg.connections);
    for conn in 0..cfg.connections {
        let n = per_conn.min(cfg.requests - (conn * per_conn).min(cfg.requests));
        if n == 0 {
            break;
        }
        plans.push(plan(cfg, conn, n));
    }
    run_plans(cfg, plans)
}

/// Drives one pre-built request plan per connection through the server.
/// This is the shared engine under [`run_load_journaled`] (synthetic
/// closed-loop plans) and [`crate::replay::run_replay_journaled`]
/// (captured open-loop plans with recorded due times).
pub fn run_plans(
    cfg: &LoadConfig,
    plans: Vec<Vec<PlannedIo>>,
) -> io::Result<(LoadReport, Journal)> {
    assert!(cfg.depth > 0, "need a send window");
    let mut handles = Vec::with_capacity(plans.len());
    for (conn, plan) in plans.into_iter().enumerate() {
        if plan.is_empty() {
            continue;
        }
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || run_connection(&cfg, conn, plan)));
    }
    let mut total = LoadReport::default();
    let mut journal = Journal::default();
    let mut hist = LatencyHistogram::new();
    let started = Instant::now();
    for h in handles {
        let joined = h
            .join()
            .map_err(|_| io::Error::other("load connection thread panicked"))?;
        let (part, part_hist, part_journal) = joined?;
        total.completed += part.completed;
        total.busy_queue += part.busy_queue;
        total.busy_ratelimit += part.busy_ratelimit;
        total.busy_unavailable += part.busy_unavailable;
        total.busy_dropped += part.busy_dropped;
        total.protocol_errors += part.protocol_errors;
        total.internal_errors += part.internal_errors;
        total.timed_out += part.timed_out;
        total.conn_errors += part.conn_errors;
        total.reconnects += part.reconnects;
        total.batches_sent += part.batches_sent;
        total.failed += part.failed;
        total.dup_receipts += part.dup_receipts;
        total.unknown_receipts += part.unknown_receipts;
        hist.merge(&part_hist);
        journal.merge(part_journal);
    }
    total.wall_secs = started.elapsed().as_secs_f64();
    total.mean_us = hist.mean().as_us();
    total.p50_us = hist.percentile(50.0).map_or(0.0, |d| d.as_us());
    total.p99_us = hist.percentile(99.0).map_or(0.0, |d| d.as_us());
    total.p999_us = hist.percentile(99.9).map_or(0.0, |d| d.as_us());
    total.throughput_rps = if total.wall_secs > 0.0 {
        total.completed as f64 / total.wall_secs
    } else {
        0.0
    };
    Ok((total, journal))
}

fn plan(cfg: &LoadConfig, conn: usize, n: usize) -> Vec<PlannedIo> {
    let synth = SynthConfig {
        read_ratio: cfg.read_ratio,
        zipf_s: cfg.zipf_s,
        request_bytes: cfg.request_bytes,
        ..SynthConfig::default()
    };
    // Arrivals are discarded: a closed loop paces itself by completions.
    synth
        .generate(n, cfg.seed + conn as u64)
        .iter()
        .map(|r| PlannedIo {
            op: r.op,
            offset: r.offset,
            bytes: r.bytes,
            tenant: cfg.tenant,
            due_us: None,
        })
        .collect()
}

/// How long one read poll blocks before the deadline sweep runs.
const POLL_TICK: Duration = Duration::from_millis(1);

/// Cap on the exponential reconnect backoff.
const MAX_BACKOFF: Duration = Duration::from_millis(500);

/// Salt for the per-connection jitter RNG stream.
const JITTER_SALT: u64 = 0xC4A0_5C4A_05C4_A05C;

/// FNV-1a over a response payload: the fingerprint duplicate detection
/// compares post-resolution receipts against.
fn fingerprint(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One negotiated client connection: a nodelay TCP stream, its buffered
/// writer, and an incremental frame decoder. Public so higher layers
/// (the cluster router) can drive the wire protocol per endpoint while
/// reusing the load loop's transport discipline.
pub struct Conn {
    stream: TcpStream,
    writer: BufWriter<TcpStream>,
    frames: FrameBuffer,
    /// Protocol version the server acked; 1 until HELLO succeeds.
    version: u32,
}

impl Conn {
    fn open(addr: &str) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(POLL_TICK))?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(Conn {
            stream,
            writer,
            frames: FrameBuffer::new(),
            version: 1,
        })
    }

    /// Connects to `addr` and runs the HELLO handshake, falling back to
    /// the v1 baseline when the peer never acks.
    pub fn connect(addr: &str) -> io::Result<Conn> {
        let mut c = Conn::open(addr)?;
        c.version = negotiate(&mut c);
        Ok(c)
    }

    /// The protocol version negotiated with HELLO (1 = baseline).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Switches the socket to non-blocking mode: [`pump`](Conn::pump)
    /// returns `Ok(false)` immediately instead of blocking one poll
    /// tick when no bytes are queued. Drivers that sweep several
    /// connections serially (the cluster router) need this — kernel
    /// `SO_RCVTIMEO` granularity is one scheduler tick (several
    /// milliseconds), so even a sub-millisecond read timeout stalls a
    /// sweep by a full tick per idle endpoint. Callers take over idle
    /// pacing themselves (e.g. one `thread::sleep` per empty sweep).
    pub fn set_nonblocking(&mut self) -> io::Result<()> {
        self.stream.set_nonblocking(true)
    }

    /// Writes one request frame and flushes it to the socket.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        write_frame(&mut self.writer, &encode_request(req))
    }

    /// The next complete response payload already buffered, if any.
    /// An `Err` means frame sync is unrecoverable (oversized prefix).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, crate::protocol::WireError> {
        self.frames.next_frame()
    }

    /// Pulls whatever bytes are available (bounded by the read timeout)
    /// into the frame buffer. `Ok(true)` if bytes arrived, `Ok(false)`
    /// on a timeout tick, `Err` on EOF or a transport error.
    pub fn pump(&mut self) -> io::Result<bool> {
        let mut buf = [0u8; 16 * 1024];
        match self.stream.read(&mut buf) {
            Ok(0) => Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                self.frames.feed(&buf[..n]);
                Ok(true)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(false)
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// Correlation tag reserved for the HELLO handshake. Load tags are
/// `(conn << 32) | counter`, so `u64::MAX` can never collide.
const HELLO_TAG: u64 = u64::MAX;

/// How long the handshake waits for HELLO_ACK before assuming a v1 peer
/// (or a transport that ate the ack) and falling back to single frames.
const HELLO_TIMEOUT: Duration = Duration::from_millis(250);

/// Opens a connection to the configured address. Negotiation always
/// runs, even when not batching: a v2+ link lets re-issues ride in
/// single-entry BATCH frames whose `retry_of` tells the server-side
/// recorder they are the same logical request, not new load.
fn open_link(cfg: &LoadConfig) -> io::Result<Conn> {
    Conn::connect(&cfg.addr)
}

/// Blocking HELLO handshake, returning the version the server acked
/// (clamped to what this client speaks). A v1 server answers the
/// unknown opcode with `ERROR(tag=0)`; a lossy path may answer with
/// nothing — both fall back to v1 framing, which every server speaks.
fn negotiate(c: &mut Conn) -> u32 {
    let hello = Request::Hello {
        tag: HELLO_TAG,
        version: PROTOCOL_VERSION,
    };
    if write_frame(&mut c.writer, &encode_request(&hello)).is_err() {
        return 1;
    }
    let deadline = Instant::now() + HELLO_TIMEOUT;
    while Instant::now() < deadline {
        if c.pump().is_err() {
            return 1;
        }
        match c.frames.next_frame() {
            Ok(Some(payload)) => {
                return match decode_response(&payload) {
                    Ok(Response::HelloAck { version, .. }) => version.min(PROTOCOL_VERSION).max(1),
                    _ => 1,
                };
            }
            Ok(None) => {}
            Err(_) => return 1,
        }
    }
    1
}

/// Everything `run_connection` tracks for one connection.
struct ConnState {
    conn: u32,
    queue: VecDeque<OpState>,
    /// tag -> (op, journal record index, sent, deadline)
    inflight: HashMap<u64, (OpState, usize, Instant, Instant)>,
    /// tag -> (journal record index, fingerprint of the resolving
    /// payload if it was a wire response).
    resolved: HashMap<u64, (usize, Option<u64>)>,
    next_tag: u64,
    report: LoadReport,
    hist: LatencyHistogram,
    journal: Journal,
    /// Journaled-but-unsent entries accumulating toward one BATCH frame.
    pending_batch: Vec<BatchEntry>,
    /// When the oldest pending entry was journaled (deadline flush).
    batch_started: Option<Instant>,
}

impl ConnState {
    fn resolve(&mut self, tag: u64, outcome: Outcome, fp: Option<u64>) -> Option<OpState> {
        let (op, rec, _sent, _deadline) = self.inflight.remove(&tag)?;
        self.journal.records[rec].outcome = Some(outcome);
        self.resolved.insert(tag, (rec, fp));
        Some(op)
    }

    /// Records a wire submission and returns its tag.
    fn journal_send(
        &mut self,
        op: IoOp,
        offset: u64,
        bytes: u32,
        retry_of: Option<u64>,
    ) -> (u64, usize) {
        let tag = self.next_tag;
        self.next_tag += 1;
        let rec = self.journal.records.len();
        self.journal.records.push(TagRecord {
            conn: self.conn,
            tag,
            op,
            offset,
            bytes,
            retry_of,
            outcome: None,
            duplicate_receipts: 0,
            conflicting_receipts: 0,
        });
        (tag, rec)
    }

    /// An operation is out of road: account for it.
    fn fail_op(&mut self) {
        self.report.failed += 1;
    }
}

fn run_connection(
    cfg: &LoadConfig,
    conn: usize,
    plan: Vec<PlannedIo>,
) -> io::Result<(LoadReport, LatencyHistogram, Journal)> {
    let mut st = ConnState {
        conn: conn as u32,
        queue: plan
            .into_iter()
            .map(|io| OpState {
                io,
                busy_retries: 0,
                resends: 0,
                prior_tag: None,
            })
            .collect(),
        inflight: HashMap::new(),
        // Tag 0 is reserved: the server answers undecodable frames with
        // tag 0, which must never collide with a real submission.
        next_tag: ((conn as u64) << 32) | 1,
        resolved: HashMap::new(),
        report: LoadReport::default(),
        hist: LatencyHistogram::new(),
        journal: Journal::default(),
        pending_batch: Vec::new(),
        batch_started: None,
    };
    let mut jitter = SimRng::stream(cfg.seed ^ JITTER_SALT, conn as u64);
    let mut link = Some(open_link(cfg)?);
    let mut reconnects_used: u32 = 0;
    let mut backoff = ReconnectBackoff::new();
    let started = Instant::now();

    while !st.queue.is_empty() || !st.inflight.is_empty() {
        let Some(conn_ref) = link.as_mut() else {
            // Connection permanently gone: everything left in the queue
            // was never submitted; fail it and finish.
            while st.queue.pop_front().is_some() {
                st.report.failed += 1;
            }
            break;
        };

        // Fill the window.
        let mut send_failed = false;
        let batching = conn_ref.version >= 2 && cfg.batch > 1;
        while st.inflight.len() < cfg.depth {
            // Replay pacing: hold the next request until its recorded
            // due time. The queue keeps plan order, so the head gates
            // everything behind it.
            if let Some(due) = st.queue.front().and_then(|op| op.io.due_us) {
                if (started.elapsed().as_micros() as u64) < due {
                    break;
                }
            }
            let Some(op) = st.queue.pop_front() else {
                break;
            };
            let (tag, rec) = st.journal_send(op.io.op, op.io.offset, op.io.bytes, op.prior_tag);
            let io = op.io;
            let retry_of = op.prior_tag.unwrap_or(0);
            let now = Instant::now();
            st.inflight
                .insert(tag, (op, rec, now, now + cfg.request_deadline));
            if batching {
                st.pending_batch.push(BatchEntry {
                    op: io.op,
                    tenant: io.tenant,
                    tag,
                    offset: io.offset,
                    bytes: io.bytes,
                    retry_of,
                });
                if st.batch_started.is_none() {
                    st.batch_started = Some(now);
                }
                if st.pending_batch.len() >= cfg.batch.min(MAX_BATCH_ENTRIES as usize)
                    && flush_batch(conn_ref, &mut st).is_err()
                {
                    send_failed = true;
                    break;
                }
            } else {
                // Re-issues on a v2 link travel as one-entry BATCH frames:
                // the only frame kind that carries `retry_of`, so the
                // server's recorder can alias them onto the original
                // instead of journaling a second logical request.
                let req = if conn_ref.version >= 2 && retry_of != 0 {
                    Request::Batch(vec![BatchEntry {
                        op: io.op,
                        tenant: io.tenant,
                        tag,
                        offset: io.offset,
                        bytes: io.bytes,
                        retry_of,
                    }])
                } else {
                    match io.op {
                        IoOp::Read => Request::Read {
                            tenant: io.tenant,
                            tag,
                            offset: io.offset,
                            bytes: io.bytes,
                        },
                        IoOp::Write => Request::Write {
                            tenant: io.tenant,
                            tag,
                            offset: io.offset,
                            bytes: io.bytes,
                        },
                    }
                };
                if write_frame(&mut conn_ref.writer, &encode_request(&req)).is_err() {
                    send_failed = true;
                    break;
                }
            }
        }
        // A straggler batch flushes when no more work can join it or its
        // deadline passes — partial frames must not wait forever.
        if !send_failed && !st.pending_batch.is_empty() {
            let expired = st
                .batch_started
                .is_some_and(|t| t.elapsed() >= cfg.batch_deadline);
            if (expired || st.queue.is_empty() || st.inflight.len() >= cfg.depth)
                && flush_batch(conn_ref, &mut st).is_err()
            {
                send_failed = true;
            }
        }

        // Poll the transport and process every complete frame.
        let mut conn_broken = send_failed;
        if !conn_broken {
            match conn_ref.pump() {
                Ok(_) => loop {
                    match conn_ref.frames.next_frame() {
                        Ok(Some(payload)) => handle_frame(cfg, &mut st, &payload),
                        Ok(None) => break,
                        Err(_) => {
                            // Oversized prefix: framing is unrecoverable.
                            st.journal.undecodable_frames += 1;
                            st.report.protocol_errors += 1;
                            conn_broken = true;
                            break;
                        }
                    }
                },
                Err(_) => conn_broken = true,
            }
        }

        if conn_broken {
            st.journal.conn_losses += 1;
            // Unsent batch entries die with the connection; their tags
            // are in flight and resolve as ConnError just below.
            st.pending_batch.clear();
            st.batch_started = None;
            // Every in-flight tag resolves as a clean connection error.
            let tags: Vec<u64> = st.inflight.keys().copied().collect();
            for tag in tags {
                st.report.conn_errors += 1;
                if let Some(op) = st.resolve(tag, Outcome::ConnError, None) {
                    requeue_or_fail_cfg(cfg, &mut st, op, tag, true);
                }
            }
            link = reconnect(
                cfg,
                &mut st,
                &mut jitter,
                &mut reconnects_used,
                &mut backoff,
            );
            continue;
        }

        sweep_deadlines(cfg, &mut st);
    }

    st.report.reconnects = st.journal.reconnects;
    st.report.dup_receipts = st
        .journal
        .records
        .iter()
        .map(|r| (r.duplicate_receipts + r.conflicting_receipts) as u64)
        .sum();
    st.report.unknown_receipts = st.journal.unknown_receipts;
    Ok((st.report, st.hist, st.journal))
}

/// Sends the accumulated BATCH frame, if any.
fn flush_batch(conn: &mut Conn, st: &mut ConnState) -> io::Result<()> {
    if st.pending_batch.is_empty() {
        return Ok(());
    }
    let entries = std::mem::take(&mut st.pending_batch);
    st.batch_started = None;
    st.report.batches_sent += 1;
    write_frame(&mut conn.writer, &encode_request(&Request::Batch(entries)))
}

/// Exponential reconnect backoff whose memory outlives any single
/// reconnect bout. A success *decays* the strike count by one instead
/// of resetting it, so a flapping endpoint — connect, serve one
/// request, die, repeat — keeps paying near-full backoff rather than
/// restarting from the base delay and hammering the node. Held per
/// connection by the load loop and per endpoint by the cluster router.
#[derive(Debug, Clone, Default)]
pub struct ReconnectBackoff {
    strikes: u32,
}

impl ReconnectBackoff {
    /// A fresh history: the first failed connect waits the base delay.
    pub fn new() -> ReconnectBackoff {
        ReconnectBackoff::default()
    }

    /// The delay to sleep before the next connect attempt: `base * 2^s`
    /// capped at [`MAX_BACKOFF`], plus seeded jitter in `[0, base]`.
    /// Counts the attempt (call once per attempt, before sleeping).
    pub fn next_delay(&mut self, base: Duration, jitter: &mut SimRng) -> Duration {
        let base_ns = base.as_nanos().max(1) as u64;
        let exp = base_ns.saturating_mul(1u64 << self.strikes.min(20));
        self.strikes = self.strikes.saturating_add(1);
        Duration::from_nanos(exp).min(MAX_BACKOFF)
            + Duration::from_nanos(jitter.int_range(0, base_ns + 1))
    }

    /// Records a successful (re)connect: one strike is forgiven. Only a
    /// run of successes walks the delay back down to the base.
    pub fn note_success(&mut self) {
        self.strikes = self.strikes.saturating_sub(1);
    }

    /// Current strike count (attempts not yet forgiven by successes).
    pub fn strikes(&self) -> u32 {
        self.strikes
    }
}

/// Re-establishes the connection with exponential backoff and seeded
/// jitter, bounded by `cfg.max_reconnects` per connection. `backoff`
/// persists across calls — see [`ReconnectBackoff`].
fn reconnect(
    cfg: &LoadConfig,
    st: &mut ConnState,
    jitter: &mut SimRng,
    used: &mut u32,
    backoff: &mut ReconnectBackoff,
) -> Option<Conn> {
    while *used < cfg.max_reconnects {
        *used += 1;
        std::thread::sleep(backoff.next_delay(cfg.reconnect_backoff, jitter));
        if let Ok(c) = open_link(cfg) {
            backoff.note_success();
            st.journal.reconnects += 1;
            return Some(c);
        }
    }
    None
}

/// Resolves every tag whose deadline has passed.
fn sweep_deadlines(cfg: &LoadConfig, st: &mut ConnState) {
    let now = Instant::now();
    let expired: Vec<u64> = st
        .inflight
        .iter()
        .filter(|(_, (_, _, _, deadline))| now >= *deadline)
        .map(|(tag, _)| *tag)
        .collect();
    for tag in expired {
        st.report.timed_out += 1;
        if let Some(op) = st.resolve(tag, Outcome::TimedOut, None) {
            // The request may have been admitted (response lost), so
            // only idempotent work is re-issued.
            requeue_or_fail_cfg(cfg, st, op, tag, true);
        }
    }
}

/// Re-queues an op for another attempt, or fails it. `maybe_admitted`
/// is false when the server provably never started the I/O (a BUSY
/// rejection), making even writes safe to retry.
fn requeue_or_fail_cfg(
    cfg: &LoadConfig,
    st: &mut ConnState,
    mut op: OpState,
    prior_tag: u64,
    maybe_admitted: bool,
) {
    let idempotent = !maybe_admitted || op.io.op == IoOp::Read;
    if idempotent && op.resends < cfg.max_resends {
        op.resends += 1;
        // Link the chain's ROOT tag (first submission): the server-side
        // recorder resolves the link among admitted tags, and only the
        // root survives intermediate attempts that never got admitted.
        op.prior_tag = op.prior_tag.or(Some(prior_tag));
        st.queue.push_back(op);
    } else {
        st.fail_op();
    }
}

/// Dispatches one decoded (or undecodable) response frame.
fn handle_frame(cfg: &LoadConfig, st: &mut ConnState, payload: &[u8]) {
    let resp = match decode_response(payload) {
        Ok(r) => r,
        Err(_) => {
            st.journal.undecodable_frames += 1;
            st.report.protocol_errors += 1;
            return;
        }
    };
    if matches!(resp, Response::HelloAck { .. }) {
        // A late or transport-duplicated handshake ack: harmless, and it
        // must not count against the journal's receipt accounting.
        return;
    }
    let fp = Some(fingerprint(payload));
    let tag = resp.tag();

    // A response for an already-resolved tag is a post-resolution
    // receipt: a duplicated/late frame (same payload) or a conflicting
    // one (different payload). Either way the tag stays resolved.
    if let Some(&(rec, resolved_fp)) = st.resolved.get(&tag) {
        if resolved_fp.is_some() && resolved_fp != fp {
            st.journal.records[rec].conflicting_receipts += 1;
        } else {
            st.journal.records[rec].duplicate_receipts += 1;
        }
        return;
    }
    if !st.inflight.contains_key(&tag) {
        st.journal.unknown_receipts += 1;
        return;
    }

    match resp {
        Response::Done { .. } => {
            let sent = st.inflight.get(&tag).map(|(_, _, sent, _)| *sent);
            if st.resolve(tag, Outcome::Done, fp).is_some() {
                st.report.completed += 1;
                if let Some(sent) = sent {
                    st.hist
                        .record(SimDuration::from_ns(sent.elapsed().as_nanos() as u64));
                }
            }
        }
        Response::Busy { reason, .. } => {
            match reason {
                BusyReason::Queue => st.report.busy_queue += 1,
                BusyReason::RateLimit => st.report.busy_ratelimit += 1,
                // A migrating range is momentarily unavailable here; the
                // refusal semantics (never admitted, safe to retry) are
                // identical.
                BusyReason::Unavailable | BusyReason::Moving => st.report.busy_unavailable += 1,
            }
            if let Some(mut op) = st.resolve(tag, Outcome::Busy, fp) {
                if op.busy_retries < cfg.max_busy_retries {
                    op.busy_retries += 1;
                    op.prior_tag = op.prior_tag.or(Some(tag));
                    st.queue.push_back(op);
                } else {
                    st.report.busy_dropped += 1;
                }
            }
            // Back off so a saturated server is not hammered.
            std::thread::sleep(cfg.busy_backoff);
        }
        Response::Error { code, .. } => {
            if let Some(op) = st.resolve(tag, Outcome::Error, fp) {
                match code {
                    ErrorCode::Internal => {
                        // Worker crash mid-flight: the I/O may have run.
                        st.report.internal_errors += 1;
                        requeue_or_fail_cfg(cfg, st, op, tag, true);
                    }
                    ErrorCode::BadRequest | ErrorCode::BadLength => {
                        st.report.protocol_errors += 1;
                        st.fail_op();
                    }
                    // ConnLimit never arrives tagged mid-stream (it is a
                    // pre-HELLO refusal), but treat it as terminal too.
                    ErrorCode::ShuttingDown | ErrorCode::ConnLimit => st.fail_op(),
                }
            }
        }
        Response::WrongShard { .. } => {
            // Cluster refusal: this node does not own the range, and the
            // request was provably never admitted — retry on the BUSY
            // budget. The plain client has no shard map to refetch (the
            // cluster router layers that on top); against a single
            // server this arm never fires.
            st.report.wrong_shard += 1;
            if let Some(mut op) = st.resolve(tag, Outcome::Busy, fp) {
                if op.busy_retries < cfg.max_busy_retries {
                    op.busy_retries += 1;
                    op.prior_tag = op.prior_tag.or(Some(tag));
                    st.queue.push_back(op);
                } else {
                    st.report.busy_dropped += 1;
                }
            }
            std::thread::sleep(cfg.busy_backoff);
        }
        Response::Stats { .. }
        | Response::Flushed { .. }
        | Response::Goodbye { .. }
        | Response::MapResp { .. }
        | Response::Migrated { .. }
        | Response::ReplAck { .. }
        | Response::HelloAck { .. } => {
            // Never solicited by the load loop (HelloAck returns early
            // above); resolve the tag so it is not left dangling, but
            // count the anomaly.
            st.report.protocol_errors += 1;
            if let Some(_op) = st.resolve(tag, Outcome::Error, fp) {
                st.fail_op();
            }
        }
    }
}

/// Requests a STATS snapshot on a fresh connection.
pub fn fetch_stats(addr: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = io::BufReader::new(stream);
    write_frame(&mut writer, &encode_request(&Request::Stats { tag: 1 }))?;
    match read_and_decode(&mut reader)? {
        Response::Stats { text, .. } => Ok(text),
        other => Err(bad_reply("STATS", &other)),
    }
}

/// Asks every shard to drain, blocking until the server acks.
pub fn flush(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = io::BufReader::new(stream);
    write_frame(&mut writer, &encode_request(&Request::Flush { tag: 2 }))?;
    match read_and_decode(&mut reader)? {
        Response::Flushed { .. } => Ok(()),
        other => Err(bad_reply("FLUSH", &other)),
    }
}

/// Sends SHUTDOWN and waits for the GOODBYE ack.
pub fn send_shutdown(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = io::BufReader::new(stream);
    write_frame(&mut writer, &encode_request(&Request::Shutdown { tag: 3 }))?;
    match read_and_decode(&mut reader)? {
        Response::Goodbye { .. } => Ok(()),
        other => Err(bad_reply("SHUTDOWN", &other)),
    }
}

fn read_and_decode<R: Read>(r: &mut R) -> io::Result<Response> {
    let payload = read_frame(r)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed before replying",
        )
    })?;
    decode_response(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn bad_reply(what: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected reply to {what}: {got:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_well_formed_and_stable() {
        let r = LoadReport {
            completed: 10,
            busy_queue: 1,
            busy_ratelimit: 2,
            busy_dropped: 0,
            protocol_errors: 0,
            wall_secs: 1.5,
            p50_us: 100.0,
            p99_us: 900.0,
            p999_us: 1500.0,
            mean_us: 200.0,
            throughput_rps: 6.7,
            wrong_shard: 3,
            ..LoadReport::default()
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"completed\":10"));
        assert!(j.contains("\"p99\":900.0"));
        assert!(j.contains("\"timed_out\":0"));
        assert!(j.contains("\"failed\":0"));
        assert!(j.contains("\"wrong_shard\":3"));
        assert_eq!(j, r.clone().to_json(), "rendering must be deterministic");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn reconnect_backoff_survives_a_single_success() {
        let mut b = ReconnectBackoff::new();
        let mut rng = SimRng::stream(7, 0);
        let base = Duration::from_millis(10);
        // Straight failures escalate: each delay's floor doubles.
        let delays: Vec<Duration> = (0..5).map(|_| b.next_delay(base, &mut rng)).collect();
        for (i, d) in delays.iter().enumerate() {
            assert!(
                *d >= base * (1 << i),
                "attempt {i} delay {d:?} below its floor"
            );
        }
        assert_eq!(b.strikes(), 5);

        // THE regression this type exists for: one success must NOT
        // reset the history. A flapping node (connect, die, reconnect)
        // keeps paying near-full backoff.
        b.note_success();
        assert_eq!(b.strikes(), 4);
        let after_success = b.next_delay(base, &mut rng);
        assert!(
            after_success >= base * 16,
            "one success dropped the backoff to {after_success:?} — flapping endpoint hammered"
        );

        // Only a run of successes walks the delay back to the base.
        for _ in 0..8 {
            b.note_success();
        }
        assert_eq!(b.strikes(), 0);
        let recovered = b.next_delay(base, &mut rng);
        assert!(recovered <= base * 2, "recovered delay {recovered:?}");
    }

    #[test]
    fn plan_respects_mix_and_size() {
        let cfg = LoadConfig {
            read_ratio: 1.0,
            requests: 64,
            request_bytes: 16 * 1024,
            ..LoadConfig::default()
        };
        let p = plan(&cfg, 0, 64);
        assert_eq!(p.len(), 64);
        assert!(p.iter().all(|x| x.op == IoOp::Read));
        assert!(p.iter().all(|x| x.bytes == 16 * 1024));
    }

    #[test]
    fn journal_merge_accumulates() {
        let mut a = Journal {
            unknown_receipts: 1,
            ..Journal::default()
        };
        let b = Journal {
            unknown_receipts: 2,
            undecodable_frames: 3,
            conn_losses: 1,
            reconnects: 1,
            records: vec![TagRecord {
                conn: 0,
                tag: 1,
                op: IoOp::Read,
                offset: 4096,
                bytes: 65536,
                retry_of: None,
                outcome: Some(Outcome::Done),
                duplicate_receipts: 0,
                conflicting_receipts: 0,
            }],
        };
        a.merge(b);
        assert_eq!(a.unknown_receipts, 3);
        assert_eq!(a.undecodable_frames, 3);
        assert_eq!(a.records.len(), 1);
    }

    #[test]
    fn fingerprint_distinguishes_payloads() {
        assert_eq!(fingerprint(b"abc"), fingerprint(b"abc"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
    }
}
