//! Threshold-voltage (V_TH) distribution model for 3D TLC NAND flash.
//!
//! Each TLC cell stores three bits in one of eight V_TH states (paper
//! §II-A1). States are modelled as Gaussians whose means and widths evolve
//! with stress (paper §II-A2):
//!
//! * **P/E cycling** damages the tunnel oxide, accelerating charge leakage —
//!   modelled as a multiplicative wear factor on the retention shift and a
//!   widening of every distribution;
//! * **retention** leaks charge out of the SiN layer, shifting programmed
//!   states down with the characteristic `ln(1 + t)` time dependence, higher
//!   states more strongly;
//! * **read disturb** weakly programs low states upward.
//!
//! RBER for a page is the probability mass each state places in regions
//! where the Gray-coded bit differs from the programmed value, evaluated at
//! the active read-reference voltages — the exact integral, not an
//! adjacent-state approximation, so heavily shifted distributions are
//! handled correctly.
//!
//! Constants are calibrated so a median block crosses the paper's 0.0085
//! correction capability at ≈17 days retention at 0 P/E cycles, ≈14 at
//! 200, ≈10 at 500 and ≈8 at 1000 (Fig. 4 anchors).

use crate::geometry::PageKind;
use rif_ldpc::model::normal_cdf;

/// Mean and standard deviation of one V_TH state under a given stress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateParam {
    /// Distribution mean (normalized volts).
    pub mean: f64,
    /// Distribution standard deviation (normalized volts).
    pub sigma: f64,
}

/// The stress condition of a page at read time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Program/erase cycles experienced by the block.
    pub pe_cycles: u32,
    /// Days since the page was programmed.
    pub retention_days: f64,
    /// Reads issued to the block since programming (read disturb).
    pub reads: u64,
}

impl OperatingPoint {
    /// A freshly programmed page on a fresh block.
    pub fn fresh() -> Self {
        OperatingPoint {
            pe_cycles: 0,
            retention_days: 0.0,
            reads: 0,
        }
    }

    /// Convenience constructor for the common (P/E, retention) sweeps.
    pub fn new(pe_cycles: u32, retention_days: f64) -> Self {
        OperatingPoint {
            pe_cycles,
            retention_days,
            reads: 0,
        }
    }
}

/// Gray code of the eight TLC states as (LSB, CSB, MSB) bits.
///
/// Adjacent states differ in exactly one bit, so each read-reference
/// voltage resolves exactly one page kind: LSB reads use R3/R7, CSB reads
/// use R2/R4/R6, MSB reads use R1/R5 (the 2-3-2 scheme).
const GRAY: [(bool, bool, bool); 8] = [
    (true, true, true),    // P0 (erased)
    (true, true, false),   // P1
    (true, false, false),  // P2
    (false, false, false), // P3
    (false, true, false),  // P4
    (false, true, true),   // P5
    (false, false, true),  // P6
    (true, false, true),   // P7
];

/// The parametric TLC V_TH model.
///
/// # Example
///
/// ```
/// use rif_flash::{TlcModel, PageKind};
/// use rif_flash::vth::OperatingPoint;
///
/// let m = TlcModel::calibrated();
/// let refs = m.default_refs();
/// let fresh = m.rber(OperatingPoint::fresh(), 1.0, &refs, PageKind::Lsb);
/// let aged = m.rber(OperatingPoint::new(1000, 20.0), 1.0, &refs, PageKind::Lsb);
/// assert!(fresh < 1e-3);
/// assert!(aged > fresh * 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TlcModel {
    /// Nominal spacing between adjacent state means (normalized volts).
    pub state_gap: f64,
    /// Mean of the erased state (well below P1, as in real TLC where the
    /// erase-to-P1 window is much wider than programmed-state spacing).
    pub erase_mean: f64,
    /// Fresh standard deviation of programmed states.
    pub sigma_prog: f64,
    /// Fresh standard deviation of the erased state.
    pub sigma_erase: f64,
    /// Retention-shift amplitude `A` (volts per ln-day).
    pub retention_a: f64,
    /// Wear amplitude in `wear(pe) = 1 + wear_amp · (pe/1000)^wear_exp`.
    pub wear_amp: f64,
    /// Wear exponent.
    pub wear_exp: f64,
    /// State-level exponent γ in the `(s/7)^γ` retention scaling.
    pub state_gamma: f64,
    /// Distribution widening per 1000 P/E cycles (fractional).
    pub widen_pe: f64,
    /// Distribution widening per ln-day of retention (fractional).
    pub widen_ret: f64,
    /// Read-disturb upward shift of the erased state per ln(1 + reads/1k).
    pub read_disturb: f64,
}

impl TlcModel {
    /// The calibrated model used throughout the reproduction.
    ///
    /// `retention_a` is tuned so the page-kind-average RBER of a median
    /// block crosses 0.0085 at ≈17 days of retention at 0 P/E cycles; the
    /// wear law places the later crossings near the paper's 14/10/8-day
    /// anchors for 200/500/1000 P/E cycles (Fig. 4).
    pub fn calibrated() -> Self {
        TlcModel {
            state_gap: 1.0,
            erase_mean: -1.0,
            sigma_prog: 0.14,
            sigma_erase: 0.30,
            retention_a: 0.094,
            wear_amp: 0.28,
            wear_exp: 0.65,
            state_gamma: 0.5,
            widen_pe: 0.05,
            widen_ret: 0.02,
            read_disturb: 0.02,
        }
    }

    /// Wear multiplier at `pe` program/erase cycles.
    pub fn wear(&self, pe: u32) -> f64 {
        1.0 + self.wear_amp * (pe as f64 / 1000.0).powf(self.wear_exp)
    }

    /// V_TH distribution parameters of all eight states under the given
    /// stress. `process_factor` scales the retention shift and models
    /// block-to-block process variation (1.0 = median block).
    pub fn state_params(&self, op: OperatingPoint, process_factor: f64) -> [StateParam; 8] {
        let wear = self.wear(op.pe_cycles);
        let ln_t = (1.0 + op.retention_days.max(0.0)).ln();
        let widen =
            1.0 + self.widen_pe * op.pe_cycles as f64 / 1000.0 + self.widen_ret * ln_t * wear;
        let rd = self.read_disturb * (1.0 + op.reads as f64 / 1000.0).ln();
        let mut out = [StateParam {
            mean: 0.0,
            sigma: 0.0,
        }; 8];
        for (s, slot) in out.iter_mut().enumerate() {
            let base_mean = if s == 0 {
                self.erase_mean
            } else {
                s as f64 * self.state_gap
            };
            let base_sigma = if s == 0 {
                self.sigma_erase
            } else {
                self.sigma_prog
            };
            let shift = self.retention_a
                * process_factor
                * wear
                * ln_t
                * (s as f64 / 7.0).powf(self.state_gamma);
            // Read disturb weakly programs the erased state upward.
            let disturb = if s == 0 { rd } else { 0.0 };
            *slot = StateParam {
                mean: base_mean - shift + disturb,
                sigma: base_sigma * widen,
            };
        }
        out
    }

    /// The bit a cell in `state` contributes to a page of `kind`.
    pub fn bit_of(kind: PageKind, state: usize) -> bool {
        assert!(state < 8, "state {state} out of range");
        let (l, c, m) = GRAY[state];
        match kind {
            PageKind::Lsb => l,
            PageKind::Csb => c,
            PageKind::Msb => m,
        }
    }

    /// The read-reference indices (1–7) a page of `kind` uses: the state
    /// boundaries where its Gray bit flips.
    pub fn refs_of(kind: PageKind) -> Vec<usize> {
        (1..8)
            .filter(|&r| Self::bit_of(kind, r - 1) != Self::bit_of(kind, r))
            .collect()
    }

    /// Read-reference voltages optimal for fresh distributions — the
    /// manufacturer's default V_REF set.
    pub fn default_refs(&self) -> [f64; 7] {
        self.optimal_refs(self.state_params(OperatingPoint::fresh(), 1.0))
    }

    /// Numerically optimal read-reference voltages for the given state
    /// distributions: each reference sits at the equal-density intersection
    /// of its adjacent states.
    pub fn optimal_refs(&self, params: [StateParam; 8]) -> [f64; 7] {
        let mut refs = [0.0; 7];
        for r in 1..8 {
            refs[r - 1] = gaussian_intersection(params[r - 1], params[r]);
        }
        refs
    }

    /// RBER of a page of `kind` read at the given reference voltages.
    ///
    /// For each state the model integrates the probability mass falling in
    /// voltage regions whose decoded bit differs from the programmed bit,
    /// then averages over the eight equiprobable states (data randomization
    /// makes states uniform — paper §V-A1).
    pub fn rber(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        refs: &[f64; 7],
        kind: PageKind,
    ) -> f64 {
        let params = self.state_params(op, process_factor);
        self.rber_with_params(&params, refs, kind)
    }

    /// RBER from precomputed state parameters (see [`TlcModel::rber`]).
    pub fn rber_with_params(
        &self,
        params: &[StateParam; 8],
        refs: &[f64; 7],
        kind: PageKind,
    ) -> f64 {
        let kind_refs = Self::refs_of(kind);
        // Region boundaries for this page kind, in ascending voltage order.
        let bounds: Vec<f64> = kind_refs.iter().map(|&r| refs[r - 1]).collect();
        let mut err = 0.0;
        for (s, p) in params.iter().enumerate() {
            let want = Self::bit_of(kind, s);
            // Walk the regions: region k spans (bounds[k-1], bounds[k]).
            // The decoded bit of the lowest region is the bit of state 0.
            let mut region_bit = Self::bit_of(kind, 0);
            let mut lo = f64::NEG_INFINITY;
            let mut wrong_mass = 0.0;
            for (k, &b) in bounds.iter().enumerate() {
                if region_bit != want {
                    wrong_mass += gauss_mass(p, lo, b);
                }
                lo = b;
                // Crossing reference kind_refs[k] flips the decoded bit.
                let _ = k;
                region_bit = !region_bit;
            }
            if region_bit != want {
                wrong_mass += gauss_mass(p, lo, f64::INFINITY);
            }
            err += wrong_mass / 8.0;
        }
        err
    }

    /// Average RBER over the three page kinds — the per-wordline figure the
    /// characterization campaign reports.
    pub fn rber_avg(&self, op: OperatingPoint, process_factor: f64, refs: &[f64; 7]) -> f64 {
        PageKind::ALL
            .iter()
            .map(|&k| self.rber(op, process_factor, refs, k))
            .sum::<f64>()
            / 3.0
    }

    /// Expected fraction of cells of a `kind` page that read as 1 at the
    /// given references — what a Swift-Read ones-count measures.
    pub fn ones_fraction(&self, params: &[StateParam; 8], refs: &[f64; 7], kind: PageKind) -> f64 {
        let kind_refs = Self::refs_of(kind);
        let bounds: Vec<f64> = kind_refs.iter().map(|&r| refs[r - 1]).collect();
        let mut ones = 0.0;
        for p in params.iter() {
            let mut region_bit = Self::bit_of(kind, 0);
            let mut lo = f64::NEG_INFINITY;
            for &b in &bounds {
                if region_bit {
                    ones += gauss_mass(p, lo, b) / 8.0;
                }
                lo = b;
                region_bit = !region_bit;
            }
            if region_bit {
                ones += gauss_mass(p, lo, f64::INFINITY) / 8.0;
            }
        }
        ones
    }
}

fn gauss_mass(p: &StateParam, lo: f64, hi: f64) -> f64 {
    let cdf = |x: f64| {
        if x == f64::INFINITY {
            1.0
        } else if x == f64::NEG_INFINITY {
            0.0
        } else {
            normal_cdf((x - p.mean) / p.sigma)
        }
    };
    (cdf(hi) - cdf(lo)).max(0.0)
}

/// The equal-density crossing point of two Gaussians, constrained to lie
/// between the two means (the decision-optimal read reference for
/// equiprobable states).
fn gaussian_intersection(a: StateParam, b: StateParam) -> f64 {
    debug_assert!(a.mean < b.mean, "states must be ordered");
    if (a.sigma - b.sigma).abs() < 1e-12 {
        return 0.5 * (a.mean + b.mean);
    }
    // Solve (v-m1)²/s1² + 2 ln s1 = (v-m2)²/s2² + 2 ln s2.
    let (m1, s1, m2, s2) = (a.mean, a.sigma, b.mean, b.sigma);
    let qa = 1.0 / (s1 * s1) - 1.0 / (s2 * s2);
    let qb = -2.0 * (m1 / (s1 * s1) - m2 / (s2 * s2));
    let qc = m1 * m1 / (s1 * s1) - m2 * m2 / (s2 * s2) + 2.0 * (s1 / s2).ln();
    let disc = (qb * qb - 4.0 * qa * qc).max(0.0).sqrt();
    let r1 = (-qb + disc) / (2.0 * qa);
    let r2 = (-qb - disc) / (2.0 * qa);
    // Prefer the root between the means; fall back to the midpoint.
    for r in [r1, r2] {
        if r > m1 && r < m2 {
            return r;
        }
    }
    0.5 * (m1 + m2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_code_adjacent_states_differ_by_one_bit() {
        for s in 0..7 {
            let diff = [PageKind::Lsb, PageKind::Csb, PageKind::Msb]
                .iter()
                .filter(|&&k| TlcModel::bit_of(k, s) != TlcModel::bit_of(k, s + 1))
                .count();
            assert_eq!(diff, 1, "states {s} and {} differ in {diff} bits", s + 1);
        }
    }

    #[test]
    fn ref_counts_follow_two_three_two() {
        assert_eq!(TlcModel::refs_of(PageKind::Lsb).len(), 2);
        assert_eq!(TlcModel::refs_of(PageKind::Csb).len(), 3);
        assert_eq!(TlcModel::refs_of(PageKind::Msb).len(), 2);
        // The seven references are partitioned among the kinds.
        let mut all: Vec<usize> = PageKind::ALL
            .iter()
            .flat_map(|&k| TlcModel::refs_of(k))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn fresh_rber_is_small() {
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        for k in PageKind::ALL {
            let r = m.rber(OperatingPoint::fresh(), 1.0, &refs, k);
            assert!(r < 2e-3, "{k} fresh RBER {r}");
        }
    }

    #[test]
    fn rber_monotone_in_retention() {
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let mut last = 0.0;
        for days in [0.0, 2.0, 8.0, 16.0, 30.0] {
            let r = m.rber_avg(OperatingPoint::new(0, days), 1.0, &refs);
            assert!(r >= last, "RBER decreased at {days} days");
            last = r;
        }
    }

    #[test]
    fn rber_monotone_in_pe() {
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let mut last = 0.0;
        for pe in [0u32, 200, 500, 1000, 2000] {
            let r = m.rber_avg(OperatingPoint::new(pe, 10.0), 1.0, &refs);
            assert!(r >= last, "RBER decreased at {pe} P/E");
            last = r;
        }
    }

    #[test]
    fn calibration_anchor_at_17_days() {
        // Fig. 4: at 0 P/E cycles a median page crosses the 0.0085
        // capability at ≈17 days of retention.
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let before = m.rber_avg(OperatingPoint::new(0, 15.0), 1.0, &refs);
        let after = m.rber_avg(OperatingPoint::new(0, 19.0), 1.0, &refs);
        assert!(
            before < 0.0085,
            "RBER {before} already above cap at 15 days"
        );
        assert!(after > 0.0085, "RBER {after} still below cap at 19 days");
    }

    #[test]
    fn optimal_refs_lower_rber_after_stress() {
        let m = TlcModel::calibrated();
        let op = OperatingPoint::new(1000, 20.0);
        let default = m.default_refs();
        let params = m.state_params(op, 1.0);
        let optimal = m.optimal_refs(params);
        for k in PageKind::ALL {
            let rd = m.rber(op, 1.0, &default, k);
            let ro = m.rber(op, 1.0, &optimal, k);
            assert!(ro < rd * 0.5, "{k}: optimal {ro} vs default {rd}");
        }
    }

    #[test]
    fn optimal_rber_stays_below_capability_within_a_month() {
        // §IV-B: a re-read with adjusted V_REF is virtually always
        // decodable; the RBER at near-optimal references stays well under
        // the 0.0085 capability for the 1-month refresh horizon.
        let m = TlcModel::calibrated();
        for pe in [0u32, 1000, 2000] {
            let op = OperatingPoint::new(pe, 30.0);
            let params = m.state_params(op, 1.0);
            let optimal = m.optimal_refs(params);
            let r = m.rber_avg(op, 1.0, &optimal);
            assert!(r < 0.0085 * 0.7, "pe={pe}: optimal RBER {r}");
        }
    }

    #[test]
    fn gaussian_intersection_midpoint_for_equal_sigmas() {
        let a = StateParam {
            mean: 1.0,
            sigma: 0.1,
        };
        let b = StateParam {
            mean: 2.0,
            sigma: 0.1,
        };
        assert!((gaussian_intersection(a, b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gaussian_intersection_biased_toward_narrow_state() {
        // With a wide left state, the equal-density point moves right,
        // toward the narrow distribution.
        let a = StateParam {
            mean: 0.0,
            sigma: 0.3,
        };
        let b = StateParam {
            mean: 1.0,
            sigma: 0.1,
        };
        let v = gaussian_intersection(a, b);
        assert!(v > 0.5 && v < 1.0, "got {v}");
    }

    #[test]
    fn process_factor_scales_degradation() {
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let op = OperatingPoint::new(500, 12.0);
        let weak = m.rber_avg(op, 1.5, &refs);
        let strong = m.rber_avg(op, 0.7, &refs);
        assert!(weak > strong);
    }

    #[test]
    fn read_disturb_raises_msb_errors() {
        // MSB pages use R1, adjacent to the erased state that read disturb
        // pushes upward.
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let quiet = m.rber(
            OperatingPoint {
                pe_cycles: 0,
                retention_days: 5.0,
                reads: 0,
            },
            1.0,
            &refs,
            PageKind::Msb,
        );
        let noisy = m.rber(
            OperatingPoint {
                pe_cycles: 0,
                retention_days: 5.0,
                reads: 500_000,
            },
            1.0,
            &refs,
            PageKind::Msb,
        );
        assert!(
            noisy > quiet,
            "read disturb had no effect: {quiet} vs {noisy}"
        );
    }

    #[test]
    fn ones_fraction_near_half_when_fresh() {
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let params = m.state_params(OperatingPoint::fresh(), 1.0);
        for k in PageKind::ALL {
            let f = m.ones_fraction(&params, &refs, k);
            // Gray coding puts 4 of 8 states at bit 1 for LSB/MSB; CSB also 4.
            assert!((f - 0.5).abs() < 0.05, "{k}: ones fraction {f}");
        }
    }

    #[test]
    fn ones_fraction_drifts_with_retention() {
        let m = TlcModel::calibrated();
        let refs = m.default_refs();
        let fresh = m.state_params(OperatingPoint::fresh(), 1.0);
        let aged = m.state_params(OperatingPoint::new(1000, 25.0), 1.0);
        for k in PageKind::ALL {
            let a = m.ones_fraction(&fresh, &refs, k);
            let b = m.ones_fraction(&aged, &refs, k);
            assert!((a - b).abs() > 1e-4, "{k}: no drift ({a} vs {b})");
        }
    }
}
