//! Online read-threshold learning over device lifetime.
//!
//! The paper's evaluation hands every retry scheme an oracle: per-block
//! RBER/V_REF lookup tables baked from the characterization campaign
//! ([`crate::rber::BlockErrorTable`], [`crate::vref::optimal_voltages`]).
//! A real controller has no such oracle — it only sees decode outcomes.
//! Following the playbook of Peleato et al. ("Adaptive Read Thresholds
//! for NAND Flash") and Cai et al.'s retention-error characterization,
//! this module learns per-block read thresholds *online* from exactly
//! that feedback:
//!
//! * a **pass/fail** verdict per page group;
//! * the **retry count** a group needed before decoding;
//! * the **syndrome weight** of the first decode attempt (how close the
//!   page sat to the correction capability), normalized by ρs;
//! * when a corrective re-read ran, the V_REF offset the on-die
//!   ones-count estimation settled on (the Swift-Read / RVS mechanism of
//!   [`crate::swift_read::SwiftRead`]) — a noisy, unbiased observation
//!   of the true drift.
//!
//! [`ThresholdLearner`] folds these into a per-block scalar V_REF offset
//! (retention loss shifts all seven references down together, which is
//! also how vendor retry sequences step) via a *bounded-step feedback
//! controller*: every update moves the estimate by at most
//! [`LearnerConfig::max_step`] volts and clamps it into the model's
//! valid offset window, so a burst of noisy observations can never fling
//! the references outside the physically meaningful range.
//!
//! [`DriftClock`] complements the learner for long serving runs: it
//! converts simulated wall-clock time into additional retention age and
//! P/E wear, so a device visibly *drifts while serving* and the learner
//! has something to chase.
//!
//! Everything here is a pure function of its inputs — no RNG, no
//! ambient time — which is what lets the determinism suite pin
//! byte-identical learner state across thread counts.

use std::collections::BTreeMap;

use crate::vref::ReadVoltages;

/// Tuning of the bounded-step feedback controller.
///
/// # Example
///
/// ```
/// use rif_flash::learn::LearnerConfig;
///
/// let cfg = LearnerConfig::default_paper();
/// cfg.validate();
/// assert!(cfg.min_offset < cfg.max_offset);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnerConfig {
    /// Proportional gain toward a re-calibration target (0 < gain ≤ 1).
    pub gain: f64,
    /// Hard bound on the estimate change per update, in volts.
    pub max_step: f64,
    /// Downward nudge per failed decode that produced no re-calibration
    /// observation (scaled by the retry count).
    pub fail_step: f64,
    /// Syndrome-weight watermark, as a fraction of ρs: a *passing* read
    /// whose first-attempt weight exceeds this nudges the estimate down
    /// proactively (the learned replacement for SWR+'s oracle tracking).
    pub warn_frac: f64,
    /// Downward nudge applied on a warn-level pass.
    pub warn_step: f64,
    /// Tiny upward relaxation on a clean pass: lets the estimate track
    /// *backwards* drift (a block rewritten fresh needs less offset).
    pub relax_step: f64,
    /// Lower bound of the valid V_REF offset window, in volts.
    pub min_offset: f64,
    /// Upper bound of the valid V_REF offset window, in volts.
    pub max_offset: f64,
}

impl LearnerConfig {
    /// Defaults calibrated against the [`crate::vth::TlcModel`] drift
    /// range: a month of retention at 2K P/E shifts the optimal uniform
    /// offset by roughly −0.3 V, well inside the window.
    pub fn default_paper() -> Self {
        LearnerConfig {
            gain: 0.35,
            max_step: 0.05,
            fail_step: 0.012,
            warn_frac: 0.75,
            warn_step: 0.004,
            relax_step: 0.0008,
            min_offset: -0.6,
            max_offset: 0.1,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when any step is non-finite or non-positive where a
    /// positive value is required, or the offset window is empty.
    pub fn validate(&self) {
        assert!(
            self.gain.is_finite() && self.gain > 0.0 && self.gain <= 1.0,
            "gain must be in (0, 1]"
        );
        assert!(
            self.max_step.is_finite() && self.max_step > 0.0,
            "max_step must be positive"
        );
        for (name, v) in [
            ("fail_step", self.fail_step),
            ("warn_step", self.warn_step),
            ("relax_step", self.relax_step),
        ] {
            assert!(v.is_finite() && v >= 0.0, "{name} must be non-negative");
        }
        assert!(
            self.warn_frac.is_finite() && self.warn_frac > 0.0,
            "warn_frac must be positive"
        );
        assert!(
            self.min_offset.is_finite()
                && self.max_offset.is_finite()
                && self.min_offset < self.max_offset,
            "offset window must be a non-empty finite interval"
        );
        assert!(
            self.min_offset <= 0.0 && self.max_offset >= 0.0,
            "offset window must contain 0 (the default references)"
        );
    }
}

/// What the controller observed about one completed page-group read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOutcome {
    /// Whether the first decode attempt (at the learned references)
    /// failed and the group needed corrective action.
    pub failed: bool,
    /// Corrective rounds the group consumed (in-die and off-chip).
    pub retries: u32,
    /// First-attempt syndrome weight as a fraction of ρs (0 when the
    /// scheme exposes no weight signal to the controller).
    pub syndrome_frac: f64,
    /// Uniform V_REF offset a successful re-calibration settled on
    /// (ones-count inversion), when one ran.
    pub recalibrated_offset: Option<f64>,
}

impl ReadOutcome {
    /// A clean first-attempt pass with no weight signal.
    pub fn clean_pass() -> Self {
        ReadOutcome {
            failed: false,
            retries: 0,
            syndrome_frac: 0.0,
            recalibrated_offset: None,
        }
    }
}

/// Counters describing the learner's activity so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LearnerStats {
    /// Total [`ThresholdLearner::observe`] calls applied.
    pub updates: u64,
    /// Updates that consumed a re-calibration observation.
    pub recalibrations: u64,
    /// Updates whose step was cut short by the valid offset window.
    pub clamps: u64,
}

/// The per-block online threshold estimator.
///
/// # Example
///
/// ```
/// use rif_flash::learn::{LearnerConfig, ReadOutcome, ThresholdLearner};
///
/// let mut l = ThresholdLearner::new(LearnerConfig::default_paper());
/// assert_eq!(l.offset(7), 0.0); // untouched blocks read at the defaults
/// l.observe(
///     7,
///     &ReadOutcome {
///         failed: true,
///         retries: 1,
///         syndrome_frac: 1.4,
///         recalibrated_offset: Some(-0.2),
///     },
/// );
/// assert!(l.offset(7) < 0.0);
/// assert_eq!(l.stats().updates, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdLearner {
    cfg: LearnerConfig,
    /// Per-block estimated uniform V_REF offset. BTreeMap so iteration
    /// (and therefore every aggregate derived from it) is deterministic.
    est: BTreeMap<u64, f64>,
    stats: LearnerStats,
}

impl ThresholdLearner {
    /// Builds a learner.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`LearnerConfig::validate`]).
    pub fn new(cfg: LearnerConfig) -> Self {
        cfg.validate();
        ThresholdLearner {
            cfg,
            est: BTreeMap::new(),
            stats: LearnerStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &LearnerConfig {
        &self.cfg
    }

    /// Current offset estimate for a block (0 until first observed:
    /// an unknown block reads at the manufacturer defaults).
    pub fn offset(&self, block: u64) -> f64 {
        self.est.get(&block).copied().unwrap_or(0.0)
    }

    /// The references this block should be read at, derived from `base`
    /// (normally the model's default references). A uniform offset
    /// preserves strict ordering, and the window clamp keeps it in the
    /// model's valid range, so this can never panic.
    pub fn refs_for(&self, block: u64, base: ReadVoltages) -> ReadVoltages {
        base.offset_all(self.offset(block))
    }

    /// Folds one read outcome into the block's estimate.
    ///
    /// The controller is deliberately simple and bounded:
    ///
    /// * a re-calibration observation pulls the estimate toward it by
    ///   [`LearnerConfig::gain`] (an EMA over unbiased noisy targets —
    ///   this is the main convergence mechanism);
    /// * a failure without an observation nudges downward (retention
    ///   drift is downward) proportionally to the retry count;
    /// * a high-syndrome-weight pass nudges downward proactively;
    /// * a clean pass relaxes slightly upward, tracking rewrites.
    ///
    /// Every update is clamped to ±[`LearnerConfig::max_step`] and into
    /// the valid offset window. Pure: no randomness, no ambient state.
    pub fn observe(&mut self, block: u64, outcome: &ReadOutcome) {
        let est = self.offset(block);
        let c = &self.cfg;
        let raw = match outcome.recalibrated_offset {
            Some(target) if target.is_finite() => c.gain * (target - est),
            _ if outcome.failed => -c.fail_step * (1 + outcome.retries) as f64,
            _ if outcome.syndrome_frac > c.warn_frac => -c.warn_step,
            _ => c.relax_step,
        };
        let step = raw.clamp(-c.max_step, c.max_step);
        let next = est + step;
        let clamped = next.clamp(c.min_offset, c.max_offset);
        if clamped != next {
            self.stats.clamps += 1;
        }
        self.est.insert(block, clamped);
        self.stats.updates += 1;
        if outcome.recalibrated_offset.is_some() {
            self.stats.recalibrations += 1;
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> LearnerStats {
        self.stats
    }

    /// Number of blocks with a learned estimate.
    pub fn blocks_tracked(&self) -> usize {
        self.est.len()
    }

    /// Iterates `(block, offset)` estimates in block order.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.est.iter().map(|(&b, &o)| (b, o))
    }

    /// Mean absolute estimate error against a per-block ground truth
    /// (the oracle's optimal offset), over all tracked blocks. Returns 0
    /// when nothing is tracked.
    pub fn mean_abs_error(&self, oracle: impl Fn(u64) -> f64) -> f64 {
        if self.est.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.est.iter().map(|(&b, &o)| (o - oracle(b)).abs()).sum();
        sum / self.est.len() as f64
    }

    /// Snapshots the learner's estimates and counters for transfer (the
    /// cluster layer ships this across nodes during shard handoff).
    pub fn export_state(&self) -> LearnerState {
        LearnerState {
            estimates: self.est.iter().map(|(&b, &o)| (b, o)).collect(),
            stats: self.stats,
        }
    }

    /// Rebuilds a learner from a snapshot. Offsets are clamped into the
    /// configuration's valid window (the source may have run a different
    /// window), and the counters resume where the source left off — the
    /// continuity the cluster handoff test pins.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn restore(cfg: LearnerConfig, state: &LearnerState) -> Self {
        cfg.validate();
        ThresholdLearner {
            est: state
                .estimates
                .iter()
                .map(|&(b, o)| (b, o.clamp(cfg.min_offset, cfg.max_offset)))
                .collect(),
            stats: state.stats,
            cfg,
        }
    }
}

/// Why a learner-state text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnerStateError {
    /// The first line is not the expected `# rif-learner v1 ...` header.
    BadHeader,
    /// A line is not `block <id> <offset>` (1-based line number).
    BadLine(usize),
    /// A block offset is not a finite number (1-based line number).
    BadOffset(usize),
    /// A block id repeats (1-based line number of the repeat).
    DuplicateBlock(usize),
}

impl std::fmt::Display for LearnerStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnerStateError::BadHeader => write!(f, "missing or malformed rif-learner header"),
            LearnerStateError::BadLine(n) => write!(f, "line {n}: expected `block <id> <offset>`"),
            LearnerStateError::BadOffset(n) => write!(f, "line {n}: offset is not a finite number"),
            LearnerStateError::DuplicateBlock(n) => write!(f, "line {n}: duplicate block id"),
        }
    }
}

impl std::error::Error for LearnerStateError {}

/// A portable snapshot of a [`ThresholdLearner`]: per-block estimates
/// plus the activity counters, with a strict line-oriented text codec
/// for the wire.
///
/// # Example
///
/// ```
/// use rif_flash::learn::{LearnerConfig, LearnerState, ReadOutcome, ThresholdLearner};
///
/// let mut l = ThresholdLearner::new(LearnerConfig::default_paper());
/// l.observe(7, &ReadOutcome { failed: true, retries: 1, syndrome_frac: 0.0, recalibrated_offset: None });
/// let text = l.export_state().to_text();
/// let restored = ThresholdLearner::restore(
///     LearnerConfig::default_paper(),
///     &LearnerState::parse_text(&text).unwrap(),
/// );
/// assert_eq!(restored.offset(7), l.offset(7));
/// assert_eq!(restored.stats(), l.stats());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LearnerState {
    /// `(block, offset)` estimates in strictly increasing block order.
    pub estimates: Vec<(u64, f64)>,
    /// Activity counters carried across the handoff.
    pub stats: LearnerStats,
}

impl LearnerState {
    /// Canonical text serialization: one header line with the counters,
    /// then one `block <id> <offset>` line per estimate in block order.
    /// Offsets print in shortest-roundtrip form, so
    /// `parse_text(to_text())` is exact.
    pub fn to_text(&self) -> String {
        self.to_text_capped(usize::MAX)
    }

    /// As [`to_text`](Self::to_text), but stops adding block lines once
    /// the next line would push the text past `max_bytes`. The learner
    /// state is a performance hint, so a transfer bounded by the wire's
    /// frame cap simply carries the lowest-numbered blocks that fit.
    pub fn to_text_capped(&self, max_bytes: usize) -> String {
        let s = &self.stats;
        let mut out = format!(
            "# rif-learner v1 updates={} recalibrations={} clamps={}\n",
            s.updates, s.recalibrations, s.clamps
        );
        for &(b, o) in &self.estimates {
            let line = format!("block {b} {o:?}\n");
            if out.len() + line.len() > max_bytes {
                break;
            }
            out.push_str(&line);
        }
        out
    }

    /// Strict parse of the text form. Blank lines are rejected — the
    /// codec is canonical, not forgiving.
    pub fn parse_text(text: &str) -> Result<LearnerState, LearnerStateError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(LearnerStateError::BadHeader)?;
        let rest = header
            .strip_prefix("# rif-learner v1 ")
            .ok_or(LearnerStateError::BadHeader)?;
        let mut stats = LearnerStats::default();
        let mut fields = rest.split(' ');
        for (name, slot) in [
            ("updates", &mut stats.updates as &mut u64),
            ("recalibrations", &mut stats.recalibrations),
            ("clamps", &mut stats.clamps),
        ] {
            let kv = fields.next().ok_or(LearnerStateError::BadHeader)?;
            let v = kv
                .strip_prefix(name)
                .and_then(|s| s.strip_prefix('='))
                .ok_or(LearnerStateError::BadHeader)?;
            *slot = v.parse().map_err(|_| LearnerStateError::BadHeader)?;
        }
        if fields.next().is_some() {
            return Err(LearnerStateError::BadHeader);
        }

        let mut estimates: Vec<(u64, f64)> = Vec::new();
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            let mut parts = line.split(' ');
            if parts.next() != Some("block") {
                return Err(LearnerStateError::BadLine(lineno));
            }
            let (Some(id), Some(off), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(LearnerStateError::BadLine(lineno));
            };
            let id: u64 = id.parse().map_err(|_| LearnerStateError::BadLine(lineno))?;
            let off: f64 = off
                .parse()
                .map_err(|_| LearnerStateError::BadOffset(lineno))?;
            if !off.is_finite() {
                return Err(LearnerStateError::BadOffset(lineno));
            }
            if let Some(&(last, _)) = estimates.last() {
                if id <= last {
                    return Err(LearnerStateError::DuplicateBlock(lineno));
                }
            }
            estimates.push((id, off));
        }
        Ok(LearnerState { estimates, stats })
    }
}

/// Advances retention age and P/E wear during long runs.
///
/// Simulated I/O time is microseconds while drift acts over days, so
/// the clock applies a time-acceleration factor: `days_per_sec` extra
/// retention days and `pe_per_sec` extra program/erase cycles per
/// simulated second. Disabled (all zero) it contributes exactly nothing
/// — the oracle-mode golden outputs depend on that.
///
/// # Example
///
/// ```
/// use rif_flash::learn::DriftClock;
///
/// let d = DriftClock { days_per_sec: 400.0, pe_per_sec: 0.0 };
/// assert!(d.enabled());
/// assert!((d.extra_days(0.01) - 4.0).abs() < 1e-12);
/// assert_eq!(DriftClock::disabled().extra_pe(10.0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftClock {
    /// Extra retention days per simulated second.
    pub days_per_sec: f64,
    /// Extra P/E cycles per simulated second.
    pub pe_per_sec: f64,
}

impl DriftClock {
    /// The no-drift clock (the paper's static operating points).
    pub fn disabled() -> Self {
        DriftClock {
            days_per_sec: 0.0,
            pe_per_sec: 0.0,
        }
    }

    /// True when the clock advances anything.
    pub fn enabled(&self) -> bool {
        self.days_per_sec > 0.0 || self.pe_per_sec > 0.0
    }

    /// Checks the rates are usable.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite rates.
    pub fn validate(&self) {
        assert!(
            self.days_per_sec.is_finite() && self.days_per_sec >= 0.0,
            "days_per_sec must be finite and non-negative"
        );
        assert!(
            self.pe_per_sec.is_finite() && self.pe_per_sec >= 0.0,
            "pe_per_sec must be finite and non-negative"
        );
    }

    /// Retention days accrued after `elapsed_secs` of simulated time.
    pub fn extra_days(&self, elapsed_secs: f64) -> f64 {
        self.days_per_sec * elapsed_secs.max(0.0)
    }

    /// P/E cycles accrued after `elapsed_secs` of simulated time.
    pub fn extra_pe(&self, elapsed_secs: f64) -> u32 {
        let x = self.pe_per_sec * elapsed_secs.max(0.0);
        if x >= u32::MAX as f64 {
            u32::MAX
        } else {
            x as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vth::TlcModel;

    fn learner() -> ThresholdLearner {
        ThresholdLearner::new(LearnerConfig::default_paper())
    }

    #[test]
    fn untouched_blocks_read_at_defaults() {
        let l = learner();
        assert_eq!(l.offset(0), 0.0);
        assert_eq!(l.blocks_tracked(), 0);
        let model = TlcModel::calibrated();
        let base = ReadVoltages::new(model.default_refs());
        assert_eq!(l.refs_for(42, base), base);
    }

    #[test]
    fn recalibration_pulls_toward_target() {
        let mut l = learner();
        let target = -0.2;
        for _ in 0..60 {
            l.observe(
                3,
                &ReadOutcome {
                    failed: true,
                    retries: 1,
                    syndrome_frac: 1.2,
                    recalibrated_offset: Some(target),
                },
            );
        }
        assert!((l.offset(3) - target).abs() < 0.01, "est {}", l.offset(3));
        assert_eq!(l.stats().recalibrations, 60);
    }

    #[test]
    fn steps_are_bounded() {
        let mut l = learner();
        l.observe(
            1,
            &ReadOutcome {
                failed: true,
                retries: 4,
                syndrome_frac: 3.0,
                recalibrated_offset: Some(-10.0),
            },
        );
        let max = l.config().max_step;
        assert!(l.offset(1) >= -max - 1e-12, "first step {}", l.offset(1));
    }

    #[test]
    fn estimates_never_leave_window() {
        let mut l = learner();
        for i in 0..500u64 {
            // 250 pulls toward -100, then 250 toward +100: both walks
            // must run into the window and stop there.
            let target = if i < 250 { -100.0 } else { 100.0 };
            l.observe(
                0,
                &ReadOutcome {
                    failed: true,
                    retries: 3,
                    syndrome_frac: 5.0,
                    recalibrated_offset: Some(target),
                },
            );
            let o = l.offset(0);
            assert!(
                (l.config().min_offset..=l.config().max_offset).contains(&o),
                "offset {o} escaped"
            );
        }
        assert!(l.stats().clamps > 0, "window never engaged");
    }

    #[test]
    fn fail_without_recal_steps_down_and_pass_relaxes_up() {
        let mut l = learner();
        l.observe(
            9,
            &ReadOutcome {
                failed: true,
                retries: 2,
                syndrome_frac: 0.0,
                recalibrated_offset: None,
            },
        );
        let after_fail = l.offset(9);
        assert!(after_fail < 0.0);
        l.observe(9, &ReadOutcome::clean_pass());
        assert!(l.offset(9) > after_fail);
    }

    #[test]
    fn warn_weight_nudges_down_proactively() {
        let mut l = learner();
        l.observe(
            5,
            &ReadOutcome {
                failed: false,
                retries: 0,
                syndrome_frac: 0.9,
                recalibrated_offset: None,
            },
        );
        assert!(l.offset(5) < 0.0, "warn pass did not step down");
    }

    #[test]
    fn observe_is_pure_and_deterministic() {
        let outcomes: Vec<ReadOutcome> = (0..200)
            .map(|i| ReadOutcome {
                failed: i % 3 == 0,
                retries: (i % 4) as u32,
                syndrome_frac: (i % 7) as f64 / 5.0,
                recalibrated_offset: if i % 5 == 0 {
                    Some(-0.01 * (i % 30) as f64)
                } else {
                    None
                },
            })
            .collect();
        let run = || {
            let mut l = learner();
            for (i, o) in outcomes.iter().enumerate() {
                l.observe((i % 8) as u64, o);
            }
            l.estimates()
                .map(|(b, o)| (b, o.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same stream, different estimates");
    }

    #[test]
    fn mean_abs_error_tracks_oracle() {
        let mut l = learner();
        for _ in 0..80 {
            l.observe(
                1,
                &ReadOutcome {
                    failed: true,
                    retries: 1,
                    syndrome_frac: 1.0,
                    recalibrated_offset: Some(-0.25),
                },
            );
        }
        let err = l.mean_abs_error(|_| -0.25);
        assert!(err < 0.01, "error {err}");
        assert_eq!(learner().mean_abs_error(|_| 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "offset window")]
    fn config_rejects_empty_window() {
        let mut c = LearnerConfig::default_paper();
        c.min_offset = 0.2;
        ThresholdLearner::new(c);
    }

    #[test]
    fn drift_clock_accrues_linearly() {
        let d = DriftClock {
            days_per_sec: 100.0,
            pe_per_sec: 50_000.0,
        };
        d.validate();
        assert!((d.extra_days(0.5) - 50.0).abs() < 1e-12);
        assert_eq!(d.extra_pe(0.5), 25_000);
        assert_eq!(d.extra_days(-1.0), 0.0);
        assert!(!DriftClock::disabled().enabled());
        DriftClock::disabled().validate();
    }

    #[test]
    fn state_roundtrips_through_text_exactly() {
        let mut l = learner();
        for i in 0..40u64 {
            l.observe(
                i * 7,
                &ReadOutcome {
                    failed: i % 3 == 0,
                    retries: (i % 4) as u32,
                    syndrome_frac: 0.9,
                    recalibrated_offset: if i % 5 == 0 { Some(-0.31) } else { None },
                },
            );
        }
        let state = l.export_state();
        let parsed = LearnerState::parse_text(&state.to_text()).unwrap();
        assert_eq!(parsed, state);
        let restored = ThresholdLearner::restore(LearnerConfig::default_paper(), &parsed);
        assert_eq!(restored.stats(), l.stats());
        for i in 0..40u64 {
            assert_eq!(restored.offset(i * 7), l.offset(i * 7));
        }
    }

    #[test]
    fn state_parse_rejects_malformed_text() {
        use LearnerStateError as E;
        let cases = [
            ("", E::BadHeader),
            (
                "# rif-learner v2 updates=0 recalibrations=0 clamps=0\n",
                E::BadHeader,
            ),
            (
                "# rif-learner v1 updates=x recalibrations=0 clamps=0\n",
                E::BadHeader,
            ),
            ("# rif-learner v1 updates=0 recalibrations=0\n", E::BadHeader),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0 extra=1\n",
                E::BadHeader,
            ),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0\nblk 1 0.0\n",
                E::BadLine(2),
            ),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0\nblock 1\n",
                E::BadLine(2),
            ),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0\nblock 1 0.0 9\n",
                E::BadLine(2),
            ),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0\nblock 1 NaN\n",
                E::BadOffset(2),
            ),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0\nblock 2 0.0\nblock 1 0.0\n",
                E::DuplicateBlock(3),
            ),
            (
                "# rif-learner v1 updates=0 recalibrations=0 clamps=0\nblock 1 0.0\n\nblock 2 0.0\n",
                E::BadLine(3),
            ),
        ];
        for (text, want) in cases {
            assert_eq!(LearnerState::parse_text(text), Err(want), "text {text:?}");
        }
    }

    #[test]
    fn restore_clamps_into_the_new_window() {
        let state = LearnerState {
            estimates: vec![(1, -5.0), (2, 5.0)],
            stats: LearnerStats::default(),
        };
        let cfg = LearnerConfig::default_paper();
        let l = ThresholdLearner::restore(cfg, &state);
        assert_eq!(l.offset(1), cfg.min_offset);
        assert_eq!(l.offset(2), cfg.max_offset);
    }

    #[test]
    fn capped_export_keeps_header_and_prefix() {
        let state = LearnerState {
            estimates: (0..100).map(|i| (i, -0.01)).collect(),
            stats: LearnerStats::default(),
        };
        let full = state.to_text();
        let capped = state.to_text_capped(120);
        assert!(capped.len() <= 120);
        assert!(full.starts_with(&capped));
        let parsed = LearnerState::parse_text(&capped).unwrap();
        assert!(parsed.estimates.len() < 100);
        assert!(!parsed.estimates.is_empty());
    }

    #[test]
    #[should_panic(expected = "days_per_sec")]
    fn drift_clock_rejects_nan() {
        DriftClock {
            days_per_sec: f64::NAN,
            pe_per_sec: 0.0,
        }
        .validate();
    }
}
