//! SSD / flash-array geometry and physical page addressing.

use std::fmt;

/// The physical organization of the flash array (Table I).
///
/// # Example
///
/// ```
/// use rif_flash::FlashGeometry;
///
/// let g = FlashGeometry::paper();
/// assert_eq!(g.channels, 8);
/// // Table I: "2-TiB total capacity".
/// let tib = g.capacity_bytes() as f64 / (1u64 << 40) as f64;
/// assert!(tib > 2.0 && tib < 2.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Number of flash channels.
    pub channels: usize,
    /// Dies per channel.
    pub dies_per_channel: usize,
    /// Planes per die.
    pub planes_per_die: usize,
    /// Blocks per plane.
    pub blocks_per_plane: usize,
    /// Pages per block.
    pub pages_per_block: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
}

impl FlashGeometry {
    /// Table I geometry: 8 channels × 4 dies × 4 planes × 1888 blocks ×
    /// 576 pages × 16 KiB ≈ 2 TiB.
    pub fn paper() -> Self {
        FlashGeometry {
            channels: 8,
            dies_per_channel: 4,
            planes_per_die: 4,
            blocks_per_plane: 1888,
            pages_per_block: 576,
            page_bytes: 16 * 1024,
        }
    }

    /// A scaled-down geometry for fast tests and examples (same channel /
    /// die / plane topology, fewer blocks).
    pub fn small() -> Self {
        FlashGeometry {
            channels: 8,
            dies_per_channel: 4,
            planes_per_die: 4,
            blocks_per_plane: 64,
            pages_per_block: 64,
            page_bytes: 16 * 1024,
        }
    }

    /// Total number of planes in the SSD.
    pub fn total_planes(&self) -> usize {
        self.channels * self.dies_per_channel * self.planes_per_die
    }

    /// Total number of blocks in the SSD.
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() as u64 * self.blocks_per_plane as u64
    }

    /// Total number of pages in the SSD.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Bytes sensed by one multi-plane read (all planes of a die at once):
    /// 16 KiB × 4 planes = 64 KiB in the paper's configuration (§III-B3).
    pub fn multiplane_read_bytes(&self) -> usize {
        self.page_bytes * self.planes_per_die
    }

    /// Validates a page address against this geometry.
    pub fn contains(&self, a: PageAddress) -> bool {
        a.channel < self.channels
            && a.die < self.dies_per_channel
            && a.plane < self.planes_per_die
            && a.block < self.blocks_per_plane
            && a.page < self.pages_per_block
    }

    /// Flattens a page address to a dense index in `[0, total_pages)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside this geometry.
    pub fn page_index(&self, a: PageAddress) -> u64 {
        assert!(self.contains(a), "address {a:?} outside geometry");
        (((a.channel as u64 * self.dies_per_channel as u64 + a.die as u64)
            * self.planes_per_die as u64
            + a.plane as u64)
            * self.blocks_per_plane as u64
            + a.block as u64)
            * self.pages_per_block as u64
            + a.page as u64
    }

    /// Inverse of [`FlashGeometry::page_index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= total_pages`.
    pub fn page_at(&self, idx: u64) -> PageAddress {
        assert!(idx < self.total_pages(), "page index {idx} out of range");
        let page = (idx % self.pages_per_block as u64) as usize;
        let rest = idx / self.pages_per_block as u64;
        let block = (rest % self.blocks_per_plane as u64) as usize;
        let rest = rest / self.blocks_per_plane as u64;
        let plane = (rest % self.planes_per_die as u64) as usize;
        let rest = rest / self.planes_per_die as u64;
        let die = (rest % self.dies_per_channel as u64) as usize;
        let channel = (rest / self.dies_per_channel as u64) as usize;
        PageAddress {
            channel,
            die,
            plane,
            block,
            page,
        }
    }

    /// Flattens the block portion of an address to a dense index in
    /// `[0, total_blocks)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is outside this geometry.
    pub fn block_index(&self, a: PageAddress) -> u64 {
        assert!(self.contains(a), "address {a:?} outside geometry");
        ((a.channel as u64 * self.dies_per_channel as u64 + a.die as u64)
            * self.planes_per_die as u64
            + a.plane as u64)
            * self.blocks_per_plane as u64
            + a.block as u64
    }
}

/// A physical page address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageAddress {
    /// Channel index.
    pub channel: usize,
    /// Die index within the channel.
    pub die: usize,
    /// Plane index within the die.
    pub plane: usize,
    /// Block index within the plane.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

impl PageAddress {
    /// The page kind (which bit of the TLC cell this page stores), derived
    /// from the page's position in the block: consecutive pages of a
    /// wordline hold the LSB, CSB and MSB pages.
    pub fn kind(&self) -> PageKind {
        match self.page % 3 {
            0 => PageKind::Lsb,
            1 => PageKind::Csb,
            2 => PageKind::Msb,
            _ => unreachable!(),
        }
    }
}

impl fmt::Display for PageAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}/d{}/pl{}/b{}/p{}",
            self.channel, self.die, self.plane, self.block, self.page
        )
    }
}

/// Which of the three TLC bits a page stores (paper §II-A1).
///
/// Each kind reads with a different subset of the seven read-reference
/// voltages, so the kinds have distinct RBER profiles — and, in Sentinel,
/// distinct sentinel-cell read requirements (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Least-significant bit page (2 read references).
    Lsb,
    /// Center bit page (3 read references).
    Csb,
    /// Most-significant bit page (2 read references).
    Msb,
}

impl PageKind {
    /// All three kinds in wordline order.
    pub const ALL: [PageKind; 3] = [PageKind::Lsb, PageKind::Csb, PageKind::Msb];
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageKind::Lsb => write!(f, "LSB"),
            PageKind::Csb => write!(f, "CSB"),
            PageKind::Msb => write!(f, "MSB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_is_two_tib() {
        let g = FlashGeometry::paper();
        assert_eq!(g.total_planes(), 128);
        assert_eq!(g.total_blocks(), 128 * 1888);
        let capacity = g.capacity_bytes();
        let two_tib = 2u64 << 40;
        assert!(capacity > two_tib, "capacity {capacity}");
        assert!(capacity < two_tib + (two_tib / 10));
        assert_eq!(g.multiplane_read_bytes(), 64 * 1024);
    }

    #[test]
    fn page_index_roundtrip() {
        let g = FlashGeometry::small();
        for idx in [0u64, 1, 12345, g.total_pages() - 1] {
            let a = g.page_at(idx);
            assert!(g.contains(a));
            assert_eq!(g.page_index(a), idx);
        }
    }

    #[test]
    fn page_index_is_dense_and_unique() {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 3,
            pages_per_block: 4,
            page_bytes: 16384,
        };
        let mut seen = std::collections::HashSet::new();
        for idx in 0..g.total_pages() {
            let a = g.page_at(idx);
            assert!(seen.insert(g.page_index(a)));
        }
        assert_eq!(seen.len() as u64, g.total_pages());
    }

    #[test]
    fn block_index_groups_pages() {
        let g = FlashGeometry::small();
        let a = g.page_at(777);
        let mut b = a;
        b.page = (a.page + 1) % g.pages_per_block;
        assert_eq!(g.block_index(a), g.block_index(b));
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = FlashGeometry::small();
        let mut a = g.page_at(0);
        a.channel = g.channels;
        assert!(!g.contains(a));
    }

    #[test]
    fn page_kind_cycles_lsb_csb_msb() {
        let mut a = FlashGeometry::small().page_at(0);
        a.page = 0;
        assert_eq!(a.kind(), PageKind::Lsb);
        a.page = 1;
        assert_eq!(a.kind(), PageKind::Csb);
        a.page = 2;
        assert_eq!(a.kind(), PageKind::Msb);
        a.page = 3;
        assert_eq!(a.kind(), PageKind::Lsb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_at_rejects_overflow() {
        let g = FlashGeometry::small();
        let _ = g.page_at(g.total_pages());
    }
}
