//! 3D TLC NAND flash substrate: geometry, threshold-voltage physics,
//! error-rate models, read-reference-voltage machinery and chip timing.
//!
//! The paper grounds its evaluation in a real-device characterization of
//! 160 3D TLC NAND chips (§III-A); the extended MQSim-E then replays those
//! results through per-block RBER lookup tables (§VI-A). We do not have the
//! chips, so this crate builds the closest synthetic equivalent:
//!
//! * [`geometry`] — channels / dies / planes / blocks / pages addressing
//!   (Table I: 8 × 4 × 4 × 1888 × 576 × 16 KiB ≈ 2 TiB);
//! * [`vth`] — an 8-state Gaussian threshold-voltage model with Gray-coded
//!   LSB/CSB/MSB pages, P/E-cycling wear, retention loss and read disturb;
//!   RBER is obtained by integrating distribution overlap at the active
//!   read-reference voltages;
//! * [`rber`] — [`rber::ErrorModel`]: calibrated constants (Fig. 4 anchors),
//!   log-normal per-block process variation, and fast per-block interpolated
//!   lookup tables exactly as the extended MQSim-E consumes them;
//! * [`vref`] — read-reference voltage sets, the vendor retry sequence, and
//!   numerically optimal V_REF via distribution-intersection search;
//! * [`swift_read`] — the ones-count V_REF estimation of Swift-Read
//!   (ISSCC'22), which the RVS module of a RiF die reuses (§IV-C);
//! * [`learn`] — online per-block threshold learning from decode feedback
//!   (pass/fail, retry counts, syndrome weight, re-calibration
//!   observations) and the lifetime drift clock for long serving runs;
//! * [`randomizer`] — the LFSR data scrambler that justifies the uniform
//!   intra-page error distribution (Fig. 12);
//! * [`chip`] — flash command timing (tR / tPROG / tBERS / page-buffer
//!   readout) shared with the SSD simulator;
//! * [`characterize`] — the synthetic "160-chip campaign" regenerating
//!   Fig. 4 (retention-to-failure distributions) and Fig. 12 (chunk RBER
//!   similarity).

pub mod characterize;
pub mod chip;
pub mod geometry;
pub mod learn;
pub mod mlc;
pub mod randomizer;
pub mod rber;
pub mod sentinel;
pub mod soft;
pub mod swift_read;
pub mod vref;
pub mod vth;

pub use chip::FlashTiming;
pub use geometry::{FlashGeometry, PageAddress, PageKind};
pub use learn::{DriftClock, LearnerConfig, ReadOutcome, ThresholdLearner};
pub use rber::{BlockProfile, ErrorModel};
pub use vref::ReadVoltages;
pub use vth::OperatingPoint;
pub use vth::TlcModel;
