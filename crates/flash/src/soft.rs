//! Soft sensing: multi-level re-reads that turn a page into per-bit
//! reliabilities.
//!
//! When even a V_REF-adjusted hard read cannot be decoded, modern SSDs
//! fall back to *soft sensing*: the page is re-sensed at `L` reference
//! offsets around each decision boundary, binning every cell by how far
//! its V_TH sits from the boundary. The bins map onto log-likelihood
//! ratios that the LDPC engine decodes far beyond its hard-decision
//! capability (this tier sits below the read-retry flow the paper
//! optimizes — RiF makes it nearly unreachable, but a complete SSD model
//! needs it).
//!
//! [`SoftSense`] bridges the physical V_TH model to the
//! [`rif_ldpc::SoftChannel`] abstraction: it computes the equivalent
//! binary-AWGN separation for a page under stress, discounted by a
//! quantization efficiency that grows with the number of sensing levels,
//! and prices the extra senses in die time.

use rif_events::SimDuration;
use rif_ldpc::model::normal_quantile;
use rif_ldpc::SoftChannel;

use crate::chip::FlashTiming;
use crate::geometry::PageKind;
use crate::vth::{OperatingPoint, TlcModel};

/// Soft-sensing model over a V_TH model.
///
/// # Example
///
/// ```
/// use rif_flash::soft::SoftSense;
/// use rif_flash::{TlcModel, PageKind, OperatingPoint, FlashTiming};
///
/// let ss = SoftSense::new(TlcModel::calibrated());
/// // A page just past the hard capability (1K P/E, 12 days retention)...
/// let op = OperatingPoint::new(1000, 12.0);
/// // ...costs seven senses to read softly...
/// assert_eq!(ss.sense_latency(7, &FlashTiming::paper()).as_us(), 280.0);
/// // ...and yields a channel whose effective error rate stays moderate.
/// let ch = ss.soft_channel(op, 1.0, PageKind::Csb, 7);
/// assert!(ch.hard_error_rate() < 0.03);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SoftSense {
    model: TlcModel,
    default_refs: [f64; 7],
}

impl SoftSense {
    /// Builds a soft-sensing model.
    pub fn new(model: TlcModel) -> Self {
        let default_refs = model.default_refs();
        SoftSense {
            model,
            default_refs,
        }
    }

    /// Quantization efficiency of `levels`-level sensing on the
    /// equivalent-AWGN separation: 1 level (a hard read) recovers half of
    /// the full-soft separation, and each added level closes most of the
    /// remaining gap — the standard diminishing-returns shape of soft-read
    /// ladders.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn quantization_efficiency(levels: usize) -> f64 {
        assert!(levels > 0, "need at least one sensing level");
        1.0 - 0.5 / levels as f64
    }

    /// The equivalent soft channel for a page of `kind` under stress `op`,
    /// sensed at `levels` reference offsets.
    ///
    /// The page's hard RBER `r` corresponds to a full-soft separation
    /// `μ = −Φ⁻¹(r)`; quantization discounts it, and the result is
    /// re-expressed as a [`SoftChannel`] (whose constructor takes the
    /// equivalent hard error rate `Φ(−ημ)`).
    pub fn soft_channel(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        kind: PageKind,
        levels: usize,
    ) -> SoftChannel {
        self.soft_channel_at(op, process_factor, &self.default_refs, kind, levels)
    }

    /// Like [`SoftSense::soft_channel`] but sensing around arbitrary
    /// center references — in a real recovery ladder soft sensing runs at
    /// the best references found by the retry tier, not the defaults.
    pub fn soft_channel_at(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        refs: &[f64; 7],
        kind: PageKind,
        levels: usize,
    ) -> SoftChannel {
        let rber = self
            .model
            .rber(op, process_factor, refs, kind)
            .clamp(1e-9, 0.4999);
        let mu_full = -normal_quantile(rber);
        let mu_eff = mu_full * Self::quantization_efficiency(levels);
        let eff_rber = rif_ldpc::model::normal_cdf(-mu_eff).clamp(1e-12, 0.4999);
        SoftChannel::new(eff_rber)
    }

    /// Die occupancy of `levels`-level soft sensing: one tR per level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero.
    pub fn sense_latency(&self, levels: usize, timing: &FlashTiming) -> SimDuration {
        assert!(levels > 0, "need at least one sensing level");
        timing.t_r * levels as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimRng;
    use rif_ldpc::bits::BitVec;
    use rif_ldpc::decoder::MinSumDecoder;
    use rif_ldpc::QcLdpcCode;

    #[test]
    fn efficiency_monotone_and_bounded() {
        let mut last = 0.0;
        for l in 1..=16 {
            let e = SoftSense::quantization_efficiency(l);
            assert!(e > last && e < 1.0, "level {l}: {e}");
            last = e;
        }
        assert_eq!(SoftSense::quantization_efficiency(1), 0.5);
    }

    #[test]
    fn more_levels_better_channel() {
        let ss = SoftSense::new(TlcModel::calibrated());
        let op = OperatingPoint::new(2000, 28.0);
        let e3 = ss.soft_channel(op, 1.0, PageKind::Csb, 3).hard_error_rate();
        let e7 = ss.soft_channel(op, 1.0, PageKind::Csb, 7).hard_error_rate();
        assert!(e7 < e3, "7-level {e7} not better than 3-level {e3}");
    }

    #[test]
    fn latency_linear_in_levels() {
        let ss = SoftSense::new(TlcModel::calibrated());
        let t = FlashTiming::paper();
        assert_eq!(ss.sense_latency(1, &t).as_us(), 40.0);
        assert_eq!(ss.sense_latency(3, &t).as_us(), 120.0);
    }

    #[test]
    fn soft_path_rescues_pages_beyond_hard_retry() {
        // End to end: a page whose *hard* RBER sits past the hard-decision
        // capability (so hard decoding mostly fails) still decodes through
        // 7-level soft sensing. For a rate-8/9 code the soft gain is about
        // 2× in RBER — the test targets the window between the two
        // waterfalls (small_test's hard capability ≈ 0.011).
        let model = TlcModel::calibrated();
        let ss = SoftSense::new(model.clone());
        let code = QcLdpcCode::small_test();
        let dec = MinSumDecoder::new(&code);
        let mut rng = SimRng::seed_from(11);

        // Find the block-variation factor putting the hard RBER at ~0.0125.
        let op = OperatingPoint::new(2000, 28.0);
        let refs = model.default_refs();
        let (mut lo, mut hi) = (0.5f64, 2.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if model.rber(op, mid, &refs, PageKind::Csb) < 0.0125 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let factor = 0.5 * (lo + hi);
        let hard_rber = model.rber(op, factor, &refs, PageKind::Csb);
        assert!(
            (0.012..0.014).contains(&hard_rber),
            "premise: hard RBER {hard_rber}"
        );

        let ch = ss.soft_channel(op, factor, PageKind::Csb, 7);
        let trials = 12;
        let mut hard_ok = 0;
        let mut soft_ok = 0;
        for _ in 0..trials {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = rif_ldpc::Bsc::new(hard_rber).corrupt(&cw, &mut rng);
            if dec.decode(&noisy).success {
                hard_ok += 1;
            }
            let out = dec.decode_llr(&ch.transmit(&cw, &mut rng));
            if out.success && out.decoded == cw {
                soft_ok += 1;
            }
        }
        assert!(
            hard_ok <= trials / 2,
            "hard decoding too strong: {hard_ok}/{trials}"
        );
        assert!(
            soft_ok >= trials * 2 / 3,
            "soft rescue too weak: {soft_ok}/{trials}"
        );
        assert!(
            soft_ok > hard_ok,
            "soft ({soft_ok}) did not beat hard ({hard_ok})"
        );
    }
}
