//! Sentinel-cell V_REF estimation (Li et al., MICRO'20; paper §III-B).
//!
//! Sentinel stores a *known* bit pattern in spare cells of every page.
//! After a decode failure, the controller re-reads the page, compares the
//! sentinel cells against the expected pattern, and converts the observed
//! sentinel error rate into a V_TH-drift estimate from which near-optimal
//! references follow. Unlike Swift-Read's ones-count (which works on any
//! sensed data), reading the sentinel cells of a CSB/MSB page requires
//! reference voltages different from the failed read's — costing the
//! extra off-chip read the paper's §III-B analysis charges to SENC.

use rif_events::SimRng;

use crate::geometry::PageKind;
use crate::vref::ReadVoltages;
use crate::vth::{OperatingPoint, TlcModel};

/// The sentinel-cell estimator.
///
/// # Example
///
/// ```
/// use rif_flash::sentinel::SentinelCells;
/// use rif_flash::{TlcModel, PageKind, OperatingPoint};
/// use rif_events::SimRng;
///
/// let s = SentinelCells::new(TlcModel::calibrated());
/// let mut rng = SimRng::seed_from(2);
/// let op = OperatingPoint::new(1000, 20.0);
/// let refs = s.select_refs(op, 1.0, PageKind::Csb, &mut rng);
/// let m = TlcModel::calibrated();
/// assert!(m.rber(op, 1.0, refs.as_array(), PageKind::Csb) < 0.0085);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SentinelCells {
    model: TlcModel,
    default_refs: [f64; 7],
    cells: usize,
}

impl SentinelCells {
    /// Builds an estimator with the default 2 048 sentinel cells per page
    /// (a typical spare-area budget).
    pub fn new(model: TlcModel) -> Self {
        Self::with_cells(model, 2048)
    }

    /// Builds an estimator with a custom sentinel-cell count.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    pub fn with_cells(model: TlcModel, cells: usize) -> Self {
        assert!(cells > 0, "need at least one sentinel cell");
        let default_refs = model.default_refs();
        SentinelCells {
            model,
            default_refs,
            cells,
        }
    }

    /// Number of sentinel cells per page.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// True when reading this page kind's sentinel cells needs reference
    /// voltages different from the page's own read — forcing a separate
    /// off-chip read (the SENC overhead of §III-B). In our TLC mapping
    /// only the LSB read shares its references.
    pub fn needs_separate_read(kind: PageKind) -> bool {
        kind != PageKind::Lsb
    }

    /// Simulates the measurement: reads the sentinel cells at the default
    /// references and returns the observed error rate against the known
    /// pattern (true RBER plus binomial sampling noise over the cells).
    pub fn observe_error_rate(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        kind: PageKind,
        rng: &mut SimRng,
    ) -> f64 {
        let p = self
            .model
            .rber(op, process_factor, &self.default_refs, kind);
        let noise = (p * (1.0 - p) / self.cells as f64).sqrt();
        (p + rng.gaussian_with(0.0, noise)).clamp(0.0, 1.0)
    }

    /// Inverts an observed sentinel error rate into an effective
    /// retention age (the drift magnitude) and returns the optimal
    /// references for that age.
    pub fn refs_from_error_rate(
        &self,
        pe_cycles: u32,
        kind: PageKind,
        observed_rber: f64,
    ) -> ReadVoltages {
        let rber_of = |days: f64| {
            self.model.rber(
                OperatingPoint::new(pe_cycles, days),
                1.0,
                &self.default_refs,
                kind,
            )
        };
        let (mut lo, mut hi) = (0.0_f64, 60.0_f64);
        let target = observed_rber.clamp(rber_of(lo), rber_of(hi));
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if rber_of(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let est_days = 0.5 * (lo + hi);
        let params = self
            .model
            .state_params(OperatingPoint::new(pe_cycles, est_days), 1.0);
        ReadVoltages::new(self.model.optimal_refs(params))
    }

    /// Full Sentinel flow: measure the sentinel error rate, invert it,
    /// select references.
    pub fn select_refs(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        kind: PageKind,
        rng: &mut SimRng,
    ) -> ReadVoltages {
        let observed = self.observe_error_rate(op, process_factor, kind, rng);
        self.refs_from_error_rate(op.pe_cycles, kind, observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_refs_recover_aged_pages() {
        let model = TlcModel::calibrated();
        let s = SentinelCells::new(model.clone());
        let mut rng = SimRng::seed_from(4);
        for &(pe, days) in &[(0u32, 25.0), (1000, 18.0), (2000, 12.0)] {
            let op = OperatingPoint::new(pe, days);
            for kind in PageKind::ALL {
                let refs = s.select_refs(op, 1.0, kind, &mut rng);
                let rber = model.rber(op, 1.0, refs.as_array(), kind);
                assert!(rber < 0.0085, "pe={pe} d={days} {kind}: RBER {rber}");
            }
        }
    }

    #[test]
    fn separate_read_needed_for_csb_and_msb() {
        assert!(!SentinelCells::needs_separate_read(PageKind::Lsb));
        assert!(SentinelCells::needs_separate_read(PageKind::Csb));
        assert!(SentinelCells::needs_separate_read(PageKind::Msb));
    }

    #[test]
    fn fewer_cells_noisier_estimates() {
        let model = TlcModel::calibrated();
        let op = OperatingPoint::new(1000, 15.0);
        let spread = |cells: usize| {
            let s = SentinelCells::with_cells(model.clone(), cells);
            let mut rng = SimRng::seed_from(6);
            let obs: Vec<f64> = (0..300)
                .map(|_| s.observe_error_rate(op, 1.0, PageKind::Csb, &mut rng))
                .collect();
            let mean = obs.iter().sum::<f64>() / obs.len() as f64;
            (obs.iter().map(|o| (o - mean) * (o - mean)).sum::<f64>() / obs.len() as f64).sqrt()
        };
        assert!(
            spread(128) > spread(8192),
            "noise did not shrink with cells"
        );
    }

    #[test]
    fn estimation_tracks_weak_blocks() {
        // Like Swift-Read, the sentinel measurement sees the *actual*
        // drift of a weak block, not just its nominal age.
        let model = TlcModel::calibrated();
        let s = SentinelCells::new(model.clone());
        let mut rng = SimRng::seed_from(8);
        let op = OperatingPoint::new(1000, 18.0);
        let refs = s.select_refs(op, 1.5, PageKind::Msb, &mut rng);
        let after = model.rber(op, 1.5, refs.as_array(), PageKind::Msb);
        let before = model.rber(op, 1.5, &model.default_refs(), PageKind::Msb);
        assert!(after < before * 0.3, "sentinel {after} vs default {before}");
    }

    #[test]
    fn inversion_is_deterministic_and_clamped() {
        let s = SentinelCells::new(TlcModel::calibrated());
        let a = s.refs_from_error_rate(500, PageKind::Csb, 0.005);
        let b = s.refs_from_error_rate(500, PageKind::Csb, 0.005);
        assert_eq!(a, b);
        // Absurd observations still yield ordered references.
        let hi = s.refs_from_error_rate(500, PageKind::Csb, 0.4);
        for r in 1..=6 {
            assert!(hi.get(r) < hi.get(r + 1));
        }
    }
}
