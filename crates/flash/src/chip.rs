//! Flash chip command set and timing model (Table I).

use rif_events::SimDuration;

/// The timing parameters of the simulated NAND flash chips and channel
/// (Table I plus §V's page-buffer readout figure).
///
/// # Example
///
/// ```
/// use rif_flash::FlashTiming;
///
/// let t = FlashTiming::paper();
/// assert_eq!(t.t_r.as_us(), 40.0);
/// assert_eq!(t.t_dma_page.as_us(), 13.0);
/// assert_eq!(t.t_pred.as_us(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Page sense latency tR.
    pub t_r: SimDuration,
    /// Page program latency tPROG.
    pub t_prog: SimDuration,
    /// Block erase latency tBERS.
    pub t_bers: SimDuration,
    /// Channel transfer time for one 16-KiB page (tDMA).
    pub t_dma_page: SimDuration,
    /// RP-module prediction latency tPRED (4-KiB chunk, §V).
    pub t_pred: SimDuration,
    /// Page-buffer readout time for a full 16-KiB page (§V: 10 µs), from
    /// which tPRED's 2.5 µs for a 4-KiB chunk is derived.
    pub t_buffer_readout_page: SimDuration,
}

impl FlashTiming {
    /// Table I values: tR = 40 µs, tPROG = 400 µs, tBERS = 3.5 ms,
    /// tDMA = 13 µs, tPRED = 2.5 µs.
    pub fn paper() -> Self {
        FlashTiming {
            t_r: SimDuration::from_us(40),
            t_prog: SimDuration::from_us(400),
            t_bers: SimDuration::from_us(3500),
            t_dma_page: SimDuration::from_us(13),
            t_pred: SimDuration::from_us_f64(2.5),
            t_buffer_readout_page: SimDuration::from_us(10),
        }
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming::paper()
    }
}

/// Commands a flash die accepts, with their die-busy occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlashCommand {
    /// Sense one page (or all planes of a die for a multi-plane read — the
    /// planes operate simultaneously, so occupancy is a single tR).
    ReadPage,
    /// The Swift-Read retry command: two senses inside the die
    /// (§III-B: "two reads to the target page").
    SwiftReadRetry,
    /// A RiF read that the RP module predicts correctable:
    /// sense + on-die prediction.
    RifReadPredicted,
    /// A RiF read that triggers an in-die retry:
    /// sense + prediction + re-sense at the RVS-selected references.
    RifReadRetried,
    /// Program one page (all planes for multi-plane program).
    Program,
    /// Erase one block.
    Erase,
}

impl FlashCommand {
    /// How long the die is busy executing this command.
    pub fn die_occupancy(self, t: &FlashTiming) -> SimDuration {
        match self {
            FlashCommand::ReadPage => t.t_r,
            FlashCommand::SwiftReadRetry => t.t_r * 2,
            FlashCommand::RifReadPredicted => t.t_r + t.t_pred,
            FlashCommand::RifReadRetried => t.t_r + t.t_pred + t.t_r,
            FlashCommand::Program => t.t_prog,
            FlashCommand::Erase => t.t_bers,
        }
    }
}

/// Die-level status register, mirroring the ready-flag handshake of
/// Fig. 9: the controller polls `ready` before starting the data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatusRegister {
    /// Set when the die has data ready for transfer.
    pub ready: bool,
    /// Set when the last operation failed (program/erase failure).
    pub fail: bool,
    /// RiF extension: set when the ODEAR engine performed an in-die retry
    /// for the last read (diagnostic visibility for the controller).
    pub retried_in_die: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timing_values() {
        let t = FlashTiming::paper();
        assert_eq!(t.t_prog.as_us(), 400.0);
        assert_eq!(t.t_bers.as_us(), 3500.0);
        assert_eq!(t.t_buffer_readout_page.as_us(), 10.0);
    }

    #[test]
    fn tpred_is_quarter_page_readout() {
        // §V: reading a 16-KiB page from the page buffer takes 10 µs, so a
        // 4-KiB chunk takes 2.5 µs — the pipeline is fetch-bound.
        let t = FlashTiming::paper();
        assert_eq!(t.t_pred.as_ns() * 4, t.t_buffer_readout_page.as_ns());
    }

    #[test]
    fn command_occupancies_ordered() {
        let t = FlashTiming::paper();
        let read = FlashCommand::ReadPage.die_occupancy(&t);
        let rif_ok = FlashCommand::RifReadPredicted.die_occupancy(&t);
        let rif_retry = FlashCommand::RifReadRetried.die_occupancy(&t);
        let swift = FlashCommand::SwiftReadRetry.die_occupancy(&t);
        assert!(read < rif_ok);
        assert!(rif_ok < rif_retry);
        assert_eq!(swift.as_us(), 80.0);
        assert_eq!(rif_retry.as_us(), 82.5);
        assert_eq!(FlashCommand::Erase.die_occupancy(&t).as_us(), 3500.0);
    }

    #[test]
    fn status_register_defaults_clear() {
        let s = StatusRegister::default();
        assert!(!s.ready && !s.fail && !s.retried_in_die);
    }
}
